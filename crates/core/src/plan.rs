//! Space planning from the paper's guarantees (Lemma 1, Theorems 1-3).
//!
//! Lemma 1: using `16·Var[Z]/(ε²·E[Z]²)·lg(1/φ)` independent copies of an
//! unbiased estimator `Z` — arranged as `k2 = 2·lg(1/φ)` groups of
//! `k1 = 8·Var[Z]/(ε²·E[Z]²)` averaged copies, median over groups — the
//! estimate is within relative error `ε` of `E[Z]` with probability `1-φ`.
//!
//! The per-query variance bounds plug in as `Var[Z] ≤ factor · SJ(R)·SJ(S)`:
//!
//! | query | factor | source |
//! |-------|--------|--------|
//! | interval join (d=1) | 1/2 | §4.1.4 |
//! | rectangle join (d=2) | 1/2 | Lemma 6 |
//! | hyper-rectangle join | (3^d - 1)/4^d | Theorem 3 |
//! | ε-join | 3^d - 1 | Lemma 8 |
//! | range query | 2(3·log₂ n + 1)·SJ(R) (no S factor) | Lemma 9 |
//!
//! As the paper notes (§2.3), sizing needs a lower bound on the unknown
//! `E[Z]` — a "sanity bound" from historic data or domain knowledge; the
//! tighter the bound, the less space is provisioned.

use crate::error::{Result, SketchError};
use crate::schema::BoostShape;

/// A target accuracy guarantee: relative error `ε` with confidence `1 - φ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guarantee {
    /// Relative error bound, in (0, 1).
    pub epsilon: f64,
    /// Failure probability, in (0, 1).
    pub phi: f64,
}

impl Guarantee {
    /// Creates a guarantee, validating the ranges.
    pub fn new(epsilon: f64, phi: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::InvalidParameter("epsilon must be in (0, 1)"));
        }
        if !(phi > 0.0 && phi < 1.0) {
            return Err(SketchError::InvalidParameter("phi must be in (0, 1)"));
        }
        Ok(Self { epsilon, phi })
    }
}

/// Variance factor for the d-dimensional hyper-rectangle join
/// (`Var[Z] ≤ (3^d - 1)/4^d · SJ(R)·SJ(S)`, Theorem 3). For d = 1 and d = 2
/// this equals the paper's 1/2.
pub fn join_variance_factor(d: u32) -> f64 {
    (3f64.powi(d as i32) - 1.0) / 4f64.powi(d as i32)
}

/// Variance factor for the d-dimensional ε-join
/// (`Var[Z] ≤ (3^d - 1)·SJ(X_E)·SJ(Y_I)`, Lemma 8).
pub fn eps_join_variance_factor(d: u32) -> f64 {
    3f64.powi(d as i32) - 1.0
}

/// Variance bound for the 1-d range query (`Var[Z] ≤ 2(3·log₂ n + 1)·SJ(R)`,
/// Lemma 9); multiply by `SJ(R)` yourself since there is no `S` self-join.
pub fn range_variance_factor(domain_bits: u32) -> f64 {
    2.0 * (3.0 * domain_bits as f64 + 1.0)
}

/// The boosting shape required to achieve a guarantee given a variance
/// bound `var_bound ≥ Var[Z]` and a lower ("sanity") bound `ez_lower ≤ E[Z]`.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x >= 0)` deliberately rejects NaN
pub fn required_shape(g: Guarantee, var_bound: f64, ez_lower: f64) -> Result<BoostShape> {
    if !(var_bound >= 0.0) {
        return Err(SketchError::InvalidParameter("variance bound must be >= 0"));
    }
    if !(ez_lower > 0.0) {
        return Err(SketchError::InvalidParameter(
            "E[Z] sanity bound must be positive",
        ));
    }
    let k1 = (8.0 * var_bound / (g.epsilon * g.epsilon * ez_lower * ez_lower)).ceil() as usize;
    let mut k2 = (2.0 * (1.0 / g.phi).log2()).ceil() as usize;
    if k2.is_multiple_of(2) {
        k2 += 1; // odd medians are exact
    }
    Ok(BoostShape::new(k1.max(1), k2.max(1)))
}

/// Shape for a d-dimensional join with self-join sizes `sj_r`, `sj_s`.
pub fn join_shape(g: Guarantee, d: u32, sj_r: f64, sj_s: f64, ez_lower: f64) -> Result<BoostShape> {
    required_shape(g, join_variance_factor(d) * sj_r * sj_s, ez_lower)
}

/// Storage accounting in "words" (one counter or counter-sized value), the
/// unit the paper's Section 7 uses when giving SKETCH the same memory as the
/// histogram baselines.
///
/// Per instance, a join maintains `2^d` counters for each relation plus `d`
/// seeds shared by the pair; the paper's example (Section 4.1.5: "five
/// values" for a 1-d join instance: one seed + X_I, X_E, Y_I, Y_E) matches
/// `pair_words_per_instance(1) = 5`.
pub fn pair_words_per_instance(d: u32) -> u64 {
    2 * (1u64 << d) + d as u64
}

/// Words charged to *one dataset* per instance (half the pair cost), the
/// per-dataset accounting of Figures 5-11.
pub fn dataset_words_per_instance(d: u32) -> f64 {
    pair_words_per_instance(d) as f64 / 2.0
}

/// Total per-dataset words for an instance count.
pub fn dataset_words(d: u32, instances: usize) -> f64 {
    instances as f64 * dataset_words_per_instance(d)
}

/// Largest instance count whose per-dataset footprint fits in `words`.
pub fn instances_for_dataset_words(d: u32, words: f64) -> usize {
    (words / dataset_words_per_instance(d)).floor() as usize
}

/// The Section 6.5 adaptive `maxLevel` choice from interval-length
/// statistics.
///
/// Untruncated dyadic *endpoint* sketches add the ξ variables of every
/// ancestor — including the root on every single insertion — so
/// `SJ(X_E) = Θ(N²)` regardless of the data, and join variance explodes
/// (this dominates Figures 5-6 scale workloads by orders of magnitude).
/// Truncating at level `m` caps the shared high levels: endpoint self-join
/// mass scales like `2^m`, while interval covers only pay extra when
/// objects are longer than `2^m` (they then need `~len/2^m` level-`m`
/// blocks). The sweet spot balances the two at roughly the mean object
/// extent: `m* ≈ log₂(mean length)`.
///
/// `mean_extent` must be measured in *sketch* coordinates (after any
/// endpoint transform, which triples lengths).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 1)` deliberately catches NaN
pub fn adaptive_max_level(mean_extent: f64, sketch_bits: u32) -> u32 {
    if !(mean_extent > 1.0) {
        return 1;
    }
    let m = mean_extent.log2().ceil() as u32;
    m.clamp(1, sketch_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_factors_match_paper() {
        assert!((join_variance_factor(1) - 0.5).abs() < 1e-12);
        assert!((join_variance_factor(2) - 0.5).abs() < 1e-12);
        // d = 3: (27-1)/64
        assert!((join_variance_factor(3) - 26.0 / 64.0).abs() < 1e-12);
        assert!((eps_join_variance_factor(2) - 8.0).abs() < 1e-12);
        // Lemma 7 is the d = 2 special case: Var <= 8 SJ SJ.
        assert!((range_variance_factor(10) - 62.0).abs() < 1e-12);
    }

    #[test]
    fn required_shape_matches_lemma1_algebra() {
        let g = Guarantee::new(0.1, 0.01).unwrap();
        // Var = 100, E >= 50: k1 = 8*100/(0.01*2500) = 32.
        let shape = required_shape(g, 100.0, 50.0).unwrap();
        assert_eq!(shape.k1, 32);
        // k2 = ceil(2 lg 100) = 14 -> odd-adjusted 15.
        assert_eq!(shape.k2, 15);
    }

    #[test]
    fn tighter_epsilon_needs_quadratically_more() {
        let var = 1000.0;
        let e = 100.0;
        let s1 = required_shape(Guarantee::new(0.2, 0.05).unwrap(), var, e).unwrap();
        let s2 = required_shape(Guarantee::new(0.1, 0.05).unwrap(), var, e).unwrap();
        assert_eq!(s2.k1, 4 * s1.k1);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Guarantee::new(0.0, 0.1).is_err());
        assert!(Guarantee::new(1.5, 0.1).is_err());
        assert!(Guarantee::new(0.1, 0.0).is_err());
        let g = Guarantee::new(0.3, 0.01).unwrap();
        assert!(required_shape(g, -1.0, 10.0).is_err());
        assert!(required_shape(g, 10.0, 0.0).is_err());
    }

    #[test]
    fn word_accounting() {
        // 1-d join: 5 words per pair-instance, per the paper's Section 4.1.5.
        assert_eq!(pair_words_per_instance(1), 5);
        // 2-d join: 8 counters + 2 seeds.
        assert_eq!(pair_words_per_instance(2), 10);
        assert_eq!(dataset_words(2, 100), 500.0);
        assert_eq!(instances_for_dataset_words(2, 500.0), 100);
        assert_eq!(instances_for_dataset_words(1, 63_000.0), 25_200);
    }

    #[test]
    fn adaptive_max_level_tracks_mean_extent() {
        assert_eq!(adaptive_max_level(128.0, 16), 7);
        assert_eq!(adaptive_max_level(129.0, 16), 8);
        assert_eq!(adaptive_max_level(3.0 * 128.0, 16), 9); // tripled domain
        assert_eq!(adaptive_max_level(0.5, 16), 1); // degenerate-ish data
        assert_eq!(adaptive_max_level(1e12, 10), 10); // clamped to the domain
    }

    #[test]
    fn join_shape_roundtrip() {
        let g = Guarantee::new(0.3, 0.01).unwrap();
        let shape = join_shape(g, 1, 1000.0, 2000.0, 300.0).unwrap();
        // k1 = ceil(8 * 0.5 * 2e6 / (0.09 * 9e4)) = ceil(987.65) = 988
        assert_eq!(shape.k1, 988);
        assert_eq!(shape.k2, 15);
    }
}

//! Uniformity-model overlap probabilities used by the histogram estimators.
//!
//! Histograms summarize objects per grid element and estimate join sizes by
//! assuming object positions are uniform within a cell. The basic building
//! block is: two segments of lengths `l1`, `l2` placed uniformly at random
//! inside a cell of length `c` — what is the probability their (closed)
//! ranges overlap with positive measure?
//!
//! With placements `x1 ~ U[0, c - l1]`, `x2 ~ U[0, c - l2]`:
//!
//! ```text
//! P(no overlap) = m² / ((c - l1)(c - l2)),   m = max(0, c - l1 - l2)
//! ```
//!
//! and `P(overlap) = 1 - P(no overlap)`. Degenerate segments (`l = 0`)
//! overlap with probability zero against each other (points almost surely
//! differ), matching the strict-overlap join semantics.

/// Probability that two uniformly placed segments overlap within a cell.
///
/// Lengths longer than the cell are clamped (the summarized quantity is the
/// *intersection* length with the cell, which never exceeds the cell).
pub fn overlap_probability_1d(l1: f64, l2: f64, cell: f64) -> f64 {
    debug_assert!(cell > 0.0, "cell length must be positive");
    let l1 = l1.clamp(0.0, cell);
    let l2 = l2.clamp(0.0, cell);
    let m = (cell - l1 - l2).max(0.0);
    if m == 0.0 {
        return 1.0;
    }
    let a = cell - l1;
    let b = cell - l2;
    // m > 0 implies a >= m > 0 and b >= m > 0.
    (1.0 - m * m / (a * b)).clamp(0.0, 1.0)
}

/// Product-form overlap probability for axis-aligned rectangles in a 2-d
/// cell (positions independent per axis under the uniformity model).
pub fn overlap_probability_2d(w1: f64, h1: f64, w2: f64, h2: f64, cell_w: f64, cell_h: f64) -> f64 {
    overlap_probability_1d(w1, w2, cell_w) * overlap_probability_1d(h1, h2, cell_h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn boundary_values() {
        // Two points never (measurably) overlap.
        assert_eq!(overlap_probability_1d(0.0, 0.0, 32.0), 0.0);
        // A full-cell segment overlaps anything with positive length...
        assert_eq!(overlap_probability_1d(32.0, 5.0, 32.0), 1.0);
        // ... including another full-cell segment.
        assert_eq!(overlap_probability_1d(32.0, 32.0, 32.0), 1.0);
        // Long segments clamp.
        assert_eq!(overlap_probability_1d(100.0, 1.0, 32.0), 1.0);
    }

    #[test]
    fn symmetry_and_monotonicity() {
        let c = 64.0;
        for (a, b) in [(3.0, 9.0), (10.0, 30.0), (1.0, 1.0)] {
            assert_eq!(
                overlap_probability_1d(a, b, c),
                overlap_probability_1d(b, a, c)
            );
        }
        // Longer segments overlap more.
        let mut prev = 0.0;
        for l in [0.0, 4.0, 8.0, 16.0, 32.0, 63.0] {
            let p = overlap_probability_1d(l, 8.0, c);
            assert!(p >= prev, "p({l}) = {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(17);
        let c = 100.0;
        for (l1, l2) in [(10.0, 20.0), (5.0, 5.0), (40.0, 50.0), (0.0, 30.0)] {
            let trials = 200_000;
            let mut hits = 0u64;
            for _ in 0..trials {
                let x1 = rng.gen::<f64>() * (c - l1);
                let x2 = rng.gen::<f64>() * (c - l2);
                if x1 < x2 + l2 && x2 < x1 + l1 {
                    hits += 1;
                }
            }
            let emp = hits as f64 / trials as f64;
            let theory = overlap_probability_1d(l1, l2, c);
            assert!(
                (emp - theory).abs() < 0.006,
                "l1={l1} l2={l2}: emp {emp} vs {theory}"
            );
        }
    }

    #[test]
    fn product_form_2d() {
        let p = overlap_probability_2d(10.0, 20.0, 5.0, 5.0, 50.0, 40.0);
        let px = overlap_probability_1d(10.0, 5.0, 50.0);
        let py = overlap_probability_1d(20.0, 5.0, 40.0);
        assert!((p - px * py).abs() < 1e-12);
    }
}

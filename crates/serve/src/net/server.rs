//! The TCP serving front-end: a small fixed pool of **reactor** threads
//! multiplexing every connection over non-blocking sockets, feeding a
//! bounded batch queue with a cross-connection coalescing window, worker
//! threads answering whole batches through one [`ContextPool`] pass,
//! load-shedding at admission, graceful drain on shutdown.
//!
//! ## The reactor
//!
//! Connections cost state, not threads. Each reactor thread owns a set of
//! non-blocking `TcpStream`s and sweeps them in a readiness loop: read
//! whatever bytes the kernel has (`WouldBlock` ends the attempt), feed
//! them to the connection's incremental [`FrameDecoder`], admit decoded
//! queries to the shared queue, and flush the connection's write buffer as
//! far as the socket accepts. A connection is a state machine:
//!
//! ```text
//!             bytes                    frames                 jobs
//!   socket ──────────▶ FrameDecoder ──────────▶ PendingFrame ─────▶ BatchQueue
//!     ▲                                          (one slot            │ drain ≤ max_batch,
//!     │ flush ≤ WouldBlock                        per query)          │ coalescing window
//!   WriteBuf ◀── encode ReplyBatch ◀── last slot filled ◀── Completion(conn, frame, slot)
//! ```
//!
//! When a reactor sweep makes no progress it parks: first a few
//! `yield_now` passes (cheap, keeps latency low while traffic flows),
//! then a short `Condvar` timed wait that worker completions and the
//! acceptor's new-connection handoff interrupt. Thousands of idle
//! connections therefore cost a few parked threads and their buffers.
//!
//! ## Pipelining
//!
//! Every frame carries a client-chosen id, and a connection may have many
//! request frames in flight ([`ServeConfig::max_pipeline`]). Each admitted
//! query remembers its `(connection, frame id, slot)` origin; when the
//! last slot of a frame completes, the reply frame — tagged with the
//! request's id — is encoded into the connection's write buffer. Frames
//! complete **out of request order** whenever their batches do; the id is
//! what lets the client re-associate them.
//!
//! ## Cross-connection coalescing
//!
//! Workers drain up to [`ServeConfig::max_batch`] jobs at a time — from
//! any mix of connections and frames. With a coalescing window
//! ([`ServeConfig::coalesce_us`]) a worker that finds the queue non-empty
//! but below `max_batch` waits up to the window for more arrivals before
//! evaluating, so even a fleet of batch-of-1 clients feeds the batched
//! kernel ([`SketchService::answer_batch`] →
//! [`QueryRouter::estimate_batch`]) full sweeps. The window trades a
//! bounded latency add at low load for per-query cost at high load;
//! coalesced batches stay bit-identical to sequential evaluation because
//! batching is the kernel's own contract.
//!
//! ## Backpressure
//!
//! Two distinct mechanisms:
//!
//! * **Admission**: the queue is bounded by
//!   [`ServeConfig::queue_capacity`]; when it is full (or closed for
//!   shutdown) the query is *shed* — answered immediately with
//!   [`WireErrorCode::Overloaded`], never silently dropped.
//! * **Write**: a connection whose peer reads slowly accumulates encoded
//!   replies in its write buffer. Past [`ServeConfig::write_buf_cap`] (or
//!   `max_pipeline` unanswered frames) the reactor stops *reading* that
//!   connection — bytes queue in the kernel, eventually stalling the
//!   sender — instead of buffering replies without bound. Other
//!   connections on the same reactor are unaffected.
//!
//! ## Crash resilience
//!
//! Each worker pass runs under `catch_unwind`: a panic while evaluating a
//! batch (the fault-injection hook, or a real bug) converts the whole
//! batch to [`WireErrorCode::Internal`] replies, and the poisoned pool
//! slot is recovered — reset, not abandoned — by [`ContextPool::with`] on
//! the next pass. One bad query costs its batch, never the server. A
//! protocol violation (bad magic, a reused in-flight frame id, a
//! client-sent server opcode) kills only the offending connection.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] closes the queue (late arrivals shed),
//! unblocks and joins the acceptor, joins the workers — which first
//! **drain** every already-admitted job and deliver its completion — then
//! signals the reactors, which apply those final completions, flush each
//! connection's write buffer (bounded, best-effort) and close the
//! sockets. No accepted query goes unanswered.
//!
//! [`QueryRouter::estimate_batch`]: crate::router::QueryRouter::estimate_batch

use super::codec::{decode_queries, encode_replies, Opcode, WireErrorCode, WireQuery, WireReply};
use super::io::{frame_bytes, Frame, FrameDecoder};
use crate::context::{ContextPool, WorkerContext};
use crate::router::QueryRouter;
use crate::store::ShardedStore;
use geometry::{HyperRect, Interval};
use sketch::estimators::joins::SpatialJoin;
use sketch::RangeQuery;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Parses an environment knob, falling back to `default` when unset or
/// malformed.
fn env_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the batch queue (each holds one
    /// [`ContextPool`] slot per pass; pools at least this large avoid
    /// blocking).
    pub workers: usize,
    /// Most queries one worker admits into a single context pass.
    pub max_batch: usize,
    /// Bound on queued-but-unevaluated queries; admission beyond it sheds
    /// with [`WireErrorCode::Overloaded`]. Zero sheds everything — useful
    /// for deterministic overload tests.
    pub queue_capacity: usize,
    /// Honor [`WireQuery::FaultPanic`] (soak tests / CI only). Off by
    /// default: a production server answers the opcode with
    /// [`WireErrorCode::BadRequest`] instead of letting a peer panic it.
    pub fault_injection: bool,
    /// Reactor threads multiplexing the connections. Default: the
    /// `SKETCH_NET_REACTORS` env var, else `available_parallelism / 4`
    /// clamped to `1..=4` — connection I/O is cheap relative to kernel
    /// sweeps, so a few reactors serve many cores of workers.
    pub reactors: usize,
    /// Cross-connection coalescing window in microseconds: how long a
    /// worker that found the queue non-empty but below `max_batch` waits
    /// for more arrivals before evaluating. `0` disables coalescing
    /// (drain immediately — the latency-first setting). Default: the
    /// `SKETCH_NET_COALESCE_US` env var, else `0`.
    pub coalesce_us: u64,
    /// Write-backpressure threshold in bytes: past this much un-flushed
    /// reply data the reactor stops reading the connection until its peer
    /// drains. Bounds per-connection memory against slow readers.
    pub write_buf_cap: usize,
    /// Most request frames one connection may have unanswered before the
    /// reactor stops reading it — the server-side pipelining bound.
    pub max_pipeline: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as u64;
        Self {
            workers: 2,
            max_batch: 16,
            queue_capacity: 256,
            fault_injection: false,
            reactors: env_knob("SKETCH_NET_REACTORS", (cores / 4).clamp(1, 4)) as usize,
            coalesce_us: env_knob("SKETCH_NET_COALESCE_US", 0),
            write_buf_cap: 1 << 20,
            max_pipeline: 128,
        }
    }
}

/// The queries a server answers: one range estimator, optionally one join
/// estimator, over an indexed table of sharded stores.
///
/// Wire queries address stores by table index; [`SketchService::answer`]
/// validates the index, the dimensionality and the interval bounds before
/// touching the router, answering malformed queries with
/// [`WireErrorCode::BadRequest`] rather than failing the connection.
#[derive(Debug)]
pub struct SketchService<const D: usize> {
    range: RangeQuery<D>,
    join: Option<SpatialJoin<D>>,
    stores: Vec<Arc<ShardedStore<D>>>,
    router: QueryRouter,
}

impl<const D: usize> SketchService<D> {
    /// A service answering range/stab queries over `stores` with `range`.
    pub fn new(range: RangeQuery<D>, stores: Vec<Arc<ShardedStore<D>>>) -> Self {
        Self {
            range,
            join: None,
            stores,
            router: QueryRouter::new(),
        }
    }

    /// Also answer join queries with `join` (builder form). The join's
    /// stores must share its schema, as everywhere in the serving layer.
    pub fn with_join(mut self, join: SpatialJoin<D>) -> Self {
        self.join = Some(join);
        self
    }

    /// Routes queries with `router` instead of the default exact-mode one
    /// (builder form).
    pub fn with_router(mut self, router: QueryRouter) -> Self {
        self.router = router;
        self
    }

    /// The store table a wire query's `store` index resolves against.
    pub fn stores(&self) -> &[Arc<ShardedStore<D>>] {
        &self.stores
    }

    fn store(&self, index: u32) -> Result<&Arc<ShardedStore<D>>, WireReply> {
        self.stores
            .get(index as usize)
            .ok_or_else(|| WireReply::Error {
                code: WireErrorCode::BadRequest,
                message: format!(
                    "store index {index} out of range ({} stores)",
                    self.stores.len()
                ),
            })
    }

    /// Answers one wire query with `ctx`. Infallible by design: every
    /// failure mode becomes a [`WireReply::Error`] entry so a bad query
    /// can never take down its batch-mates or the connection.
    ///
    /// # Panics
    ///
    /// [`WireQuery::FaultPanic`] panics when `fault_injection` is true —
    /// deliberately, to exercise the worker's `catch_unwind` + pool
    /// recovery path from the wire.
    pub fn answer(
        &self,
        ctx: &mut WorkerContext<D>,
        query: &WireQuery,
        fault_injection: bool,
    ) -> WireReply {
        match query {
            WireQuery::Range { store, ranges } => {
                let store = match self.store(*store) {
                    Ok(s) => s,
                    Err(reply) => return reply,
                };
                let Some(rect) = rect_of::<D>(ranges) else {
                    return bad_request(format!(
                        "range query needs {D} non-inverted (lo, hi) pairs"
                    ));
                };
                estimate_reply(self.router.estimate_range(&self.range, store, ctx, &rect))
            }
            WireQuery::Stab { store, point } => {
                let store = match self.store(*store) {
                    Ok(s) => s,
                    Err(reply) => return reply,
                };
                let Ok(p) = <[u64; D]>::try_from(point.as_slice()) else {
                    return bad_request(format!("stab query needs {D} coordinates"));
                };
                estimate_reply(self.router.estimate_stab(&self.range, store, ctx, &p))
            }
            WireQuery::Join { r_store, s_store } => {
                let Some(join) = &self.join else {
                    return bad_request("this service has no join estimator".into());
                };
                let r = match self.store(*r_store) {
                    Ok(s) => Arc::clone(s),
                    Err(reply) => return reply,
                };
                let s = match self.store(*s_store) {
                    Ok(s) => Arc::clone(s),
                    Err(reply) => return reply,
                };
                estimate_reply(self.router.estimate_join(join, &r, &s, ctx))
            }
            WireQuery::FaultPanic => {
                if fault_injection {
                    panic!("injected fault: wire-requested handler panic");
                }
                bad_request("fault injection is disabled on this server".into())
            }
            WireQuery::RangePartial { store, ranges } => {
                let store = match self.store(*store) {
                    Ok(s) => s,
                    Err(reply) => return reply,
                };
                let Some(rect) = rect_of::<D>(ranges) else {
                    return bad_request(format!(
                        "range query needs {D} non-inverted (lo, hi) pairs"
                    ));
                };
                partial_reply(self.router.partial_range(&self.range, store, ctx, &rect))
            }
            WireQuery::StabPartial { store, point } => {
                let store = match self.store(*store) {
                    Ok(s) => s,
                    Err(reply) => return reply,
                };
                let Ok(p) = <[u64; D]>::try_from(point.as_slice()) else {
                    return bad_request(format!("stab query needs {D} coordinates"));
                };
                partial_reply(self.router.partial_stab(&self.range, store, ctx, &p))
            }
        }
    }

    /// Answers a whole batch of wire queries with `ctx`, grouping the valid
    /// range/stab queries per store so each store's group rides **one**
    /// batched kernel sweep ([`QueryRouter::estimate_batch`]) instead of a
    /// per-query pass. Malformed queries answer [`WireErrorCode::BadRequest`]
    /// individually — a bad query never costs its batch-mates the fast
    /// path — and join/fault queries fall through to
    /// [`SketchService::answer`] unchanged. Every reply is bit-identical to
    /// the per-query path's.
    ///
    /// # Panics
    ///
    /// Like [`SketchService::answer`], [`WireQuery::FaultPanic`] panics
    /// when `fault_injection` is true.
    pub fn answer_batch(
        &self,
        ctx: &mut WorkerContext<D>,
        queries: &[&WireQuery],
        fault_injection: bool,
    ) -> Vec<WireReply> {
        let mut replies: Vec<Option<WireReply>> = vec![None; queries.len()];
        // Per distinct store index: the query slots and their parsed
        // batch queries. Batches are `max_batch`-bounded, so linear scans
        // over the handful of distinct stores are fine.
        let mut group_store: Vec<u32> = Vec::new();
        let mut group_slots: Vec<Vec<usize>> = Vec::new();
        let mut group_queries: Vec<Vec<sketch::BatchQuery<D>>> = Vec::new();
        let mut push = |store: u32, slot: usize, q: sketch::BatchQuery<D>| match group_store
            .iter()
            .position(|&s| s == store)
        {
            Some(g) => {
                group_slots[g].push(slot);
                group_queries[g].push(q);
            }
            None => {
                group_store.push(store);
                group_slots.push(vec![slot]);
                group_queries.push(vec![q]);
            }
        };
        for (slot, query) in queries.iter().enumerate() {
            match query {
                WireQuery::Range { store, ranges } => {
                    if let Err(reply) = self.store(*store) {
                        replies[slot] = Some(reply);
                        continue;
                    }
                    let Some(rect) = rect_of::<D>(ranges) else {
                        replies[slot] = Some(bad_request(format!(
                            "range query needs {D} non-inverted (lo, hi) pairs"
                        )));
                        continue;
                    };
                    push(*store, slot, sketch::BatchQuery::Range(rect));
                }
                WireQuery::Stab { store, point } => {
                    if let Err(reply) = self.store(*store) {
                        replies[slot] = Some(reply);
                        continue;
                    }
                    let Ok(p) = <[u64; D]>::try_from(point.as_slice()) else {
                        replies[slot] =
                            Some(bad_request(format!("stab query needs {D} coordinates")));
                        continue;
                    };
                    push(*store, slot, sketch::BatchQuery::Stab(p));
                }
                // Joins, partial-estimate queries and fault injection keep
                // their per-query path.
                _ => replies[slot] = Some(self.answer(ctx, query, fault_injection)),
            }
        }
        for (g, store) in group_store.iter().enumerate() {
            let store = self.store(*store).expect("validated at classification");
            let answers = self
                .router
                .estimate_batch(&self.range, store, ctx, &group_queries[g]);
            for (&slot, answer) in group_slots[g].iter().zip(answers) {
                replies[slot] = Some(estimate_reply(answer));
            }
        }
        replies
            .into_iter()
            .map(|r| r.expect("every query classified"))
            .collect()
    }
}

/// Builds a `HyperRect` from wire `(lo, hi)` pairs; `None` on arity or
/// interval-order violations (closed intervals, `lo <= hi`).
fn rect_of<const D: usize>(ranges: &[(u64, u64)]) -> Option<HyperRect<D>> {
    if ranges.len() != D {
        return None;
    }
    let mut intervals = Vec::with_capacity(D);
    for &(lo, hi) in ranges {
        intervals.push(Interval::try_new(lo, hi)?);
    }
    Some(HyperRect::new(std::array::from_fn(|d| intervals[d])))
}

fn bad_request(message: String) -> WireReply {
    WireReply::Error {
        code: WireErrorCode::BadRequest,
        message,
    }
}

fn estimate_reply(result: sketch::Result<sketch::Estimate>) -> WireReply {
    match result {
        Ok(est) => WireReply::Estimate {
            value: est.value,
            row_means: est.row_means,
        },
        Err(e) => WireReply::Error {
            code: WireErrorCode::Estimate,
            message: e.to_string(),
        },
    }
}

fn partial_reply(result: sketch::Result<sketch::PartialEstimate>) -> WireReply {
    match result {
        Ok(partial) => {
            let shape = partial.shape();
            if shape.k1 > u16::MAX as usize || shape.k2 > u16::MAX as usize {
                return WireReply::Error {
                    code: WireErrorCode::Internal,
                    message: "boosting shape exceeds the wire's u16 grid bounds".into(),
                };
            }
            WireReply::Partial {
                k1: shape.k1 as u16,
                k2: shape.k2 as u16,
                atomic: partial.atomic().to_vec(),
            }
        }
        Err(e) => WireReply::Error {
            code: WireErrorCode::Estimate,
            message: e.to_string(),
        },
    }
}

fn overloaded() -> WireReply {
    WireReply::Error {
        code: WireErrorCode::Overloaded,
        message: "in-flight queue full; retry with backoff".into(),
    }
}

/// Where an admitted query came from, so its reply finds its way back to
/// the right connection, frame and slot — the unit of out-of-order
/// completion.
struct Origin {
    reactor: Arc<ReactorShared>,
    conn: u64,
    frame: u32,
    slot: u32,
}

/// One admitted query: what to evaluate and where its reply goes.
struct Job {
    query: WireQuery,
    origin: Origin,
}

/// One evaluated query on its way back to its reactor.
struct Completion {
    conn: u64,
    frame: u32,
    slot: u32,
    reply: WireReply,
}

/// The bounded in-flight queue between reactors and workers.
struct BatchQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl BatchQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job`, or gives it back when the queue is full or closed —
    /// the caller sheds it. Never blocks.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for work and takes up to `max` jobs. A non-zero coalescing
    /// `window` makes a worker that found fewer than `max` jobs linger for
    /// late arrivals — from any connection — before evaluating, so
    /// batch-of-1 clients still produce full kernel sweeps. An empty
    /// result means the queue is closed **and** fully drained: workers
    /// exit only after every admitted job has been taken.
    fn drain(&self, max: usize, window: Duration) -> Vec<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.jobs.is_empty() {
                if state.closed {
                    return Vec::new();
                }
                state = self.ready.wait(state).expect("queue lock");
                continue;
            }
            if !state.closed && state.jobs.len() < max && !window.is_zero() {
                let deadline = Instant::now() + window;
                loop {
                    let now = Instant::now();
                    if now >= deadline
                        || state.closed
                        || state.jobs.len() >= max
                        || state.jobs.is_empty()
                    {
                        break;
                    }
                    let (s, wait) = self
                        .ready
                        .wait_timeout(state, deadline - now)
                        .expect("queue lock");
                    state = s;
                    if wait.timed_out() {
                        break;
                    }
                }
                if state.jobs.is_empty() {
                    // Another worker took everything while we coalesced.
                    continue;
                }
            }
            let take = state.jobs.len().min(max);
            return state.jobs.drain(..take).collect();
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// Monotonic serving counters, readable while the server runs.
#[derive(Debug, Default)]
struct ServeCounters {
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    batches: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries evaluated (successfully or as per-query errors).
    pub served: u64,
    /// Queries shed at admission with [`WireErrorCode::Overloaded`].
    pub shed: u64,
    /// Worker passes that panicked (each converts its batch to
    /// [`WireErrorCode::Internal`] replies and recovers the pool slot).
    pub panics: u64,
    /// Worker passes executed; `served / batches` is the realized batch
    /// size — the coalescing window's effect made visible.
    pub batches: u64,
}

/// What the acceptor and workers hand a reactor thread: new connections
/// to adopt, completions to apply, and the stop signal.
#[derive(Default)]
struct ReactorShared {
    inbox: Mutex<Inbox>,
    wake: Condvar,
}

#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
    stopping: bool,
}

impl ReactorShared {
    fn adopt(&self, stream: TcpStream) {
        self.inbox.lock().expect("reactor inbox").conns.push(stream);
        self.wake.notify_one();
    }

    fn deliver(&self, completions: Vec<Completion>) {
        self.inbox
            .lock()
            .expect("reactor inbox")
            .completions
            .extend(completions);
        self.wake.notify_one();
    }

    fn stop(&self) {
        self.inbox.lock().expect("reactor inbox").stopping = true;
        self.wake.notify_one();
    }
}

/// Per-reactor limits, copied out of [`ServeConfig`].
#[derive(Clone, Copy)]
struct ConnLimits {
    write_buf_cap: usize,
    max_pipeline: usize,
}

/// Everything a reactor sweep needs besides the connections themselves.
struct ReactorEnv {
    shared: Arc<ReactorShared>,
    queue: Arc<BatchQueue>,
    counters: Arc<ServeCounters>,
    limits: ConnLimits,
}

/// A request frame with at least one query still unevaluated.
struct PendingFrame {
    frame: u32,
    replies: Vec<Option<WireReply>>,
    missing: usize,
}

/// A connection's un-flushed reply bytes, drained from the front as the
/// socket accepts them.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    at: usize,
}

impl WriteBuf {
    fn len(&self) -> usize {
        self.buf.len() - self.at
    }

    fn is_empty(&self) -> bool {
        self.at == self.buf.len()
    }

    fn push(&mut self, bytes: &[u8]) {
        if self.is_empty() || self.at >= 64 * 1024 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much as the socket accepts. Returns whether any bytes
    /// moved; `Err(())` means the connection is lost.
    fn flush(&mut self, stream: &mut TcpStream) -> Result<bool, ()> {
        let mut progressed = false;
        while self.at < self.buf.len() {
            match stream.write(&self.buf[self.at..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.at += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.is_empty() && self.at > 0 {
            self.buf.clear();
            self.at = 0;
        }
        Ok(progressed)
    }
}

/// One multiplexed connection: a non-blocking socket plus the state that
/// replaces a dedicated thread — decoder, pending frames, write buffer.
struct Conn {
    id: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    write_buf: WriteBuf,
    pending: Vec<PendingFrame>,
    read_closed: bool,
    dead: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Self {
        Self {
            id,
            stream,
            decoder: FrameDecoder::new(),
            write_buf: WriteBuf::default(),
            pending: Vec::new(),
            read_closed: false,
            dead: false,
        }
    }

    /// Reply-side backpressure: stop reading this connection while its
    /// peer is behind on draining replies or has too many frames in
    /// flight.
    fn backpressured(&self, limits: &ConnLimits) -> bool {
        self.write_buf.len() >= limits.write_buf_cap || self.pending.len() >= limits.max_pipeline
    }

    /// One sweep over this connection: flush, decode buffered bytes, read
    /// fresh bytes, flush again. Returns whether anything moved.
    fn pump(&mut self, env: &ReactorEnv, scratch: &mut [u8]) -> bool {
        let mut progress = self.flush();
        if self.dead {
            return progress;
        }
        // Bytes may be sitting in the decoder from a sweep that ended
        // backpressured; frames decode as soon as pressure lifts, without
        // waiting for new socket bytes.
        progress |= self.decode_frames(env);
        let mut reads = 0;
        while !self.dead && !self.read_closed && reads < 4 && !self.backpressured(&env.limits) {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    progress = true;
                }
                Ok(n) => {
                    reads += 1;
                    progress = true;
                    self.decoder.extend(&scratch[..n]);
                    self.decode_frames(env);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        progress |= self.flush();
        if !self.dead && self.read_closed && self.pending.is_empty() && self.write_buf.is_empty() {
            // Peer finished sending and every reply has been delivered.
            self.dead = true;
        }
        progress
    }

    fn flush(&mut self) -> bool {
        if self.dead {
            return false;
        }
        match self.write_buf.flush(&mut self.stream) {
            Ok(progressed) => progressed,
            Err(()) => {
                self.dead = true;
                false
            }
        }
    }

    /// Decodes and handles every complete frame the buffer holds, up to
    /// the backpressure bound. Returns whether any frame was handled.
    fn decode_frames(&mut self, env: &ReactorEnv) -> bool {
        let mut any = false;
        while !self.dead && !self.backpressured(&env.limits) {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    any = true;
                    self.handle_frame(frame, env);
                }
                Ok(None) => break,
                Err(_) => {
                    // No sound resynchronization after a framing error.
                    self.dead = true;
                }
            }
        }
        any
    }

    fn handle_frame(&mut self, frame: Frame, env: &ReactorEnv) {
        match frame.opcode {
            Opcode::Ping => {
                self.write_buf
                    .push(&frame_bytes(Opcode::Pong, frame.frame_id, &[]));
            }
            Opcode::QueryBatch => {
                let Ok(queries) = decode_queries(&frame.payload) else {
                    self.dead = true;
                    return;
                };
                if self.pending.iter().any(|p| p.frame == frame.frame_id) {
                    // Reusing an in-flight id would make replies ambiguous.
                    self.dead = true;
                    return;
                }
                if queries.is_empty() {
                    self.write_buf.push(&frame_bytes(
                        Opcode::ReplyBatch,
                        frame.frame_id,
                        &encode_replies(&[]),
                    ));
                    return;
                }
                let mut pending = PendingFrame {
                    frame: frame.frame_id,
                    replies: vec![None; queries.len()],
                    missing: queries.len(),
                };
                for (slot, query) in queries.into_iter().enumerate() {
                    let origin = Origin {
                        reactor: Arc::clone(&env.shared),
                        conn: self.id,
                        frame: frame.frame_id,
                        slot: slot as u32,
                    };
                    if env.queue.push(Job { query, origin }).is_err() {
                        env.counters.shed.fetch_add(1, Ordering::Relaxed);
                        pending.replies[slot] = Some(overloaded());
                        pending.missing -= 1;
                    }
                }
                if pending.missing == 0 {
                    // Fully shed: the reply needs no worker pass.
                    let replies: Vec<WireReply> =
                        pending.replies.into_iter().map(Option::unwrap).collect();
                    self.write_buf.push(&frame_bytes(
                        Opcode::ReplyBatch,
                        pending.frame,
                        &encode_replies(&replies),
                    ));
                } else {
                    self.pending.push(pending);
                }
            }
            // Server-to-client opcodes from a client are a protocol error.
            Opcode::ReplyBatch | Opcode::Pong => self.dead = true,
        }
    }

    /// Files one completed query into its pending frame; when the frame's
    /// last slot fills, encodes the reply frame into the write buffer.
    fn complete(&mut self, done: Completion) {
        let Some(at) = self.pending.iter().position(|p| p.frame == done.frame) else {
            return; // frame already abandoned (connection violation path)
        };
        let pending = &mut self.pending[at];
        let slot = done.slot as usize;
        if slot >= pending.replies.len() || pending.replies[slot].is_some() {
            return;
        }
        pending.replies[slot] = Some(done.reply);
        pending.missing -= 1;
        if pending.missing == 0 {
            let pending = self.pending.swap_remove(at);
            let replies: Vec<WireReply> = pending
                .replies
                .into_iter()
                .map(|r| r.expect("missing == 0"))
                .collect();
            self.write_buf.push(&frame_bytes(
                Opcode::ReplyBatch,
                pending.frame,
                &encode_replies(&replies),
            ));
        }
    }
}

/// Consecutive progress-free sweeps before a reactor parks on its condvar
/// (it yields the CPU between those sweeps, so traffic bursts stay cheap).
/// Kept small: every progress-free sweep probes *all* sockets — O(conns)
/// `WouldBlock` reads — so long spins burn syscalls exactly when the box
/// is busiest; parking instead hands the core to the workers (measurably
/// faster under the 64-connection probe on small machines).
const SPIN_SWEEPS: u32 = 4;
/// Park bound while connections are open: an upper bound on how late a
/// reactor notices fresh request bytes (completions interrupt the park).
const PARK_ACTIVE: Duration = Duration::from_micros(100);
/// Park bound with no connections at all.
const PARK_IDLE: Duration = Duration::from_millis(2);
/// How long shutdown keeps trying to flush un-delivered replies.
const FINAL_FLUSH_BUDGET: Duration = Duration::from_secs(2);

/// One reactor thread: adopt connections, apply completions, sweep every
/// connection's state machine, park when nothing moves.
fn reactor_loop(env: &ReactorEnv) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_id: u64 = 1;
    let mut idle: u32 = 0;
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        let (adopted, completions, stopping) = {
            let mut inbox = env.shared.inbox.lock().expect("reactor inbox");
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
                inbox.stopping,
            )
        };
        let mut progress = !adopted.is_empty() || !completions.is_empty();
        for stream in adopted {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            conns.push(Conn::new(next_id, stream));
            next_id += 1;
        }
        for done in completions {
            // Ids are assigned in increasing order and `retain` preserves
            // order, so the vec stays sorted — binary search is sound.
            if let Ok(at) = conns.binary_search_by_key(&done.conn, |c| c.id) {
                conns[at].complete(done);
            }
        }
        for conn in &mut conns {
            progress |= conn.pump(env, &mut scratch);
        }
        conns.retain_mut(|conn| {
            if conn.dead {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            !conn.dead
        });
        if stopping {
            final_flush(&mut conns);
            return;
        }
        if progress {
            idle = 0;
            continue;
        }
        idle += 1;
        if idle <= SPIN_SWEEPS {
            std::thread::yield_now();
            continue;
        }
        let park = if conns.is_empty() {
            PARK_IDLE
        } else {
            PARK_ACTIVE
        };
        let inbox = env.shared.inbox.lock().expect("reactor inbox");
        if inbox.conns.is_empty() && inbox.completions.is_empty() && !inbox.stopping {
            let _ = env
                .shared
                .wake
                .wait_timeout(inbox, park)
                .expect("reactor inbox");
        }
    }
}

/// Best-effort bounded flush of every connection's remaining reply bytes
/// at shutdown, then close the sockets.
fn final_flush(conns: &mut Vec<Conn>) {
    let deadline = Instant::now() + FINAL_FLUSH_BUDGET;
    loop {
        let mut remaining = false;
        for conn in conns.iter_mut() {
            conn.flush();
            remaining |= !conn.dead && !conn.write_buf.is_empty();
        }
        if !remaining || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for conn in conns.drain(..) {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

/// A running server. Dropping the handle shuts the server down (prefer
/// calling [`ServerHandle::shutdown`] to observe the drain explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    queue: Arc<BatchQueue>,
    counters: Arc<ServeCounters>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    reactors: Vec<Arc<ReactorShared>>,
    reactor_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.counters.served.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop admitting, answer everything already admitted,
    /// then tear the threads down (see the module docs for the order).
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return; // already shut down
        };
        self.stopping.store(true, Ordering::SeqCst);
        self.queue.close();
        // The acceptor blocks in accept(); a throwaway local connection
        // wakes it to observe `stopping`.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // Workers drain the queue dry — delivering every completion to its
        // reactor — then see `closed` and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Reactors apply those final completions, flush, and close.
        for reactor in &self.reactors {
            reactor.stop();
        }
        for thread in self.reactor_threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Binds `127.0.0.1:<port>` (port 0 = ephemeral, the test/CI default) and
/// starts serving `service` through `pool`.
pub fn serve<const D: usize>(
    service: Arc<SketchService<D>>,
    pool: Arc<ContextPool<D>>,
    config: &ServeConfig,
    port: u16,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let queue = Arc::new(BatchQueue::new(config.queue_capacity));
    let counters = Arc::new(ServeCounters::default());
    let stopping = Arc::new(AtomicBool::new(false));
    let limits = ConnLimits {
        write_buf_cap: config.write_buf_cap.max(1),
        max_pipeline: config.max_pipeline.max(1),
    };

    let reactors: Vec<Arc<ReactorShared>> = (0..config.reactors.max(1))
        .map(|_| Arc::new(ReactorShared::default()))
        .collect();
    let reactor_threads = reactors
        .iter()
        .map(|shared| {
            let env = ReactorEnv {
                shared: Arc::clone(shared),
                queue: Arc::clone(&queue),
                counters: Arc::clone(&counters),
                limits,
            };
            std::thread::spawn(move || reactor_loop(&env))
        })
        .collect();

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let (service, pool, queue, counters) = (
                Arc::clone(&service),
                Arc::clone(&pool),
                Arc::clone(&queue),
                Arc::clone(&counters),
            );
            let (max_batch, fault) = (config.max_batch.max(1), config.fault_injection);
            let window = Duration::from_micros(config.coalesce_us);
            std::thread::spawn(move || {
                worker_loop(&service, &pool, &queue, &counters, max_batch, window, fault)
            })
        })
        .collect();

    let acceptor = {
        let stopping = Arc::clone(&stopping);
        let reactors = reactors.clone();
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                if stopping.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                reactors[i % reactors.len()].adopt(stream);
            }
        })
    };

    Ok(ServerHandle {
        addr,
        queue,
        counters,
        stopping,
        acceptor: Some(acceptor),
        workers,
        reactors,
        reactor_threads,
    })
}

/// One worker: drain a (possibly coalesced) batch, answer it in a single
/// pooled-context pass, deliver the completions to their reactors. Exits
/// when the queue is closed and dry.
fn worker_loop<const D: usize>(
    service: &SketchService<D>,
    pool: &ContextPool<D>,
    queue: &BatchQueue,
    counters: &ServeCounters,
    max_batch: usize,
    window: Duration,
    fault_injection: bool,
) {
    loop {
        let batch = queue.drain(max_batch, window);
        if batch.is_empty() {
            return;
        }
        // One pool pass per batch: the first query pays epoch revalidation
        // and any view re-fold, the rest ride the warm caches — and the
        // batched answer path evaluates each store's queries in a single
        // multi-query kernel sweep. A panic anywhere in the pass poisons
        // the slot; `ContextPool::with` recovers it on the next checkout,
        // and this batch answers `Internal` rather than leaving its
        // connections waiting forever.
        let replies = catch_unwind(AssertUnwindSafe(|| {
            pool.with(|ctx| {
                let queries: Vec<&WireQuery> = batch.iter().map(|job| &job.query).collect();
                service.answer_batch(ctx, &queries, fault_injection)
            })
        }));
        counters.batches.fetch_add(1, Ordering::Relaxed);
        let replies = match replies {
            Ok(replies) => {
                counters
                    .served
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                replies
            }
            Err(_) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                vec![
                    WireReply::Error {
                        code: WireErrorCode::Internal,
                        message: "handler panicked evaluating this batch".into(),
                    };
                    batch.len()
                ]
            }
        };
        route_completions(batch, replies);
    }
}

/// Groups a batch's completions per reactor so each reactor's inbox lock
/// is taken (and its thread woken) once per pass, not once per query.
fn route_completions(batch: Vec<Job>, replies: Vec<WireReply>) {
    let mut groups: Vec<(Arc<ReactorShared>, Vec<Completion>)> = Vec::new();
    for (job, reply) in batch.into_iter().zip(replies) {
        let Origin {
            reactor,
            conn,
            frame,
            slot,
        } = job.origin;
        let done = Completion {
            conn,
            frame,
            slot,
            reply,
        };
        match groups.iter_mut().find(|(r, _)| Arc::ptr_eq(r, &reactor)) {
            Some((_, dones)) => dones.push(done),
            None => groups.push((reactor, vec![done])),
        }
    }
    for (reactor, dones) in groups {
        reactor.deliver(dones);
    }
}

//! Differential suite: the blocked query kernels against the scalar oracle.
//!
//! Every estimator under the kernel matrix (`QueryKernel::Batched` 64-lane,
//! `QueryKernel::Wide` 256-lane and `QueryKernel::Wide512` 512-lane
//! bit-sliced block evaluation, plus the default `Auto` resolution) must
//! produce **bit-identical** `Estimate`s —
//! boosted value *and* every row mean — to the scalar reference kernel
//! across all five query classes (spatial join, overlap+, range/stab,
//! containment, ε-join), both ξ constructions and dimensions 1–3. The
//! blocked kernels reorder the arithmetic across lanes but never within one
//! instance's accumulation, so any divergence at all is a kernel bug, not
//! float noise.
//!
//! Heavyweight cases (multi-block instance grids, 3-d) are gated to the
//! `tests-release` lane with `#[cfg_attr(debug_assertions, ignore)]`,
//! following the ROADMAP convention.

use fourwise::XiKind;
use geometry::{HyperRect, Interval, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketch::estimators::joins::{EndpointStrategy, OverlapPlusJoin, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{
    par_estimate, EpsJoin, Estimate, IntervalContainment, QueryContext, QueryKernel, RangeQuery,
    RangeStrategy, RectContainment,
};

const KINDS: [XiKind; 2] = [XiKind::Bch, XiKind::Poly];

fn assert_bit_identical(scalar: &Estimate, batched: &Estimate, label: &str) {
    assert_eq!(
        scalar.value.to_bits(),
        batched.value.to_bits(),
        "{label}: boosted value diverged ({} vs {})",
        scalar.value,
        batched.value
    );
    assert_eq!(
        scalar.row_means.len(),
        batched.row_means.len(),
        "{label}: row count diverged"
    );
    for (i, (a, b)) in scalar
        .row_means
        .iter()
        .zip(batched.row_means.iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: row mean {i} diverged");
    }
}

/// Runs the same estimate under the full kernel matrix (scalar oracle vs
/// batched vs wide vs wide512, plus the default `Auto` resolution) and
/// demands bit-identical results.
fn both(mut estimate: impl FnMut(&mut QueryContext) -> Estimate, label: &str) {
    let mut scalar_ctx = QueryContext::new().with_kernel(QueryKernel::Scalar);
    let scalar = estimate(&mut scalar_ctx);
    for kernel in [
        QueryKernel::Batched,
        QueryKernel::Wide,
        QueryKernel::Wide512,
    ] {
        let mut ctx = QueryContext::new().with_kernel(kernel);
        let got = estimate(&mut ctx);
        assert_bit_identical(&scalar, &got, &format!("{label}/{kernel:?}"));
        // Contexts are reusable: a second pass through warm scratch (and a
        // warm plan cache) agrees too.
        let again = estimate(&mut ctx);
        assert_bit_identical(&scalar, &again, &format!("{label}/{kernel:?}/warm-context"));
    }
    // The default context resolves per schema (or per SKETCH_KERNEL pin) to
    // one of the matrix kernels; whichever it picks must agree as well.
    let mut auto_ctx = QueryContext::new();
    assert_eq!(auto_ctx.kernel(), QueryKernel::Auto, "auto default");
    let auto = estimate(&mut auto_ctx);
    assert_bit_identical(&scalar, &auto, &format!("{label}/auto"));
}

fn rand_rects<const D: usize>(rng: &mut StdRng, n: usize, max: u64) -> Vec<HyperRect<D>> {
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..max - 17);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

fn rand_points<const D: usize>(rng: &mut StdRng, n: usize, max: u64) -> Vec<Point<D>> {
    (0..n)
        .map(|_| std::array::from_fn(|_| rng.gen_range(0..=max)))
        .collect()
}

/// One spatial-join configuration through both kernels and the
/// block-parallel path.
fn join_config<const D: usize>(kind: XiKind, strategy: EndpointStrategy, k1: usize, seed: u64) {
    let label = format!("join/{kind:?}/{strategy:?}/{D}d/{k1}x1");
    let mut rng = StdRng::seed_from_u64(seed);
    let join = SpatialJoin::<D>::new(
        &mut rng,
        SketchConfig::new(k1, 1).with_kind(kind),
        [8; D],
        strategy,
    );
    let mut r = join.new_sketch_r();
    let mut s = join.new_sketch_s();
    let max = (1u64 << r.data_bits()[0]) - 1;
    r.insert_slice(&rand_rects::<D>(&mut rng, 50, max)).unwrap();
    s.insert_slice(&rand_rects::<D>(&mut rng, 50, max)).unwrap();
    both(|ctx| join.estimate_with(ctx, &r, &s).unwrap(), &label);
    // Block-parallel estimation agrees bit-for-bit as well.
    let seq = join.estimate(&r, &s).unwrap();
    for threads in [1usize, 3] {
        let par = par_estimate(join.inner(), &r, &s, threads).unwrap();
        assert_bit_identical(&seq, &par, &format!("{label}/par{threads}"));
    }
}

#[test]
fn spatial_join_kernels_agree_1d() {
    for kind in KINDS {
        for (i, strategy) in [
            EndpointStrategy::AssumeDistinct,
            EndpointStrategy::Transform,
            EndpointStrategy::CorrectCommon,
        ]
        .into_iter()
        .enumerate()
        {
            // 67 instances: one full 64-lane block plus a 3-lane tail.
            join_config::<1>(kind, strategy, 67, 300 + i as u64);
        }
    }
}

#[test]
fn spatial_join_kernels_agree_2d() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        join_config::<2>(kind, EndpointStrategy::Transform, 67, 310 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn spatial_join_kernels_agree_3d_multiblock() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        // 150 instances: two full blocks plus a 22-lane tail.
        join_config::<3>(kind, EndpointStrategy::Transform, 150, 320 + i as u64);
        join_config::<3>(kind, EndpointStrategy::AssumeDistinct, 150, 325 + i as u64);
    }
}

#[test]
fn overlap_plus_kernels_agree() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let label = format!("overlap+/{kind:?}");
        let mut rng = StdRng::seed_from_u64(340 + i as u64);
        let join =
            OverlapPlusJoin::<2>::new(&mut rng, SketchConfig::new(13, 5).with_kind(kind), [8; 2]);
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        let max = (1u64 << r.data_bits()[0]) - 1;
        r.insert_slice(&rand_rects::<2>(&mut rng, 40, max)).unwrap();
        s.insert_slice(&rand_rects::<2>(&mut rng, 40, max)).unwrap();
        both(|ctx| join.estimate_with(ctx, &r, &s).unwrap(), &label);
    }
}

/// One range-query configuration (overlap counts + stabbing counts +
/// degenerate query) through both kernels.
fn range_config<const D: usize>(kind: XiKind, strategy: RangeStrategy, k1: usize, seed: u64) {
    let label = format!("range/{kind:?}/{strategy:?}/{D}d/{k1}x1");
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = RangeQuery::<D>::new(
        &mut rng,
        SketchConfig::new(k1, 1).with_kind(kind),
        [8; D],
        strategy,
    );
    let mut sk = rq.new_sketch();
    let data = rand_rects::<D>(&mut rng, 60, 255);
    sk.insert_slice(&data).unwrap();
    // A query sharing endpoints with the data on purpose.
    let q: HyperRect<D> = HyperRect::new(std::array::from_fn(|d| data[7].range(d)));
    both(|ctx| rq.estimate_with(ctx, &sk, &q).unwrap(), &label);
    // Stabbing at a data endpoint.
    let p: Point<D> = std::array::from_fn(|d| data[11].range(d).lo());
    both(
        |ctx| rq.estimate_stab_with(ctx, &sk, &p).unwrap(),
        &format!("{label}/stab"),
    );
    // Degenerate queries take the zero-grid path in both kernels.
    let degenerate: HyperRect<D> = HyperRect::new(std::array::from_fn(|d| {
        Interval::point(data[3].range(d).lo())
    }));
    both(
        |ctx| rq.estimate_with(ctx, &sk, &degenerate).unwrap(),
        &format!("{label}/degenerate"),
    );
}

#[test]
fn range_kernels_agree_1d_2d() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        range_config::<1>(kind, RangeStrategy::Transform, 67, 350 + i as u64);
        range_config::<2>(kind, RangeStrategy::AssumeDistinct, 13, 355 + i as u64);
        range_config::<2>(kind, RangeStrategy::Transform, 67, 360 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn range_kernels_agree_3d_multiblock() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        range_config::<3>(kind, RangeStrategy::Transform, 150, 370 + i as u64);
    }
}

#[test]
fn containment_kernels_agree() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let label = format!("containment/{kind:?}");
        let mut rng = StdRng::seed_from_u64(380 + i as u64);
        let est = IntervalContainment::new(&mut rng, SketchConfig::new(67, 1).with_kind(kind), 8);
        let mut outer = est.new_sketch_outer();
        let mut inner = est.new_sketch_inner();
        for _ in 0..40 {
            let lo = rng.gen_range(0..200u64);
            est.insert_outer(&mut outer, &Interval::new(lo, lo + rng.gen_range(8..40u64)))
                .unwrap();
            let lo = rng.gen_range(0..240u64);
            est.insert_inner(&mut inner, &Interval::new(lo, lo + rng.gen_range(1..14u64)))
                .unwrap();
        }
        both(
            |ctx| est.estimate_with(ctx, &outer, &inner).unwrap(),
            &label,
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn rect_containment_kernels_agree_4d_sketch() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let label = format!("rect-containment/{kind:?}");
        let mut rng = StdRng::seed_from_u64(390 + i as u64);
        let est = RectContainment::new(&mut rng, SketchConfig::new(130, 1).with_kind(kind), 6);
        let mut outer = est.new_sketch_outer();
        let mut inner = est.new_sketch_inner();
        for _ in 0..25 {
            let x = rng.gen_range(0..30u64);
            let y = rng.gen_range(0..30u64);
            est.insert_outer(
                &mut outer,
                &geometry::rect2(
                    x,
                    x + rng.gen_range(8..30u64),
                    y,
                    y + rng.gen_range(8..30u64),
                ),
            )
            .unwrap();
            let x = rng.gen_range(0..55u64);
            let y = rng.gen_range(0..55u64);
            est.insert_inner(
                &mut inner,
                &geometry::rect2(x, x + rng.gen_range(1..8u64), y, y + rng.gen_range(1..8u64)),
            )
            .unwrap();
        }
        both(
            |ctx| est.estimate_with(ctx, &outer, &inner).unwrap(),
            &label,
        );
    }
}

#[test]
fn eps_join_kernels_agree() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        for k1 in [13usize, 67] {
            let label = format!("eps/{kind:?}/{k1}x1");
            let mut rng = StdRng::seed_from_u64(400 + 10 * i as u64 + k1 as u64);
            let est = EpsJoin::<2>::new(&mut rng, SketchConfig::new(k1, 1).with_kind(kind), 8, 5);
            let mut a = est.new_sketch_a();
            let mut b = est.new_sketch_b();
            for p in rand_points::<2>(&mut rng, 50, 255) {
                est.insert_a(&mut a, &p).unwrap();
            }
            for p in rand_points::<2>(&mut rng, 50, 255) {
                est.insert_b(&mut b, &p).unwrap();
            }
            both(|ctx| est.estimate_with(ctx, &a, &b).unwrap(), &label);
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn eps_join_kernels_agree_3d_multiblock() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let label = format!("eps/{kind:?}/3d");
        let mut rng = StdRng::seed_from_u64(420 + i as u64);
        let est = EpsJoin::<3>::new(&mut rng, SketchConfig::new(150, 1).with_kind(kind), 7, 4);
        let mut a = est.new_sketch_a();
        let mut b = est.new_sketch_b();
        for p in rand_points::<3>(&mut rng, 40, 127) {
            est.insert_a(&mut a, &p).unwrap();
        }
        for p in rand_points::<3>(&mut rng, 40, 127) {
            est.insert_b(&mut b, &p).unwrap();
        }
        both(|ctx| est.estimate_with(ctx, &a, &b).unwrap(), &label);
    }
}

#[test]
fn self_join_estimates_agree() {
    use sketch::selfjoin::{estimate_self_join_with, estimate_word_self_join_with};
    for (i, kind) in KINDS.into_iter().enumerate() {
        let label = format!("selfjoin/{kind:?}");
        let mut rng = StdRng::seed_from_u64(430 + i as u64);
        let join = SpatialJoin::<2>::new(
            &mut rng,
            SketchConfig::new(67, 1).with_kind(kind),
            [8; 2],
            EndpointStrategy::AssumeDistinct,
        );
        let mut r = join.new_sketch_r();
        r.insert_slice(&rand_rects::<2>(&mut rng, 60, 255)).unwrap();
        both(|ctx| estimate_self_join_with(ctx, &r), &label);
        both(
            |ctx| estimate_word_self_join_with(ctx, &r, 1),
            &format!("{label}/word1"),
        );
    }
}

#[test]
fn boosting_grid_shapes_agree() {
    // Shapes below, at, and straddling the 64-lane block width — plus one
    // straddling the 256-lane wide width and one straddling the 512-lane
    // width; the row means feed the median, so every row must match
    // bitwise, not just the final value.
    for (i, (k1, k2)) in [
        (5usize, 3usize),
        (64, 1),
        (13, 5),
        (33, 4),
        (130, 2),
        (173, 3),
    ]
    .into_iter()
    .enumerate()
    {
        let label = format!("shapes/{k1}x{k2}");
        let mut rng = StdRng::seed_from_u64(440 + i as u64);
        let join = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(k1, k2),
            [8],
            EndpointStrategy::Transform,
        );
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        let max = (1u64 << r.data_bits()[0]) - 1;
        r.insert_slice(&rand_rects::<1>(&mut rng, 45, max)).unwrap();
        s.insert_slice(&rand_rects::<1>(&mut rng, 45, max)).unwrap();
        both(|ctx| join.estimate_with(ctx, &r, &s).unwrap(), &label);
    }
}

//! Atomic sketch sets: the maintained counters.
//!
//! A [`SketchSet`] holds, for every boosting instance `i` and every word `w`
//! in its word set, the atomic sketch value `X_w^{(i)}` — an integer counter
//! updated by `± Π_dim component(dim)` per inserted/deleted object
//! (Sections 3.1-3.2 of the paper). All instances share one
//! [`SketchSchema`], so sketch sets over the same schema are combinable into
//! join estimates.
//!
//! The hot loop is arranged so that per-object work shared by *all*
//! instances (dyadic covers and the GF(2^k) index cubes) is computed once
//! into a per-object scratch. Four kernels can then apply the scratch to
//! the counters (see [`BuildKernel`]): the scalar reference path walks
//! instances one at a time, while the blocked paths evaluate ξ for a whole
//! [`Lane`] word of instances per operation (bit-sliced seed planes,
//! `fourwise::batch`) — [`BLOCK_LANES`] lanes batched, 256 or 512 lanes
//! wide — and walk the counter array one contiguous instance-block at a
//! time. All four produce bit-identical counters.

use crate::comp::{Comp, Word};
use crate::error::{Result, SketchError};
use crate::kernel::{self, Width};
use crate::schema::{SchemaLanes, SketchSchema};
use dyadic::{interval_cover_into, point_cover_into};
use fourwise::{IndexPre, Lane, LaneCounter, WideLane, WideLane512};

#[cfg(doc)]
use fourwise::BLOCK_LANES;
use geometry::transform::{shrink_interval, triple, triple_interval};
use geometry::{HyperRect, Interval};
use std::sync::Arc;

/// Objects per scratch chunk in [`SketchSet::update_slice`]: bounds scratch
/// memory (a couple of KB per object) while letting one cover computation
/// serve every instance block that streams over the chunk.
pub(crate) const OBJ_CHUNK: usize = 128;

/// Which implementation maintains the counters on insert/delete.
///
/// All kernels compute the exact same integer counter updates — the scalar
/// path is retained as the differential-test oracle and for pathological
/// shapes (it has no per-block fixed costs), and each blocked width doubles
/// as the oracle for the next (the oracle chain Scalar → Batched → Wide →
/// Wide512). [`SketchSet::new`] picks the default per schema through the
/// runtime dispatcher (`sketch::kernel`): the `SKETCH_KERNEL` env override
/// if set, otherwise the instance-count heuristic capped by the detected
/// CPU vector width — [`BuildKernel::Wide512`] from
/// [`kernel::WIDE512_MIN_INSTANCES`] instances on `avx512f` machines,
/// [`BuildKernel::Wide`] from [`kernel::WIDE_MIN_INSTANCES`], and
/// [`BuildKernel::Batched`] below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildKernel {
    /// Per-instance scalar ξ evaluation (the original reference path).
    Scalar,
    /// Bit-sliced evaluation of [`BLOCK_LANES`] instances per pass with a
    /// cache-blocked counter walk.
    #[default]
    Batched,
    /// Bit-sliced evaluation of 256 instances per pass over
    /// [`WideLane`]-packed seed planes — the same kernel as
    /// [`BuildKernel::Batched`] instantiated at the four-word lane width
    /// LLVM autovectorizes.
    Wide,
    /// Bit-sliced evaluation of 512 instances per pass over
    /// [`WideLane512`]-packed seed planes (the AVX-512 register shape).
    Wide512,
}

impl From<Width> for BuildKernel {
    fn from(width: Width) -> Self {
        match width {
            Width::Scalar => BuildKernel::Scalar,
            Width::Batched => BuildKernel::Batched,
            Width::Wide => BuildKernel::Wide,
            Width::Wide512 => BuildKernel::Wide512,
        }
    }
}

/// How object geometry is mapped into the sketch coordinate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointPolicy {
    /// Coordinates are used as-is. Join estimates then require the paper's
    /// Assumption 1 (no endpoint shared between the two relations) unless an
    /// Appendix-C estimator is used.
    Raw,
    /// Coordinates are tripled (`x → 3x`), embedding into the enlarged
    /// domain of Section 5.2. Used for the `R` side of transformed joins.
    Tripled,
    /// Coordinates are tripled and geometric components use the *shrunken*
    /// range `[3l + 1, 3u - 1]`; leaf components keep the tripled original
    /// endpoints (Appendix B.1). Used for the `S` side of transformed joins.
    /// Ranges degenerate in a dimension contribute zero to that dimension's
    /// geometric components.
    TripledShrunk,
}

impl EndpointPolicy {
    /// Extra domain bits this policy needs over the data domain.
    pub fn extra_bits(&self) -> u32 {
        match self {
            EndpointPolicy::Raw => 0,
            EndpointPolicy::Tripled | EndpointPolicy::TripledShrunk => 2,
        }
    }

    /// Maps a data-domain range to (geometric range, leaf endpoint coords).
    fn apply(&self, iv: &Interval) -> (Option<Interval>, u64, u64) {
        match self {
            EndpointPolicy::Raw => (Some(*iv), iv.lo(), iv.hi()),
            EndpointPolicy::Tripled => {
                (Some(triple_interval(iv)), triple(iv.lo()), triple(iv.hi()))
            }
            EndpointPolicy::TripledShrunk => {
                (shrink_interval(iv), triple(iv.lo()), triple(iv.hi()))
            }
        }
    }
}

/// Which component inputs a dimension actually needs (derived from the word
/// set so updates skip unused cover computations).
#[derive(Debug, Clone, Copy, Default)]
struct DimNeeds {
    cover: bool,
    pcover: bool,
    leaf: bool,
}

/// Per-dimension precomputed node lists for one object.
#[derive(Debug, Clone)]
pub(crate) struct DimScratch {
    cover: Vec<IndexPre>,
    pcover_lo: Vec<IndexPre>,
    pcover_hi: Vec<IndexPre>,
    leaf_lo: IndexPre,
    leaf_hi: IndexPre,
    geo_present: bool,
    /// Reusable node-id buffer (avoids per-update allocation).
    ids: Vec<u64>,
}

/// Shared per-object precomputation: node ids and their GF cubes, one set
/// per dimension, reused across all sketch instances.
#[derive(Debug, Clone)]
pub(crate) struct RectScratch<const D: usize> {
    dims: [DimScratch; D],
}

impl<const D: usize> RectScratch<D> {
    pub(crate) fn new() -> Self {
        Self {
            dims: std::array::from_fn(|_| DimScratch {
                cover: Vec::new(),
                pcover_lo: Vec::new(),
                pcover_hi: Vec::new(),
                leaf_lo: IndexPre { index: 0, cube: 0 },
                leaf_hi: IndexPre { index: 0, cube: 0 },
                geo_present: false,
                ids: Vec::new(),
            }),
        }
    }
}

/// Per-instance, per-dimension component values.
#[derive(Debug, Clone, Copy)]
struct DimVals {
    interval: i64,
    lo: i64,
    hi: i64,
    leaf_lo: i64,
    leaf_hi: i64,
}

impl DimVals {
    #[inline]
    fn get(&self, comp: Comp) -> i64 {
        match comp {
            Comp::Interval => self.interval,
            Comp::Endpoints => self.lo + self.hi,
            Comp::LowerPoint => self.lo,
            Comp::UpperPoint => self.hi,
            Comp::LowerLeaf => self.leaf_lo,
            Comp::UpperLeaf => self.leaf_hi,
        }
    }
}

/// One dimension's component values for a whole instance block, one lane per
/// instance (the block analogue of `DimVals`). Sized for the owning
/// scratch's lane width.
#[derive(Debug, Clone)]
struct DimLanes {
    interval: Vec<i64>,
    lo: Vec<i64>,
    hi: Vec<i64>,
    leaf_lo: Vec<i64>,
    leaf_hi: Vec<i64>,
}

impl DimLanes {
    fn new(lanes: usize) -> Self {
        Self {
            interval: vec![0; lanes],
            lo: vec![0; lanes],
            hi: vec![0; lanes],
            leaf_lo: vec![0; lanes],
            leaf_hi: vec![0; lanes],
        }
    }

    /// Multiplies one word component's column into the per-lane product
    /// buffer: `prod[j] *= component(word[dim], lane j)`. Every arm is a
    /// contiguous elementwise `i64` loop the compiler autovectorizes at any
    /// lane width — the per-lane multiply order (dimension by dimension)
    /// matches the scalar kernel exactly, keeping the counters
    /// bit-identical.
    #[inline]
    fn mul_into(&self, comp: Comp, prod: &mut [i64]) {
        match comp {
            Comp::Interval => mul_lanes(prod, &self.interval),
            Comp::Endpoints => {
                for (p, (lo, hi)) in prod.iter_mut().zip(self.lo.iter().zip(self.hi.iter())) {
                    *p *= *lo + *hi;
                }
            }
            Comp::LowerPoint => mul_lanes(prod, &self.lo),
            Comp::UpperPoint => mul_lanes(prod, &self.hi),
            Comp::LowerLeaf => mul_lanes(prod, &self.leaf_lo),
            Comp::UpperLeaf => mul_lanes(prod, &self.leaf_hi),
        }
    }
}

/// Elementwise product-accumulate over lanes (`prod[j] *= vals[j]`).
#[inline]
fn mul_lanes(prod: &mut [i64], vals: &[i64]) {
    for (p, v) in prod.iter_mut().zip(vals.iter()) {
        *p *= *v;
    }
}

/// Reusable working memory of the blocked kernels: one carry-save counter
/// plus per-dimension component lanes, at the kernel's lane width.
/// Allocated lazily and kept across updates; workers in `par` hold one
/// each.
#[derive(Debug, Clone)]
pub(crate) struct LaneScratch<L: Lane, const D: usize> {
    counter: LaneCounter<L>,
    dims: [DimLanes; D],
    /// Per-lane running word product (see [`DimLanes::mul_into`]).
    prod: Vec<i64>,
}

impl<L: Lane, const D: usize> LaneScratch<L, D> {
    pub(crate) fn new() -> Self {
        Self {
            counter: LaneCounter::new(),
            dims: std::array::from_fn(|_| DimLanes::new(L::LANES)),
            prod: vec![0; L::LANES],
        }
    }
}

/// A set of atomic sketches (one per word per instance) over one relation.
#[derive(Debug, Clone)]
pub struct SketchSet<const D: usize> {
    schema: Arc<SketchSchema<D>>,
    words: Arc<Vec<Word<D>>>,
    policy: EndpointPolicy,
    data_bits: [u32; D],
    needs: [DimNeeds; D],
    /// Counter layout: `counters[instance * words.len() + word_idx]` —
    /// instance-major, so one instance block's rows are contiguous.
    counters: Vec<i64>,
    /// Net inserted object count (inserts minus deletes).
    len: i64,
    kernel: BuildKernel,
    scratch: RectScratch<D>,
    /// Lazily allocated batched-kernel working memory (`None` until first
    /// batched update).
    lanes: Option<LaneScratch<u64, D>>,
    /// Wide-kernel working memory, likewise lazy.
    lanes_wide: Option<LaneScratch<WideLane, D>>,
    /// 512-lane-kernel working memory, likewise lazy.
    lanes_wide512: Option<LaneScratch<WideLane512, D>>,
}

impl<const D: usize> SketchSet<D> {
    /// Creates an empty sketch set.
    ///
    /// `words` is the set of atomic sketches to maintain; `policy` maps data
    /// coordinates into the sketch domain. The schema's per-dimension domain
    /// must be large enough for the policy (`data_bits = sketch_bits -
    /// policy.extra_bits()` is the admissible input range).
    ///
    /// The maintenance kernel defaults to the schema's preferred width (see
    /// [`BuildKernel`]); override with [`SketchSet::with_kernel`].
    pub fn new(
        schema: Arc<SketchSchema<D>>,
        words: Arc<Vec<Word<D>>>,
        policy: EndpointPolicy,
    ) -> Self {
        assert!(!words.is_empty(), "sketch sets need at least one word");
        let mut needs = [DimNeeds::default(); D];
        for w in words.iter() {
            for (dim, comp) in w.iter().enumerate() {
                match comp {
                    Comp::Interval => needs[dim].cover = true,
                    Comp::Endpoints | Comp::LowerPoint | Comp::UpperPoint => {
                        needs[dim].pcover = true
                    }
                    Comp::LowerLeaf | Comp::UpperLeaf => needs[dim].leaf = true,
                }
            }
        }
        let data_bits = std::array::from_fn(|i| schema.dims()[i].sketch_bits - policy.extra_bits());
        let counters = vec![0i64; schema.instances() * words.len()];
        let kernel = kernel::preferred(schema.instances()).into();
        Self {
            schema,
            words,
            policy,
            data_bits,
            needs,
            counters,
            len: 0,
            kernel,
            scratch: RectScratch::new(),
            lanes: None,
            lanes_wide: None,
            lanes_wide512: None,
        }
    }

    /// Selects the maintenance kernel (builder form).
    pub fn with_kernel(mut self, kernel: BuildKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the maintenance kernel in place. Kernels are interchangeable
    /// at any point: all compute bit-identical counter updates.
    pub fn set_kernel(&mut self, kernel: BuildKernel) {
        self.kernel = kernel;
    }

    /// The active maintenance kernel.
    pub fn kernel(&self) -> BuildKernel {
        self.kernel
    }

    /// The schema this sketch was drawn from.
    pub fn schema(&self) -> &Arc<SketchSchema<D>> {
        &self.schema
    }

    /// The maintained words.
    pub fn words(&self) -> &Arc<Vec<Word<D>>> {
        &self.words
    }

    /// The endpoint policy.
    pub fn policy(&self) -> EndpointPolicy {
        self.policy
    }

    /// Admissible data-domain bits per dimension.
    pub fn data_bits(&self) -> &[u32; D] {
        &self.data_bits
    }

    /// Net number of objects currently summarized.
    pub fn len(&self) -> i64 {
        self.len
    }

    /// Whether no net objects are summarized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw counter of `(instance, word_idx)`.
    pub fn counter(&self, instance: usize, word_idx: usize) -> i64 {
        self.counters[instance * self.words.len() + word_idx]
    }

    /// All counters of one instance, ordered like [`SketchSet::words`].
    pub fn instance_counters(&self, instance: usize) -> &[i64] {
        let w = self.words.len();
        &self.counters[instance * w..(instance + 1) * w]
    }

    /// The full counter array, instance-major (`[instance][word]`) — the
    /// batched query kernel walks whole instance blocks of it contiguously.
    pub(crate) fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Inserts an object (cost `O(instances · d · log n)`).
    pub fn insert(&mut self, rect: &HyperRect<D>) -> Result<()> {
        self.update(rect, 1)
    }

    /// Deletes a previously inserted object. Sketches are linear, so
    /// deletion is exact: deleting everything inserted returns the sketch to
    /// the all-zero state.
    pub fn delete(&mut self, rect: &HyperRect<D>) -> Result<()> {
        self.update(rect, -1)
    }

    /// Applies a signed update.
    pub fn update(&mut self, rect: &HyperRect<D>, delta: i64) -> Result<()> {
        let mut scratch = std::mem::replace(&mut self.scratch, RectScratch::new());
        let res = self.fill_scratch(rect, &mut scratch);
        if res.is_ok() {
            self.apply_scratch(&scratch, delta);
            self.len += delta;
        }
        self.scratch = scratch;
        res
    }

    /// Inserts every rectangle of a slice; see [`SketchSet::update_slice`].
    pub fn insert_slice(&mut self, rects: &[HyperRect<D>]) -> Result<()> {
        self.update_slice(rects, 1)
    }

    /// Deletes every rectangle of a slice; see [`SketchSet::update_slice`].
    pub fn delete_slice(&mut self, rects: &[HyperRect<D>]) -> Result<()> {
        self.update_slice(rects, -1)
    }

    /// Applies one signed update per rectangle, amortizing the per-object
    /// cover computation across the slice: objects are ingested in chunks of
    /// `OBJ_CHUNK` (128) scratches, and (under the batched kernel) each instance
    /// block streams over a whole chunk before the walk moves to the next
    /// block, so a block's counters and packed seed planes stay cache-hot.
    ///
    /// All rectangles are validated up front — either the whole slice
    /// applies or the sketch is untouched.
    pub fn update_slice(&mut self, rects: &[HyperRect<D>], delta: i64) -> Result<()> {
        for r in rects {
            self.validate_rect(r)?;
        }
        let mut scratches: Vec<RectScratch<D>> = (0..OBJ_CHUNK.min(rects.len()))
            .map(|_| RectScratch::new())
            .collect();
        for chunk in rects.chunks(OBJ_CHUNK) {
            for (slot, rect) in scratches.iter_mut().zip(chunk.iter()) {
                self.fill_scratch(rect, slot).expect("validated above");
            }
            self.apply_chunk(&scratches[..chunk.len()], delta);
        }
        self.len += delta * rects.len() as i64;
        Ok(())
    }

    /// Applies a chunk of filled scratches to every instance through the
    /// active kernel (blocked kernels stream the whole chunk per block so
    /// seed planes and counter rows stay cache-hot).
    fn apply_chunk(&mut self, scratches: &[RectScratch<D>], delta: i64) {
        match self.kernel {
            BuildKernel::Batched => {
                let mut lanes = self.lanes.take().unwrap_or_else(LaneScratch::new);
                apply_chunk_blocked(
                    &self.schema,
                    &self.words,
                    scratches,
                    &mut lanes,
                    &mut self.counters,
                    delta,
                );
                self.lanes = Some(lanes);
            }
            BuildKernel::Wide => {
                let mut lanes = self.lanes_wide.take().unwrap_or_else(LaneScratch::new);
                apply_chunk_blocked(
                    &self.schema,
                    &self.words,
                    scratches,
                    &mut lanes,
                    &mut self.counters,
                    delta,
                );
                self.lanes_wide = Some(lanes);
            }
            BuildKernel::Wide512 => {
                let mut lanes = self.lanes_wide512.take().unwrap_or_else(LaneScratch::new);
                apply_chunk_blocked(
                    &self.schema,
                    &self.words,
                    scratches,
                    &mut lanes,
                    &mut self.counters,
                    delta,
                );
                self.lanes_wide512 = Some(lanes);
            }
            BuildKernel::Scalar => {
                let w = self.words.len();
                for instance in 0..self.schema.instances() {
                    let row_start = instance * w;
                    for scratch in scratches {
                        apply_instance(
                            &self.schema,
                            &self.words,
                            scratch,
                            instance,
                            &mut self.counters[row_start..row_start + w],
                            delta,
                        );
                    }
                }
            }
        }
    }

    /// Applies one filled scratch to every instance through the active
    /// kernel.
    fn apply_scratch(&mut self, scratch: &RectScratch<D>, delta: i64) {
        self.apply_chunk(std::slice::from_ref(scratch), delta);
    }

    /// Checks that an object fits the admissible data domain.
    pub(crate) fn validate_rect(&self, rect: &HyperRect<D>) -> Result<()> {
        for dim in 0..D {
            let iv = rect.range(dim);
            let max = (1u64 << self.data_bits[dim]) - 1;
            if iv.hi() > max {
                return Err(SketchError::DomainOverflow {
                    coord: iv.hi(),
                    max,
                    dim,
                });
            }
        }
        Ok(())
    }

    /// Validates an object and fills the shared per-object scratch.
    pub(crate) fn fill_scratch(
        &self,
        rect: &HyperRect<D>,
        scratch: &mut RectScratch<D>,
    ) -> Result<()> {
        self.validate_rect(rect)?;
        for dim in 0..D {
            let iv = rect.range(dim);
            let (geo, leaf_lo, leaf_hi) = self.policy.apply(&iv);
            let ds = &mut scratch.dims[dim];
            let dyadic = &self.schema.dyadic()[dim];
            let ctx = &self.schema.xi_ctx()[dim];
            let max_level = self.schema.dims()[dim].max_level;
            ds.cover.clear();
            ds.pcover_lo.clear();
            ds.pcover_hi.clear();
            ds.geo_present = geo.is_some();
            if let Some(g) = geo {
                let needs = &self.needs[dim];
                if needs.cover {
                    ds.ids.clear();
                    interval_cover_into(dyadic, &g, max_level, &mut ds.ids);
                    ds.cover.extend(ds.ids.iter().map(|&id| ctx.precompute(id)));
                }
                if needs.pcover {
                    ds.ids.clear();
                    point_cover_into(dyadic, g.lo(), max_level, &mut ds.ids);
                    ds.pcover_lo
                        .extend(ds.ids.iter().map(|&id| ctx.precompute(id)));
                    ds.ids.clear();
                    point_cover_into(dyadic, g.hi(), max_level, &mut ds.ids);
                    ds.pcover_hi
                        .extend(ds.ids.iter().map(|&id| ctx.precompute(id)));
                }
            }
            if self.needs[dim].leaf {
                ds.leaf_lo = ctx.precompute(dyadic.leaf(leaf_lo));
                ds.leaf_hi = ctx.precompute(dyadic.leaf(leaf_hi));
            }
        }
        Ok(())
    }

    /// Resets every counter to zero and the net length to `0`, keeping the
    /// schema, words, policy and kernel scratch. A reset sketch is
    /// indistinguishable from a freshly constructed one — the serving layer
    /// reuses one sketch set per worker as a cross-shard merge target
    /// instead of reallocating per query.
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.len = 0;
    }

    /// Folds another sketch set into this one (multiset union). Both must
    /// share schema, words and policy; sketches are linear so the result
    /// summarizes the concatenation of both inputs.
    pub fn merge_from(&mut self, other: &SketchSet<D>) -> Result<()> {
        self.check_mergeable(other)?;
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        self.len += other.len;
        Ok(())
    }

    /// Subtracts another sketch set (multiset difference).
    pub fn unmerge_from(&mut self, other: &SketchSet<D>) -> Result<()> {
        self.check_mergeable(other)?;
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c -= o;
        }
        self.len -= other.len;
        Ok(())
    }

    pub(crate) fn check_mergeable(&self, other: &SketchSet<D>) -> Result<()> {
        if self.schema.id() != other.schema.id() {
            return Err(SketchError::SchemaMismatch);
        }
        if self.words != other.words || self.policy != other.policy {
            return Err(SketchError::WordMismatch);
        }
        Ok(())
    }

    /// Whether `self` and `other` can be multiplied into an estimate
    /// (same schema; word sets may differ).
    pub fn same_schema(&self, other: &SketchSet<D>) -> bool {
        self.schema.id() == other.schema.id()
    }

    /// Index of a word within this sketch's word list.
    pub fn word_index(&self, w: &Word<D>) -> Option<usize> {
        self.words.iter().position(|x| x == w)
    }

    /// Mutable access to the raw counter array, exposed for the parallel
    /// batch builder. Layout: `[instance][word]`.
    pub(crate) fn counters_mut(&mut self) -> &mut Vec<i64> {
        &mut self.counters
    }

    /// Adjusts the net length (parallel builder bookkeeping).
    pub(crate) fn add_len(&mut self, delta: i64) {
        self.len += delta;
    }
}

/// Applies one object's scratch to one instance's counter row.
pub(crate) fn apply_instance<const D: usize>(
    schema: &SketchSchema<D>,
    words: &[Word<D>],
    scratch: &RectScratch<D>,
    instance: usize,
    counter_row: &mut [i64],
    delta: i64,
) {
    let seeds = schema.instance_seeds(instance);
    let mut vals = [DimVals {
        interval: 0,
        lo: 0,
        hi: 0,
        leaf_lo: 0,
        leaf_hi: 0,
    }; D];
    for dim in 0..D {
        let fam = schema.xi_ctx()[dim].family(seeds[dim]);
        let ds = &scratch.dims[dim];
        let v = &mut vals[dim];
        if ds.geo_present {
            v.interval = fam.sum_pre(&ds.cover);
            v.lo = fam.sum_pre(&ds.pcover_lo);
            v.hi = fam.sum_pre(&ds.pcover_hi);
        }
        v.leaf_lo = fam.xi_pre(ds.leaf_lo);
        v.leaf_hi = fam.xi_pre(ds.leaf_hi);
    }
    for (slot, w) in counter_row.iter_mut().zip(words.iter()) {
        let mut prod = delta;
        for dim in 0..D {
            prod *= vals[dim].get(w[dim]);
        }
        *slot += prod;
    }
}

/// Streams a chunk of object scratches over every instance block at lane
/// width `L`: the cache-blocked outer walk shared by the batched and wide
/// kernels ([`SketchSet::update_slice`] and the single-object path alike).
pub(crate) fn apply_chunk_blocked<L: SchemaLanes, const D: usize>(
    schema: &SketchSchema<D>,
    words: &[Word<D>],
    scratches: &[RectScratch<D>],
    lanes: &mut LaneScratch<L, D>,
    counters: &mut [i64],
    delta: i64,
) {
    let w = words.len();
    for b in 0..L::instance_blocks(schema) {
        let base = b * L::LANES;
        let rows = L::seed_blocks(schema, 0)[b].lanes();
        for (i, scratch) in scratches.iter().enumerate() {
            // Software prefetch: touch the next scratch's streamed node
            // lists while this one is being applied, so its cache lines are
            // resident when the walk gets there.
            if let Some(next) = scratches.get(i + 1) {
                prefetch_scratch(next);
            }
            apply_block(
                schema,
                words,
                scratch,
                b,
                lanes,
                &mut counters[base * w..(base + rows) * w],
                delta,
            );
        }
    }
}

/// Portable software prefetch of one object scratch: demand-reads one entry
/// per cache line of every streamed node list (`IndexPre` is 16 bytes, so
/// stride 4 covers 64-byte lines) and anchors the reads behind
/// [`std::hint::black_box`] so they survive optimization. The workspace
/// forbids `unsafe`, which rules out `_mm_prefetch`; an early demand touch
/// of lines the block walk is about to stream is the portable equivalent.
#[inline]
fn prefetch_scratch<const D: usize>(scratch: &RectScratch<D>) {
    const STRIDE: usize = 4;
    let mut acc = 0u64;
    for ds in &scratch.dims {
        for list in [&ds.cover, &ds.pcover_lo, &ds.pcover_hi] {
            let mut i = 0;
            while i < list.len() {
                acc ^= list[i].index;
                i += STRIDE;
            }
        }
    }
    std::hint::black_box(acc);
}

/// Applies one object's scratch to a whole instance block's counter rows.
///
/// `counter_rows` must hold exactly the block's rows (`lanes × words.len()`
/// counters, instance-major). The per-dimension component sums for all lanes
/// are computed by one bit-sliced pass over the cover nodes; the word
/// products then run word-major — per word, the per-lane product column is
/// built up dimension by dimension with contiguous elementwise multiplies
/// (see [`DimLanes::mul_into`]) and scattered into the counter rows once.
/// Generic over the [`Lane`] width — the batched (64-lane) and the two wide
/// (256/512-lane) kernels are the instantiations.
pub(crate) fn apply_block<L: SchemaLanes, const D: usize>(
    schema: &SketchSchema<D>,
    words: &[Word<D>],
    scratch: &RectScratch<D>,
    block: usize,
    ls: &mut LaneScratch<L, D>,
    counter_rows: &mut [i64],
    delta: i64,
) {
    let lanes = L::seed_blocks(schema, 0)[block].lanes();
    let LaneScratch {
        counter,
        dims,
        prod,
    } = ls;
    for (dim, dl) in dims.iter_mut().enumerate() {
        let xb = &L::seed_blocks(schema, dim)[block];
        let ds = &scratch.dims[dim];
        if ds.geo_present {
            xb.sum_pre_into(&ds.cover, counter, &mut dl.interval);
            xb.sum_pre_into(&ds.pcover_lo, counter, &mut dl.lo);
            xb.sum_pre_into(&ds.pcover_hi, counter, &mut dl.hi);
        } else {
            dl.interval[..lanes].fill(0);
            dl.lo[..lanes].fill(0);
            dl.hi[..lanes].fill(0);
        }
        let mask_lo = xb.eval_mask(ds.leaf_lo);
        let mask_hi = xb.eval_mask(ds.leaf_hi);
        for j in 0..lanes {
            dl.leaf_lo[j] = 1 - 2 * mask_lo.bit(j) as i64;
            dl.leaf_hi[j] = 1 - 2 * mask_hi.bit(j) as i64;
        }
    }
    let w = words.len();
    debug_assert_eq!(counter_rows.len(), lanes * w);
    let prod = &mut prod[..lanes];
    for (wi, word) in words.iter().enumerate() {
        prod.fill(delta);
        for dim in 0..D {
            dims[dim].mul_into(word[dim], prod);
        }
        for (lane, p) in prod.iter().enumerate() {
            counter_rows[lane * w + wi] += *p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::ie_words;
    use crate::schema::{BoostShape, DimSpec};
    use fourwise::XiKind;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema2(seed: u64, k1: usize, k2: usize) -> Arc<SketchSchema<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        SketchSchema::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(k1, k2),
            [DimSpec::dyadic(8); 2],
        )
    }

    #[test]
    fn insert_then_delete_returns_to_zero() {
        let schema = schema2(1, 3, 3);
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
        let rects = [
            rect2(1, 10, 2, 20),
            rect2(0, 255, 0, 255),
            rect2(7, 9, 200, 201),
        ];
        for r in &rects {
            sk.insert(r).unwrap();
        }
        assert_eq!(sk.len(), 3);
        assert!(sk.counters.iter().any(|&c| c != 0));
        for r in &rects {
            sk.delete(r).unwrap();
        }
        assert_eq!(sk.len(), 0);
        assert!(sk.counters.iter().all(|&c| c == 0));
    }

    #[test]
    fn domain_overflow_rejected_and_sketch_unchanged() {
        let schema = schema2(2, 2, 2);
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
        let err = sk.insert(&rect2(0, 300, 0, 10)).unwrap_err();
        assert!(matches!(err, SketchError::DomainOverflow { dim: 0, .. }));
        assert_eq!(sk.len(), 0);
        assert!(sk.counters.iter().all(|&c| c == 0));
    }

    #[test]
    fn tripled_policies_shrink_admissible_domain() {
        let schema = schema2(3, 1, 1);
        let words = Arc::new(ie_words::<2>());
        let sk = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Tripled);
        assert_eq!(sk.data_bits(), &[6, 6]);
        let mut sk = sk;
        // 63 is the max admissible coordinate now.
        sk.insert(&rect2(0, 63, 0, 63)).unwrap();
        assert!(sk.insert(&rect2(0, 64, 0, 1)).is_err());
    }

    #[test]
    fn deterministic_across_equal_schemas() {
        // Same seed -> same schema RNG -> identical counters.
        let a = {
            let schema = schema2(7, 2, 3);
            let mut sk = SketchSet::new(schema, Arc::new(ie_words::<2>()), EndpointPolicy::Raw);
            sk.insert(&rect2(3, 99, 14, 200)).unwrap();
            sk.counters.clone()
        };
        let b = {
            let schema = schema2(7, 2, 3);
            let mut sk = SketchSet::new(schema, Arc::new(ie_words::<2>()), EndpointPolicy::Raw);
            sk.insert(&rect2(3, 99, 14, 200)).unwrap();
            sk.counters.clone()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_linear() {
        let schema = schema2(9, 2, 2);
        let words = Arc::new(ie_words::<2>());
        let mut all = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw);
        let mut part1 = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw);
        let mut part2 = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw);
        let rs = [
            rect2(0, 5, 0, 5),
            rect2(10, 30, 10, 30),
            rect2(4, 200, 90, 110),
        ];
        all.insert(&rs[0]).unwrap();
        all.insert(&rs[1]).unwrap();
        all.insert(&rs[2]).unwrap();
        part1.insert(&rs[0]).unwrap();
        part2.insert(&rs[1]).unwrap();
        part2.insert(&rs[2]).unwrap();
        part1.merge_from(&part2).unwrap();
        assert_eq!(part1.counters, all.counters);
        assert_eq!(part1.len(), 3);
        part1.unmerge_from(&part2).unwrap();
        part1
            .unmerge_from(&{
                let mut s = SketchSet::new(schema, words, EndpointPolicy::Raw);
                s.insert(&rs[0]).unwrap();
                s
            })
            .unwrap();
        assert!(part1.counters.iter().all(|&c| c == 0));
    }

    #[test]
    fn merge_rejects_different_schema() {
        let words = Arc::new(ie_words::<2>());
        let mut a = SketchSet::new(schema2(1, 2, 2), words.clone(), EndpointPolicy::Raw);
        let b = SketchSet::new(schema2(2, 2, 2), words, EndpointPolicy::Raw);
        assert_eq!(a.merge_from(&b).unwrap_err(), SketchError::SchemaMismatch);
    }

    #[test]
    fn shrunk_policy_drops_degenerate_geometry_but_keeps_leaves() {
        let schema = schema2(11, 1, 1);
        // One word reading geometry, one reading leaves.
        let words = Arc::new(vec![
            [Comp::Interval, Comp::Interval],
            [Comp::LowerLeaf, Comp::LowerLeaf],
        ]);
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::TripledShrunk);
        // Degenerate in dim 0: geometric word contributes 0, leaf word +-1.
        sk.insert(&rect2(5, 5, 1, 9)).unwrap();
        assert_eq!(sk.counter(0, 0), 0);
        assert_ne!(sk.counter(0, 1), 0);
    }

    #[test]
    fn counter_magnitude_bounded_by_cover_sizes() {
        let schema = schema2(13, 1, 1);
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
        sk.insert(&rect2(0, 255, 0, 255)).unwrap();
        // Per dim: |I| <= 2*8 = 16 cover nodes, |E| <= 2*(8+1).
        for (i, w) in ie_words::<2>().iter().enumerate() {
            let bound: i64 = w
                .iter()
                .map(|c| match c {
                    Comp::Endpoints => 18i64,
                    _ => 16i64,
                })
                .product();
            assert!(sk.counter(0, i).abs() <= bound, "word {i}");
        }
    }
}

//! Reusable perf-probe harnesses: build, estimate and serve throughput
//! sweeps with self-describing JSON records.
//!
//! The `perf_probe` binary drives these interactively; the `perf_check`
//! binary reruns the quick presets in CI and compares the returned records
//! against the committed `BENCH_*.json` anchors. Every probe **appends**
//! its record to `results/perf_probe.json` (the committed anchors are
//! copies of such records) and returns it for in-process comparison.

use rand::SeedableRng;
use serve::net::{range_query as wire_range, SketchClient, WireReply};
use serve::{ContextPool, QueryRouter, ServeConfig, ShardedStore, SketchService};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, BatchQuery, BuildKernel, QueryContext, QueryKernel};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Milliseconds of repeated calls per timing point (the estimate path is
/// microseconds per call, so each point averages thousands of calls).
const ESTIMATE_PROBE_BUDGET_MS: u128 = 250;

/// `(name, lane_width, block_size)` of a build kernel, recorded with every
/// probe point.
pub fn build_kernel_meta(kernel: BuildKernel) -> (&'static str, usize, usize) {
    match kernel {
        BuildKernel::Scalar => ("scalar", 1, 1),
        BuildKernel::Batched => ("batched", 64, 64),
        BuildKernel::Wide => ("wide", 256, 256),
        BuildKernel::Wide512 => ("wide512", 512, 512),
    }
}

/// `(name, lane_width, block_size)` of a query kernel.
pub fn query_kernel_meta(kernel: QueryKernel) -> (&'static str, usize, usize) {
    match kernel {
        QueryKernel::Scalar => ("scalar", 1, 1),
        QueryKernel::Batched => ("batched", 64, 64),
        QueryKernel::Wide => ("wide", 256, 256),
        QueryKernel::Wide512 => ("wide512", 512, 512),
        QueryKernel::Auto => ("auto", 0, 0),
    }
}

/// The runtime kernel-dispatch decision recorded with every probe record,
/// so an anchor file documents the machine class it was measured on.
#[derive(serde::Serialize)]
pub struct DispatchMeta {
    /// Detected CPU vector capability (`avx512` / `avx2` / `portable`).
    pub cpu: String,
    /// The `SKETCH_KERNEL` pin active during the probe, if any.
    pub env_override: Option<String>,
    /// Widest lane width the runtime dispatcher will auto-select here.
    pub max_lane_width: usize,
}

/// Snapshots [`sketch::dispatch_report`] into the serializable probe form.
pub fn dispatch_meta() -> DispatchMeta {
    let report = sketch::dispatch_report();
    DispatchMeta {
        cpu: report.cpu.name().into(),
        env_override: report.env_override.map(Into::into),
        max_lane_width: report.max_lane_width,
    }
}

/// Times `f` repeatedly until the budget elapses; returns ns per call.
pub fn time_ns_per_call(mut f: impl FnMut() -> f64) -> f64 {
    // Warm up (context scratch growth, branch predictors).
    let mut sink = 0.0;
    for _ in 0..3 {
        sink += f();
    }
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < ESTIMATE_PROBE_BUDGET_MS {
        for _ in 0..8 {
            sink += f();
        }
        calls += 8;
    }
    let ns = start.elapsed().as_nanos() as f64 / calls as f64;
    assert!(sink.is_finite());
    ns
}

/// Seeded random range queries over a 2-d `2^bits` domain (side lengths
/// `n/8 + U[0, n/4)`): the shared workload the estimate probe, the serve
/// probe and the `serve_throughput` bench all cycle, so their numbers stay
/// comparable — tweak the shape here and every consumer moves together.
pub fn range_query_workload(seed: u64, count: usize, bits: u32) -> Vec<geometry::HyperRect<2>> {
    use rand::Rng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = 1u64 << bits;
    (0..count)
        .map(|_| {
            let side = n / 8 + rng.gen_range(0..n / 4);
            let x = rng.gen_range(0..n - side - 1);
            let y = rng.gen_range(0..n - side - 1);
            geometry::HyperRect::new([
                geometry::Interval::new(x, x + side),
                geometry::Interval::new(y, y + side),
            ])
        })
        .collect()
}

/// Ratio of one kernel's timings over another's (higher = `faster` wins).
#[derive(serde::Serialize)]
pub struct Speedup {
    /// The kernel expected to win.
    pub faster: String,
    /// The kernel it is compared against.
    pub baseline: String,
    /// Baseline ns divided by faster ns, per instance configuration.
    pub ratio_per_config: Vec<f64>,
}

fn speedups_of(names: &[&'static str], ns_per_kernel: &[Vec<f64>]) -> Vec<Speedup> {
    (1..names.len())
        .map(|i| Speedup {
            faster: names[i].into(),
            baseline: names[i - 1].into(),
            ratio_per_config: ns_per_kernel[i - 1]
                .iter()
                .zip(ns_per_kernel[i].iter())
                .map(|(base, fast)| base / fast)
                .collect(),
        })
        .collect()
}

/// One query kernel's estimate timings across the instance configurations.
#[derive(serde::Serialize)]
pub struct QueryKernelRecord {
    /// Kernel name (`scalar` / `batched` / `wide`).
    pub kernel: String,
    /// Instance lanes per kernel word.
    pub lane_width: usize,
    /// Instances per evaluation block.
    pub block_size: usize,
    /// Whole-estimate latency per configuration.
    pub ns_per_estimate: Vec<f64>,
    /// Latency normalized per boosting instance.
    pub ns_per_estimate_instance: Vec<f64>,
}

/// The `--probe estimate` record: join and range estimation throughput.
#[derive(serde::Serialize)]
pub struct EstimateProbeRecord {
    /// Probe tag (`estimate` / `wide-estimate`).
    pub probe: String,
    /// Objects summarized per sketch.
    pub objects: usize,
    /// Data-domain bits per dimension.
    pub domain_bits: u32,
    /// Instance counts probed.
    pub instances: Vec<usize>,
    /// The runtime dispatch decision on the probing machine.
    pub dispatch: DispatchMeta,
    /// Join-path timings per kernel.
    pub join_kernels: Vec<QueryKernelRecord>,
    /// Adjacent-kernel ratios (e.g. batched over scalar, wide over batched).
    pub join_speedups: Vec<Speedup>,
    /// Range-path timings per kernel.
    pub range_kernels: Vec<QueryKernelRecord>,
    /// Adjacent-kernel ratios for the range path.
    pub range_speedups: Vec<Speedup>,
}

/// Estimation-path throughput under the given query kernels, for the join
/// (counter-product combine) and range (query-side ξ sums) paths, appended
/// to `results/perf_probe.json` like the build probe.
pub fn estimate_probe(
    threads: usize,
    quick: bool,
    kernels: &[QueryKernel],
    probe: &str,
) -> EstimateProbeRecord {
    let bits = 14u32;
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(20_000, bits, 0.0, 5).generate();
    let configs: &[(usize, usize)] = if quick {
        &[(88, 5)]
    } else {
        &[(88, 5), (203, 5), (820, 5)]
    };
    let mut record = EstimateProbeRecord {
        probe: probe.into(),
        objects: data.len(),
        domain_bits: bits,
        instances: configs.iter().map(|&(k1, k2)| k1 * k2).collect(),
        dispatch: dispatch_meta(),
        join_kernels: Vec::new(),
        join_speedups: Vec::new(),
        range_kernels: Vec::new(),
        range_speedups: Vec::new(),
    };

    for &kernel in kernels {
        let (name, lane_width, block_size) = query_kernel_meta(kernel);
        let mut join_rec = QueryKernelRecord {
            kernel: name.into(),
            lane_width,
            block_size,
            ns_per_estimate: Vec::new(),
            ns_per_estimate_instance: Vec::new(),
        };
        let mut range_rec = QueryKernelRecord {
            kernel: name.into(),
            lane_width,
            block_size,
            ns_per_estimate: Vec::new(),
            ns_per_estimate_instance: Vec::new(),
        };
        // Fresh RNG per kernel: all kernels see identical schema draws.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(k1, k2) in configs {
            let instances = k1 * k2;
            let join = SpatialJoin::<2>::new(
                &mut rng,
                SketchConfig::new(k1, k2),
                [bits, bits],
                EndpointStrategy::Transform,
            );
            let mut r = join.new_sketch_r();
            let mut s = join.new_sketch_s();
            par_insert_batch(&mut r, &data, threads).unwrap();
            par_insert_batch(&mut s, &data[..10_000], threads).unwrap();
            let mut ctx = QueryContext::new().with_kernel(kernel);
            let ns = time_ns_per_call(|| join.estimate_with(&mut ctx, &r, &s).unwrap().value);
            println!(
                "join   {kernel:?} kernel, instances {instances}: {ns:.0} ns/estimate ({:.2} ns/(est.inst))",
                ns / instances as f64
            );
            join_rec.ns_per_estimate.push(ns);
            join_rec
                .ns_per_estimate_instance
                .push(ns / instances as f64);

            let rq = sketch::RangeQuery::<2>::new(
                &mut rng,
                SketchConfig::new(k1, k2),
                [bits, bits],
                sketch::RangeStrategy::Transform,
            );
            let mut sk = rq.new_sketch();
            par_insert_batch(&mut sk, &data, threads).unwrap();
            let queries = range_query_workload(9, 8, bits);
            let mut qi = 0usize;
            let ns = time_ns_per_call(|| {
                qi = (qi + 1) % queries.len();
                rq.estimate_with(&mut ctx, &sk, &queries[qi]).unwrap().value
            });
            println!(
                "range  {kernel:?} kernel, instances {instances}: {ns:.0} ns/estimate ({:.2} ns/(est.inst))",
                ns / instances as f64
            );
            range_rec.ns_per_estimate.push(ns);
            range_rec
                .ns_per_estimate_instance
                .push(ns / instances as f64);
        }
        record.join_kernels.push(join_rec);
        record.range_kernels.push(range_rec);
    }
    let names: Vec<&'static str> = kernels.iter().map(|&k| query_kernel_meta(k).0).collect();
    let join_ns: Vec<Vec<f64>> = record
        .join_kernels
        .iter()
        .map(|k| k.ns_per_estimate.clone())
        .collect();
    let range_ns: Vec<Vec<f64>> = record
        .range_kernels
        .iter()
        .map(|k| k.ns_per_estimate.clone())
        .collect();
    record.join_speedups = speedups_of(&names, &join_ns);
    record.range_speedups = speedups_of(&names, &range_ns);
    for s in &record.join_speedups {
        println!(
            "join  {} speedup over {}: {:?}",
            s.faster, s.baseline, s.ratio_per_config
        );
    }
    for s in &record.range_speedups {
        println!(
            "range {} speedup over {}: {:?}",
            s.faster, s.baseline, s.ratio_per_config
        );
    }
    let path = crate::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
    record
}

/// One build kernel's timings across the instance configurations.
#[derive(serde::Serialize)]
pub struct KernelRecord {
    /// Kernel name (`scalar` / `batched` / `wide`).
    pub kernel: String,
    /// Instance lanes per kernel word.
    pub lane_width: usize,
    /// Instances per evaluation block.
    pub block_size: usize,
    /// Whole-build wall time per configuration.
    pub build_secs: Vec<f64>,
    /// Build cost normalized per object and instance.
    pub ns_per_obj_instance: Vec<f64>,
}

/// The default-probe record: build throughput per maintenance kernel.
#[derive(serde::Serialize)]
pub struct BuildProbeRecord {
    /// Probe tag (`build` / `wide-build`).
    pub probe: String,
    /// Objects ingested per build.
    pub objects: usize,
    /// Data-domain bits per dimension.
    pub domain_bits: u32,
    /// Worker threads used for the parallel build.
    pub threads: usize,
    /// Instance counts probed.
    pub instances: Vec<usize>,
    /// The runtime dispatch decision on the probing machine.
    pub dispatch: DispatchMeta,
    /// Per-kernel timings.
    pub kernels: Vec<KernelRecord>,
    /// Adjacent-kernel ratios (e.g. batched over scalar, wide over batched).
    pub speedups: Vec<Speedup>,
    /// `None` (serialized as null) when the probe skips the exact join.
    pub exact_join_pairs: Option<u64>,
    /// Exact-join wall time, when measured.
    pub exact_join_secs: Option<f64>,
}

/// Build-throughput sweep per maintenance kernel; optionally one exact-join
/// timing. Appends a record to `results/perf_probe.json`.
pub fn build_probe(
    threads: usize,
    quick: bool,
    kernels: &[BuildKernel],
    probe: &str,
    exact: bool,
) -> BuildProbeRecord {
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(50_000, 14, 0.0, 1).generate();
    let configs: &[(usize, usize)] = if quick {
        &[(88, 5)]
    } else {
        &[(88, 5), (440, 5), (1200, 5)]
    };
    let mut record = BuildProbeRecord {
        probe: probe.into(),
        objects: data.len(),
        domain_bits: 14,
        threads,
        instances: configs.iter().map(|&(k1, k2)| k1 * k2).collect(),
        dispatch: dispatch_meta(),
        kernels: Vec::new(),
        speedups: Vec::new(),
        exact_join_pairs: None,
        exact_join_secs: None,
    };
    for &kernel in kernels {
        let (name, lane_width, block_size) = build_kernel_meta(kernel);
        let mut rec = KernelRecord {
            kernel: name.into(),
            lane_width,
            block_size,
            build_secs: Vec::new(),
            ns_per_obj_instance: Vec::new(),
        };
        // Fresh RNG per kernel: all kernels see identical schema draws.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for &(k1, k2) in configs {
            let join = SpatialJoin::<2>::new(
                &mut rng,
                SketchConfig::new(k1, k2),
                [14, 14],
                EndpointStrategy::Transform,
            );
            let mut r = join.new_sketch_r().with_kernel(kernel);
            let t = Instant::now();
            par_insert_batch(&mut r, &data, threads).unwrap();
            let el = t.elapsed();
            let ns = el.as_nanos() as f64 / (data.len() as f64 * (k1 * k2) as f64);
            println!(
                "{kernel:?} kernel, instances {}: {el:?} total, {ns:.1} ns/(obj.inst)",
                k1 * k2
            );
            rec.build_secs.push(el.as_secs_f64());
            rec.ns_per_obj_instance.push(ns);
        }
        record.kernels.push(rec);
    }
    let names: Vec<&'static str> = kernels.iter().map(|&k| build_kernel_meta(k).0).collect();
    let ns: Vec<Vec<f64>> = record
        .kernels
        .iter()
        .map(|k| k.ns_per_obj_instance.clone())
        .collect();
    record.speedups = speedups_of(&names, &ns);
    for s in &record.speedups {
        println!(
            "build {} speedup over {}: {:?}",
            s.faster, s.baseline, s.ratio_per_config
        );
    }
    if exact {
        let s: Vec<geometry::HyperRect<2>> =
            datagen::SyntheticSpec::paper(50_000, 14, 0.0, 2).generate();
        let t = Instant::now();
        let c = exact::rect_join_count(&data, &s);
        let el = t.elapsed();
        println!("exact join 50K x 50K: {c} pairs in {el:?}");
        record.exact_join_pairs = Some(c);
        record.exact_join_secs = Some(el.as_secs_f64());
    }
    let path = crate::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
    record
}

/// One `(clients, batch, coalesce_us)` configuration's measurements in the
/// `--probe net` sweep.
///
/// Latency is the *batch round-trip* seen by a blocking client — encode,
/// loopback TCP, reactor decode, queue admission, one pooled-context
/// worker pass, reply framing — the number a serving SLO would be written
/// against. Percentiles come from the sorted per-round latencies of all
/// clients (fixed round counts, so the workload itself is deterministic;
/// only the timings vary with the machine).
#[derive(serde::Serialize)]
pub struct NetConfigPoint {
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries per batch frame.
    pub batch: usize,
    /// Cross-connection coalescing window active on the server
    /// (microseconds; `0` = coalescing off, drain immediately).
    pub coalesce_us: u64,
    /// Frames each client keeps in flight (1 = blocking round-trips, the
    /// pure-RTT measurement; deeper pipelines measure wire throughput the
    /// way a real caller drives the front-end). Latencies at depth > 1 are
    /// frame *turnaround* times — they include queueing behind the
    /// connection's own earlier frames.
    pub pipeline: usize,
    /// Batch round-trips per client.
    pub rounds_per_client: usize,
    /// Median batch round-trip latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile batch round-trip latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile batch round-trip latency, microseconds.
    pub p999_us: f64,
    /// Aggregate queries per second across all clients (batch answers
    /// count each query once).
    pub qps: f64,
    /// Queries the server evaluated (its own counter; shed queries are
    /// counted separately and were zero if `shed` is zero).
    pub served: u64,
    /// Queries shed at admission during the run.
    pub shed: u64,
    /// Kernel sweeps the workers ran — `served / batches` is the realized
    /// coalescing factor (queries amortized per context pass).
    pub batches: u64,
}

/// The `--probe net` record: a sweep of the TCP front-end over connection
/// counts × coalescing windows, each configuration against a fresh server
/// with concurrent ingest churning epochs underneath.
#[derive(serde::Serialize)]
pub struct NetProbeRecord {
    /// Probe tag (`net`).
    pub probe: String,
    /// Objects summarized in the served store.
    pub objects: usize,
    /// Data-domain bits per dimension.
    pub domain_bits: u32,
    /// Boosting instances per sketch.
    pub instances: usize,
    /// The runtime dispatch decision on the probing machine.
    pub dispatch: DispatchMeta,
    /// Reactor threads multiplexing connections in every configuration.
    pub reactors: usize,
    /// One measurement per swept `(clients, batch, coalesce_us)` point.
    pub configs: Vec<NetConfigPoint>,
    /// Store epochs swapped in by the concurrent-ingest writer across the
    /// whole sweep.
    pub ingest_epochs: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Runs one `(clients, batch, coalesce_us)` configuration against its own
/// freshly bound server, with the epoch-churn writer running for the whole
/// measurement window.
#[allow(clippy::too_many_arguments)]
fn net_config_point<const D: usize>(
    service: &Arc<SketchService<D>>,
    pool: &Arc<ContextPool<D>>,
    store: &Arc<ShardedStore<D>>,
    churn: &[geometry::HyperRect<D>],
    queries: &[geometry::HyperRect<D>],
    clients: usize,
    batch: usize,
    coalesce_us: u64,
    pipeline: usize,
    rounds: usize,
    reactors: usize,
) -> NetConfigPoint {
    // One worker sweep can answer a whole 64-connection wave: the drain
    // limit matches the largest swept connection count so admission, not
    // the config, bounds the realized coalescing factor.
    let config = ServeConfig {
        max_batch: 64,
        reactors,
        coalesce_us,
        ..ServeConfig::default()
    };
    let server = serve::net::serve(Arc::clone(service), Arc::clone(pool), &config, 0)
        .expect("net probe: cannot bind loopback server");
    let addr = server.local_addr();

    let done = AtomicUsize::new(0);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(clients * rounds);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let done = &done;
                scope.spawn(move || {
                    let mut client =
                        SketchClient::connect(addr).expect("net probe: cannot connect");
                    let mut lat = Vec::with_capacity(rounds);
                    // Keep up to `pipeline` frames in flight: submit until
                    // the window is full, then collect the oldest. Depth 1
                    // degenerates to blocking round-trips.
                    let mut window = std::collections::VecDeque::with_capacity(pipeline);
                    let mut submitted = 0usize;
                    while submitted < rounds || !window.is_empty() {
                        while submitted < rounds && window.len() < pipeline {
                            let round = submitted;
                            let wire: Vec<_> = (0..batch)
                                .map(|j| {
                                    wire_range(0, &queries[(t + round * batch + j) % queries.len()])
                                })
                                .collect();
                            let t0 = Instant::now();
                            let ticket = client.submit(&wire).expect("net probe submit");
                            window.push_back((ticket, t0));
                            submitted += 1;
                        }
                        let (ticket, t0) = window.pop_front().expect("window non-empty");
                        let replies = client.collect(ticket).expect("net probe batch");
                        lat.push(t0.elapsed().as_nanos() as f64 / 1e3);
                        assert!(
                            replies
                                .iter()
                                .all(|r| matches!(r, WireReply::Estimate { .. })),
                            "net probe: non-estimate reply under default capacity"
                        );
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    lat
                })
            })
            .collect();
        // Writer churn: insert + delete the same chunk, so epochs keep
        // swapping while the store's contents stay fixed. Paced at a fixed
        // cadence rather than a tight loop — the probe measures serving
        // throughput *under* concurrent ingest, not how thoroughly an
        // unthrottled rebuild loop can starve the workers of cores.
        while done.load(Ordering::SeqCst) < clients {
            store.insert_slice(churn).unwrap();
            store.delete_slice(churn).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        for handle in handles {
            latencies_us.extend(handle.join().expect("net probe client"));
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let stats = server.shutdown();

    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let point = NetConfigPoint {
        clients,
        batch,
        coalesce_us,
        pipeline,
        rounds_per_client: rounds,
        p50_us: percentile(&latencies_us, 0.5),
        p99_us: percentile(&latencies_us, 0.99),
        p999_us: percentile(&latencies_us, 0.999),
        qps: (clients * rounds * batch) as f64 / wall,
        served: stats.served,
        shed: stats.shed,
        batches: stats.batches,
    };
    println!(
        "net    {clients:>2} conns x {batch}/frame depth {pipeline} coalesce {coalesce_us:>3} µs: p50 {:>6.0} µs, p99 {:>7.0} µs, p999 {:>7.0} µs, {:>6.0} qps ({} sweeps, {} shed)",
        point.p50_us, point.p99_us, point.p999_us, point.qps, point.batches, point.shed
    );
    point
}

/// End-to-end network serving probe: sweeps connection counts (1/8/64,
/// batch-of-1 frames) × coalescing window (off / 200 µs) plus the
/// 2-client × batch-8 continuity point earlier anchors recorded, each
/// against a fresh real TCP server, with a writer swapping epochs in for
/// every measurement window. Appends a record to
/// `results/perf_probe.json`.
pub fn net_probe(quick: bool) -> NetProbeRecord {
    let bits = 14u32;
    let objects = if quick { 5_000 } else { 20_000 };
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(objects, bits, 0.0, 5).generate();
    let (k1, k2) = (203usize, 5usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rq = sketch::RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(k1, k2),
        [bits, bits],
        sketch::RangeStrategy::Transform,
    );
    let store = Arc::new(ShardedStore::like(&rq.new_sketch(), 2));
    for chunk in data.chunks(512) {
        store.insert_slice(chunk).unwrap();
    }
    let epochs_before = store.load().epoch();

    let service = Arc::new(SketchService::new(rq.clone(), vec![Arc::clone(&store)]));
    let pool = Arc::new(ContextPool::new(2));
    let queries = range_query_workload(9, 32, bits);
    let churn = &data[..512.min(data.len())];
    let reactors = ServeConfig::default().reactors;

    // The wire-QPS sweep: batch-of-1 frames (per-frame overhead dominates,
    // the case the reactor multiplexer exists for) across connection
    // counts, with and without the coalescing window. The single
    // connection runs blocking round-trips (depth 1 — the pure-RTT
    // latency guard); the concurrent counts pipeline a few frames per
    // connection, the way a real caller drives this front-end and the
    // only shape where wire throughput rather than client scheduling is
    // what gets measured. Round counts shrink with the client count so
    // every point collects a comparable number of latency samples.
    let mut configs = Vec::new();
    for &clients in &[1usize, 8, 64] {
        let pipeline = if clients == 1 { 1 } else { 4 };
        let rounds = if quick {
            (2048 / clients).max(24)
        } else {
            (8192 / clients).max(96)
        };
        for &coalesce_us in &[0u64, 200] {
            configs.push(net_config_point(
                &service,
                &pool,
                &store,
                churn,
                &queries,
                clients,
                1,
                coalesce_us,
                pipeline,
                rounds,
                reactors,
            ));
        }
    }
    // Continuity point: the 2-client × batch-8 blocking round-trip shape
    // every pre-sweep anchor recorded, so the series stays comparable
    // across PRs.
    configs.push(net_config_point(
        &service,
        &pool,
        &store,
        churn,
        &queries,
        2,
        8,
        0,
        1,
        if quick { 150 } else { 600 },
        reactors,
    ));
    let ingest_epochs = store.load().epoch() - epochs_before;

    let record = NetProbeRecord {
        probe: "net".into(),
        objects: data.len(),
        domain_bits: bits,
        instances: k1 * k2,
        dispatch: dispatch_meta(),
        reactors,
        configs,
        ingest_epochs,
    };
    println!(
        "net    sweep done: {} configs, {} reactors, {} epochs churned",
        record.configs.len(),
        record.reactors,
        record.ingest_epochs
    );
    let path = crate::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
    record
}

/// Compiled-plan cache counters recorded with the batch probe — the
/// serializable mirror of [`sketch::PlanCacheReport`], covering both the
/// single-query plan LRU and the merged multi-query plan LRU.
#[derive(serde::Serialize)]
pub struct PlanCacheMeta {
    /// Single-query plan cache hits.
    pub single_hits: u64,
    /// Single-query plan cache misses (cold compiles).
    pub single_misses: u64,
    /// Single-query plans evicted by the LRU.
    pub single_evictions: u64,
    /// Merged multi-query plan cache hits.
    pub multi_hits: u64,
    /// Merged multi-query plan cache misses (batch merges).
    pub multi_misses: u64,
    /// Merged plans evicted by the LRU.
    pub multi_evictions: u64,
}

/// Snapshots a [`sketch::PlanCacheReport`] into the serializable probe
/// form.
pub fn plan_cache_meta(report: &sketch::PlanCacheReport) -> PlanCacheMeta {
    PlanCacheMeta {
        single_hits: report.single.hits,
        single_misses: report.single.misses,
        single_evictions: report.single.evictions,
        multi_hits: report.multi.hits,
        multi_misses: report.multi.misses,
        multi_evictions: report.multi.evictions,
    }
}

/// One batch size's timings in the `--probe batchq` sweep.
#[derive(serde::Serialize)]
pub struct BatchPoint {
    /// Queries per `estimate_batch_with` call.
    pub batch: usize,
    /// Amortized latency per query at this batch size.
    pub ns_per_query: f64,
    /// Latency normalized per query and boosting instance.
    pub ns_per_query_instance: f64,
}

/// The `--probe batchq` record: multi-query batch kernel throughput vs the
/// sequential single-query path, over a serving-shaped hot set.
#[derive(serde::Serialize)]
pub struct BatchProbeRecord {
    /// Probe tag (`batchq`).
    pub probe: String,
    /// Objects summarized per sketch.
    pub objects: usize,
    /// Data-domain bits per dimension.
    pub domain_bits: u32,
    /// Boosting instances per sketch.
    pub instances: usize,
    /// The runtime dispatch decision on the probing machine.
    pub dispatch: DispatchMeta,
    /// Distinct queries in the cycled hot set.
    pub query_set: usize,
    /// Amortized per-query timings at each batch size (batch 1 takes the
    /// sequential single-query path — the baseline the kernel amortizes).
    pub points: Vec<BatchPoint>,
    /// Batch-1 ns/query over batch-64 ns/query: how much cheaper each
    /// query gets when a whole batch shares one sweep over the sketch.
    pub speedup_b64_over_b1: f64,
    /// Plan-cache counters accumulated across the whole sweep.
    pub plan_cache: PlanCacheMeta,
}

/// Multi-query batch throughput: amortized ns/query of
/// `estimate_batch_with` at batch sizes 1/8/64 over a 32-query hot set
/// (the shape the TCP front-end's `max_batch` drain produces), on the same
/// sketch configuration as the net probe so the records compose. Batch 1
/// routes through the sequential single-query path, so
/// `speedup_b64_over_b1` is exactly the batching win. Appends a record to
/// `results/perf_probe.json`.
pub fn batchq_probe(threads: usize, quick: bool) -> BatchProbeRecord {
    let bits = 14u32;
    let objects = if quick { 5_000 } else { 20_000 };
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(objects, bits, 0.0, 5).generate();
    let (k1, k2) = (203usize, 5usize);
    let instances = k1 * k2;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rq = sketch::RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(k1, k2),
        [bits, bits],
        sketch::RangeStrategy::Transform,
    );
    let mut sk = rq.new_sketch();
    par_insert_batch(&mut sk, &data, threads).unwrap();

    // Serving-shaped hot set: 28 ranges + 4 stabs at range corners.
    let rects = range_query_workload(9, 32, bits);
    let hot: Vec<BatchQuery<2>> = rects
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 8 == 7 {
                BatchQuery::Stab([q.range(0).lo(), q.range(1).lo()])
            } else {
                BatchQuery::Range(*q)
            }
        })
        .collect();

    let mut record = BatchProbeRecord {
        probe: "batchq".into(),
        objects: data.len(),
        domain_bits: bits,
        instances,
        dispatch: dispatch_meta(),
        query_set: hot.len(),
        points: Vec::new(),
        speedup_b64_over_b1: 0.0,
        plan_cache: plan_cache_meta(&sketch::PlanCacheReport::default()),
    };
    let mut ctx = QueryContext::new();
    for &batch in &[1usize, 8, 64] {
        // Deterministic compositions cycling the hot set, so the merged
        // plans recur the way a steady serving hot set makes them recur.
        let compositions = if batch >= hot.len() {
            1
        } else {
            hot.len() / batch
        };
        let batches: Vec<Vec<BatchQuery<2>>> = (0..compositions)
            .map(|c| {
                (0..batch)
                    .map(|j| hot[(c * batch + j) % hot.len()])
                    .collect()
            })
            .collect();
        let mut bi = 0usize;
        let ns_call = time_ns_per_call(|| {
            bi = (bi + 1) % batches.len();
            rq.estimate_batch_with(&mut ctx, &sk, &batches[bi])
                .iter()
                .map(|r| r.as_ref().unwrap().value)
                .sum()
        });
        let ns_per_query = ns_call / batch as f64;
        println!(
            "batchq batch {batch:>2}: {ns_per_query:.0} ns/query ({:.2} ns/(query.inst))",
            ns_per_query / instances as f64
        );
        record.points.push(BatchPoint {
            batch,
            ns_per_query,
            ns_per_query_instance: ns_per_query / instances as f64,
        });
    }
    record.speedup_b64_over_b1 =
        record.points[0].ns_per_query / record.points.last().unwrap().ns_per_query;
    record.plan_cache = plan_cache_meta(&ctx.plan_cache_report());
    println!(
        "batchq batch-64 speedup over batch-1: {:.2}x",
        record.speedup_b64_over_b1
    );
    println!(
        "batchq plan cache: single {}h/{}m/{}e, multi {}h/{}m/{}e",
        record.plan_cache.single_hits,
        record.plan_cache.single_misses,
        record.plan_cache.single_evictions,
        record.plan_cache.multi_hits,
        record.plan_cache.multi_misses,
        record.plan_cache.multi_evictions,
    );
    let path = crate::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
    record
}

/// One shard count's serve-path throughput.
#[derive(serde::Serialize)]
pub struct ServeShardPoint {
    /// Shards in the store.
    pub shards: usize,
    /// Warm-path range-query latency through router + pooled context.
    pub range_ns_per_query: f64,
    /// `1e9 / range_ns_per_query` — the steady-state single-core QPS.
    pub range_qps: f64,
    /// Ingest cost per object through the store (staging clone + epoch
    /// swap included).
    pub ingest_ns_per_obj: f64,
}

/// The `--probe serve` record: router QPS vs shard count against the
/// direct single-sketch baseline.
#[derive(serde::Serialize)]
pub struct ServeProbeRecord {
    /// Probe tag (`serve`).
    pub probe: String,
    /// Objects summarized.
    pub objects: usize,
    /// Data-domain bits per dimension.
    pub domain_bits: u32,
    /// Boosting instances per sketch.
    pub instances: usize,
    /// The runtime dispatch decision on the probing machine.
    pub dispatch: DispatchMeta,
    /// Distinct queries cycled (exercises the compiled-plan cache the way
    /// a serving hot set would).
    pub query_set: usize,
    /// Direct `RangeQuery::estimate_with` latency on an unsharded sketch —
    /// the floor the router should stay within epsilon of between ingests.
    pub unsharded_ns_per_query: f64,
    /// Per-shard-count timings.
    pub shard_points: Vec<ServeShardPoint>,
}

/// Serve-path throughput: steady-state router QPS (warm merged view, warm
/// plan cache) and ingest/swap cost, per shard count. Appends a record to
/// `results/perf_probe.json`.
pub fn serve_probe(threads: usize, quick: bool) -> ServeProbeRecord {
    let bits = 14u32;
    let objects = if quick { 5_000 } else { 20_000 };
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(objects, bits, 0.0, 5).generate();
    let (k1, k2) = (203usize, 5usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rq = sketch::RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(k1, k2),
        [bits, bits],
        sketch::RangeStrategy::Transform,
    );
    let queries = range_query_workload(9, 32, bits);

    // Unsharded baseline.
    let mut oracle = rq.new_sketch();
    par_insert_batch(&mut oracle, &data, threads).unwrap();
    let mut octx = QueryContext::new();
    let mut qi = 0usize;
    let base_ns = time_ns_per_call(|| {
        qi = (qi + 1) % queries.len();
        rq.estimate_with(&mut octx, &oracle, &queries[qi])
            .unwrap()
            .value
    });
    println!(
        "serve  unsharded baseline: {base_ns:.0} ns/query ({:.0} qps)",
        1e9 / base_ns
    );

    let mut record = ServeProbeRecord {
        probe: "serve".into(),
        objects: data.len(),
        domain_bits: bits,
        instances: k1 * k2,
        dispatch: dispatch_meta(),
        query_set: queries.len(),
        unsharded_ns_per_query: base_ns,
        shard_points: Vec::new(),
    };
    for shards in [1usize, 2, 4] {
        let store = ShardedStore::like(&oracle, shards);
        // Ingest in serving-sized batches; time the staging + swap path.
        let t = Instant::now();
        for chunk in data.chunks(512) {
            store.insert_slice(chunk).unwrap();
        }
        let ingest_ns = t.elapsed().as_nanos() as f64 / data.len() as f64;
        let router = QueryRouter::new();
        let pool = ContextPool::new(1);
        let mut qi = 0usize;
        let ns = time_ns_per_call(|| {
            qi = (qi + 1) % queries.len();
            pool.with(|ctx| router.estimate_range(&rq, &store, ctx, &queries[qi]))
                .unwrap()
                .value
        });
        println!(
            "serve  {shards} shard(s): {ns:.0} ns/query ({:.0} qps), ingest {ingest_ns:.0} ns/obj",
            1e9 / ns
        );
        record.shard_points.push(ServeShardPoint {
            shards,
            range_ns_per_query: ns,
            range_qps: 1e9 / ns,
            ingest_ns_per_obj: ingest_ns,
        });
    }
    let path = crate::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
    record
}

/// One online topology operation's cost, as measured by the rebalance
/// probe.
#[derive(serde::Serialize)]
pub struct RebalanceOpPoint {
    /// Operation kind (`split` / `move` / `merge`).
    pub op: String,
    /// Wall time of the operation: journal replay of the rebuilt shards
    /// (merges skip it) plus the atomic epoch swap.
    pub wall_ms: f64,
    /// Longest single `insert_slice` a concurrent ingest thread observed
    /// while the operation ran — the write-path cutover pause (topology
    /// changes hold the writer lock; queries never wait on it).
    pub ingest_stall_ms: f64,
    /// Shard count after the operation.
    pub shards_after: usize,
}

/// The `--probe rebalance` record: online split / boundary-move / merge
/// cost, the write-path cutover pause, and warm routed QPS before, during
/// and after the topology churn. Every phase is asserted bit-identical to
/// an unsharded oracle before timing moves on.
#[derive(serde::Serialize)]
pub struct RebalanceProbeRecord {
    /// Probe tag (`rebalance`).
    pub probe: String,
    /// Objects summarized and journaled — the replay-cost driver, so
    /// anchors for this probe are preset-specific (CI compares quick runs
    /// against a quick-preset anchor).
    pub objects: usize,
    /// Data-domain bits per dimension.
    pub domain_bits: u32,
    /// Boosting instances per sketch.
    pub instances: usize,
    /// The runtime dispatch decision on the probing machine.
    pub dispatch: DispatchMeta,
    /// Distinct queries cycled through the router.
    pub query_set: usize,
    /// Warm routed QPS before any topology change (2 shards).
    pub qps_before: f64,
    /// Per-operation timings: a split at an unaligned cut, a boundary
    /// move, and a merge, in that order.
    pub ops: Vec<RebalanceOpPoint>,
    /// Worst write-path stall across the measured operations — the
    /// headline cutover-pause number.
    pub max_ingest_stall_ms: f64,
    /// Warm routed QPS measured while a split/merge storm churned the
    /// topology. Reads never pause for a cutover, so this should stay
    /// near `qps_before`.
    pub qps_during_storm: f64,
    /// Topology operations completed during the storm window.
    pub storm_ops: usize,
    /// Warm routed QPS after the churn settled back to 2 shards.
    pub qps_after: f64,
    /// `qps_after / qps_before` — CI holds this above a floor: topology
    /// churn must not leave the read path degraded.
    pub recovery_ratio: f64,
}

/// Rebalance-path probe: cost of online split / boundary-move / merge on a
/// journaled store, the ingest cutover pause each one causes, and routed
/// QPS before / during / after the churn — with bit-match assertions
/// against an unsharded oracle at every step. Appends a record to
/// `results/perf_probe.json`.
pub fn rebalance_probe(threads: usize, quick: bool) -> RebalanceProbeRecord {
    use rand::Rng as _;
    let bits = 14u32;
    let objects = if quick { 5_000 } else { 20_000 };
    let data: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(objects, bits, 0.0, 5).generate();
    let (k1, k2) = (203usize, 5usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rq = sketch::RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(k1, k2),
        [bits, bits],
        sketch::RangeStrategy::Transform,
    );
    let queries = range_query_workload(9, 32, bits);

    // Unsharded oracle plus a journaled 2-shard store (`LogRetention::Full`
    // is what makes replay-based topology changes legal).
    let mut oracle = rq.new_sketch();
    par_insert_batch(&mut oracle, &data, threads).unwrap();
    let store = Arc::new(ShardedStore::like(&oracle, 2).with_log(sketch::LogRetention::Full));
    for chunk in data.chunks(512) {
        store.insert_slice(chunk).unwrap();
    }
    // Side pool of rects the stall-measuring ingest threads drain (cycled);
    // whatever they applied is replayed into the oracle afterwards so the
    // bit-match assertions keep holding.
    let extra: Vec<geometry::HyperRect<2>> =
        datagen::SyntheticSpec::paper(256, bits, 0.0, 11).generate();

    let router = QueryRouter::new();
    let pool = ContextPool::new(1);
    let routed_qps = |oracle: &sketch::SketchSet<2>, label: &str| -> f64 {
        // Bit-match gate first: the number is only worth recording if the
        // store still answers exactly like the unsharded oracle.
        let mut octx = QueryContext::new();
        for q in &queries {
            let want = rq.estimate_with(&mut octx, oracle, q).unwrap().value;
            let got = pool
                .with(|ctx| router.estimate_range(&rq, &store, ctx, q))
                .unwrap()
                .value;
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "routed answer diverged from the unsharded oracle ({label})"
            );
        }
        let mut qi = 0usize;
        let ns = time_ns_per_call(|| {
            qi = (qi + 1) % queries.len();
            pool.with(|ctx| router.estimate_range(&rq, &store, ctx, &queries[qi]))
                .unwrap()
                .value
        });
        1e9 / ns
    };

    let qps_before = routed_qps(&oracle, "before");
    println!("rebalance  2 shards, warm routed: {qps_before:.0} qps");

    let mut record = RebalanceProbeRecord {
        probe: "rebalance".into(),
        objects: data.len(),
        domain_bits: bits,
        instances: k1 * k2,
        dispatch: dispatch_meta(),
        query_set: queries.len(),
        qps_before,
        ops: Vec::new(),
        max_ingest_stall_ms: 0.0,
        qps_during_storm: 0.0,
        storm_ops: 0,
        qps_after: 0.0,
        recovery_ratio: 0.0,
    };

    // The three measured ops, each chosen from the live load report: an
    // unaligned split of shard 0, a move of the new boundary, and a merge
    // folding it back. Each runs against a concurrent single-rect ingest
    // loop whose worst per-insert wall time is the cutover pause.
    let spans = |st: &ShardedStore<2>| -> Vec<geometry::Interval> {
        st.load_report().shards().iter().map(|s| s.span).collect()
    };
    type TopologyOp = Box<dyn Fn() + Send + Sync>;
    let ops: Vec<(&str, TopologyOp)> = {
        let s0 = spans(&store)[0];
        // An unaligned cut two-fifths in: replay must handle boundaries
        // that match no dyadic block edge.
        let split_at = s0.lo() + 2 * (s0.hi() - s0.lo()) / 5 + 1;
        let move_to = s0.lo() + (s0.hi() - s0.lo()) / 2 + 3;
        let (st_a, st_b, st_c) = (Arc::clone(&store), Arc::clone(&store), Arc::clone(&store));
        vec![
            (
                "split",
                Box::new(move || st_a.split_shard(0, split_at).unwrap()) as Box<_>,
            ),
            (
                "move",
                Box::new(move || st_b.move_shard_boundary(1, move_to).unwrap()) as Box<_>,
            ),
            (
                "merge",
                Box::new(move || st_c.merge_shards(0).unwrap()) as Box<_>,
            ),
        ]
    };
    for (name, op) in ops {
        let stop = AtomicBool::new(false);
        let (wall_ms, stall_ms, applied) = std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                // Cycle single-rect inserts until told to stop; the insert
                // issued while the op holds the writer lock blocks for the
                // whole rebuild — its wall time is the pause.
                let mut worst = 0.0f64;
                let mut n = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    store
                        .insert_slice(&extra[n % extra.len()..n % extra.len() + 1])
                        .unwrap();
                    worst = worst.max(t.elapsed().as_secs_f64() * 1e3);
                    n += 1;
                }
                (worst, n)
            });
            let t = Instant::now();
            op();
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            stop.store(true, Ordering::Relaxed);
            let (stall_ms, applied) = ingest.join().unwrap();
            (wall_ms, stall_ms, applied)
        });
        // Mirror the side ingest into the oracle (same rects, same cycle
        // order) so the next bit-match gate compares like with like.
        let replay: Vec<geometry::HyperRect<2>> =
            (0..applied).map(|i| extra[i % extra.len()]).collect();
        par_insert_batch(&mut oracle, &replay, threads).unwrap();
        let shards_after = store.shard_count();
        println!(
            "rebalance  {name}: {wall_ms:.1} ms wall, {stall_ms:.1} ms worst ingest stall, \
             {shards_after} shard(s) after"
        );
        record.max_ingest_stall_ms = record.max_ingest_stall_ms.max(stall_ms);
        record.ops.push(RebalanceOpPoint {
            op: name.into(),
            wall_ms,
            ingest_stall_ms: stall_ms,
            shards_after,
        });
    }

    // Storm phase: a policy thread keeps splitting (load-report candidate)
    // and merging while the read path is timed. Data stays fixed, so every
    // concurrently routed answer still bit-matches the oracle — asserted by
    // the `routed_qps` gate right before timing starts and again after.
    let stop = AtomicBool::new(false);
    let ops_done = AtomicUsize::new(0);
    record.qps_during_storm = std::thread::scope(|scope| {
        let storm = scope.spawn(|| {
            let mut srng = rand::rngs::StdRng::seed_from_u64(23);
            while !stop.load(Ordering::Relaxed) {
                if store.shard_count() > 2 {
                    store.merge_shards(0).unwrap();
                } else if let Some((shard, mid)) = store.load_report().split_candidate() {
                    // Jitter the cut off the midpoint so successive storms
                    // exercise different boundaries.
                    let at = mid.saturating_sub(srng.gen_range(0..32)).max(1);
                    if store.split_shard(shard, at).is_err() {
                        store.split_shard(shard, mid).unwrap();
                    }
                }
                ops_done.fetch_add(1, Ordering::Relaxed);
            }
        });
        let qps = routed_qps(&oracle, "mid-storm");
        stop.store(true, Ordering::Relaxed);
        storm.join().unwrap();
        qps
    });
    record.storm_ops = ops_done.load(Ordering::Relaxed);
    println!(
        "rebalance  mid-storm routed: {:.0} qps over {} topology ops",
        record.qps_during_storm, record.storm_ops
    );

    // Settle back to the starting topology and measure recovery.
    while store.shard_count() > 2 {
        store.merge_shards(0).unwrap();
    }
    record.qps_after = routed_qps(&oracle, "after");
    record.recovery_ratio = record.qps_after / record.qps_before;
    println!(
        "rebalance  settled (2 shards): {:.0} qps — {:.2}x of pre-churn",
        record.qps_after, record.recovery_ratio
    );

    let path = crate::report::append_json("perf_probe", &record);
    println!("appended to {}", path.display());
    record
}

//! The common-endpoint elimination transform of Section 5.2.
//!
//! The interval-join counting procedure (and its higher-dimensional
//! generalizations) is exact only under Assumption 1: no interval of `R`
//! shares an endpoint coordinate with an interval of `S`. Section 5.2 makes
//! the assumption hold for arbitrary inputs by enlarging the domain: between
//! every two consecutive coordinates `i` and `i+1`, two new values `i+` and
//! `(i+1)-` are inserted, and every `S`-interval is shrunk "a little" —
//! `[l, u]` becomes `[l+, u-]` — which provably changes no overlap
//! relationship while eliminating all shared endpoints.
//!
//! We realize the enlarged domain `M` by tripling: original coordinate `x`
//! maps to `3x`, `x+` maps to `3x + 1`, and `(x+1)-` maps to `3x + 2`.
//! `R`-endpoints are then ≡ 0 (mod 3) while shrunken `S`-endpoints are ≡ 1
//! or 2 (mod 3), so they can never collide.

use crate::interval::{Coord, Interval};
use crate::rect::HyperRect;

/// Maps an original coordinate into the tripled domain.
#[inline]
pub fn triple(x: Coord) -> Coord {
    3 * x
}

/// Maps an original interval into the tripled domain without shrinking
/// (used for the `R` side of a join).
#[inline]
pub fn triple_interval(iv: &Interval) -> Interval {
    Interval::new(triple(iv.lo()), triple(iv.hi()))
}

/// Maps an original interval into the tripled domain *and shrinks it*
/// (`[l, u]` to `[l+, u-]`, used for the `S` side of a join).
///
/// Returns `None` for degenerate intervals: shrinking a point yields an
/// empty interval, and points never contribute to the join anyway.
#[inline]
pub fn shrink_interval(iv: &Interval) -> Option<Interval> {
    if iv.is_degenerate() {
        return None;
    }
    Some(Interval::new(triple(iv.lo()) + 1, triple(iv.hi()) - 1))
}

/// Maps a hyper-rectangle into the tripled domain without shrinking.
pub fn triple_rect<const D: usize>(r: &HyperRect<D>) -> HyperRect<D> {
    let mut ranges = [Interval::point(0); D];
    for i in 0..D {
        ranges[i] = triple_interval(&r.range(i));
    }
    HyperRect::new(ranges)
}

/// Maps a hyper-rectangle into the tripled domain, shrinking every dimension.
/// Returns `None` if the rectangle is degenerate in any dimension.
pub fn shrink_rect<const D: usize>(r: &HyperRect<D>) -> Option<HyperRect<D>> {
    let mut ranges = [Interval::point(0); D];
    for i in 0..D {
        ranges[i] = shrink_interval(&r.range(i))?;
    }
    Some(HyperRect::new(ranges))
}

/// Domain bits needed for the tripled domain: coordinates reach `3(n-1) + 2 <
/// 3n <= 4n`, so two extra bits always suffice.
#[inline]
pub fn tripled_bits(bits: u32) -> u32 {
    bits + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::rect2;

    #[test]
    fn coordinates_never_collide() {
        // R endpoints are multiples of 3; shrunken S endpoints are == 1 or 2 mod 3.
        let r = triple_interval(&Interval::new(4, 9));
        let s = shrink_interval(&Interval::new(4, 9)).unwrap();
        assert_eq!(r, Interval::new(12, 27));
        assert_eq!(s, Interval::new(13, 26));
        assert!(!r.shares_endpoint(&s));
    }

    #[test]
    fn degenerate_s_interval_is_dropped() {
        assert_eq!(shrink_interval(&Interval::point(5)), None);
        assert!(shrink_rect(&rect2(1, 5, 3, 3)).is_none());
    }

    #[test]
    fn figure3_cases_preserved() {
        // For each of the six relationships, overlap(r, s) == overlap(r', s').
        let r = Interval::new(10, 20);
        let cases = [
            Interval::new(25, 30), // (1)
            Interval::new(20, 30), // (2)
            Interval::new(15, 30), // (3)
            Interval::new(12, 18), // (4)
            Interval::new(10, 15), // (5)
            Interval::new(10, 20), // (6)
        ];
        for s in cases {
            let r2 = triple_interval(&r);
            let s2 = shrink_interval(&s).unwrap();
            assert_eq!(r.overlaps(&s), r2.overlaps(&s2), "case {s:?}");
            assert!(!r2.shares_endpoint(&s2), "case {s:?}");
        }
    }

    #[test]
    fn tripled_bits_bound() {
        // max transformed coordinate from an n = 2^b domain must fit.
        for bits in [1u32, 4, 10, 20] {
            let n: u64 = 1 << bits;
            let max_coord = 3 * (n - 1) + 2;
            assert!(max_coord < (1 << tripled_bits(bits)));
        }
    }

    // Seeded stand-ins for the original proptest properties (the offline
    // build has no proptest).
    #[test]
    fn transform_preserves_overlap() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(61);
        let mut checked = 0;
        while checked < 512 {
            let (a, b) = (rng.gen_range(0u64..300), rng.gen_range(0u64..300));
            let (c, d) = (rng.gen_range(0u64..300), rng.gen_range(0u64..300));
            let r = Interval::new(a.min(b), a.max(b));
            let s = Interval::new(c.min(d), c.max(d));
            if s.is_degenerate() {
                continue;
            }
            checked += 1;
            let r2 = triple_interval(&r);
            let s2 = shrink_interval(&s).unwrap();
            assert_eq!(r.overlaps(&s), r2.overlaps(&s2));
            assert!(!r2.shares_endpoint(&s2));
        }
    }

    #[test]
    fn transform_preserves_overlap_2d() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(62);
        let mut checked = 0;
        while checked < 512 {
            let mut coord = || rng.gen_range(0u64..60);
            let (a, b, c, d) = (coord(), coord(), coord(), coord());
            let (e, f, g, h) = (coord(), coord(), coord(), coord());
            let r = rect2(a.min(b), a.max(b), c.min(d), c.max(d));
            let s = rect2(e.min(f), e.max(f), g.min(h), g.max(h));
            if s.is_degenerate() {
                continue;
            }
            checked += 1;
            let r2 = triple_rect(&r);
            let s2 = shrink_rect(&s).unwrap();
            assert_eq!(r.overlaps(&s), r2.overlaps(&s2));
            assert!(!r2.shares_endpoint(&s2));
        }
    }
}

//! The six spatial relationships between intervals (Figure 3 of the paper)
//! and their generalization to hyper-rectangles (Figure 4).

use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// Spatial relationship between two non-degenerate intervals `r` and `s`,
/// following Figure 3. Directional variants are distinguished (the paper
/// omits the swapped cases "for simplicity"); [`IntervalRelation::paper_case`]
/// folds them back to the figure's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntervalRelation {
    /// Case (1): no common point.
    Disjoint,
    /// Case (2): touch at exactly one boundary point.
    Meet,
    /// Case (3): proper partial overlap (each has one endpoint strictly
    /// inside the other).
    Overlap,
    /// Case (4): `r` strictly contains `s`.
    Contains,
    /// Case (4) swapped: `s` strictly contains `r`.
    Inside,
    /// Case (5): `r` contains `s` and they share exactly one endpoint.
    ContainsMeet,
    /// Case (5) swapped: `s` contains `r` and they share exactly one endpoint.
    InsideMeet,
    /// Case (6): identical intervals.
    Identical,
}

impl IntervalRelation {
    /// Classifies the relationship of two non-degenerate intervals.
    ///
    /// Degenerate (point) intervals do not fit Figure 3's taxonomy; for them
    /// the classification degrades gracefully (a point on a boundary is
    /// `Meet`-like) but callers interested in join semantics should rely on
    /// [`Interval::overlaps`] directly.
    pub fn of(r: &Interval, s: &Interval) -> Self {
        use IntervalRelation::*;
        if r == s {
            return Identical;
        }
        if r.hi() < s.lo() || s.hi() < r.lo() {
            return Disjoint;
        }
        if r.hi() == s.lo() || s.hi() == r.lo() {
            return Meet;
        }
        // From here the intersection has nonzero length.
        let share_lo = r.lo() == s.lo();
        let share_hi = r.hi() == s.hi();
        debug_assert!(!(share_lo && share_hi), "identical handled above");
        if share_lo {
            return if r.hi() > s.hi() {
                ContainsMeet
            } else {
                InsideMeet
            };
        }
        if share_hi {
            return if r.lo() < s.lo() {
                ContainsMeet
            } else {
                InsideMeet
            };
        }
        if r.lo() < s.lo() && s.hi() < r.hi() {
            return Contains;
        }
        if s.lo() < r.lo() && r.hi() < s.hi() {
            return Inside;
        }
        Overlap
    }

    /// Figure 3 case number (1-6), folding directional variants.
    pub fn paper_case(&self) -> u8 {
        use IntervalRelation::*;
        match self {
            Disjoint => 1,
            Meet => 2,
            Overlap => 3,
            Contains | Inside => 4,
            ContainsMeet | InsideMeet => 5,
            Identical => 6,
        }
    }

    /// Whether this relationship counts as overlap in the paper's spatial
    /// join (cases 3-6).
    pub fn is_overlap(&self) -> bool {
        self.paper_case() >= 3
    }

    /// Whether this relationship counts for the extended join `overlap+`
    /// (Definition 4; cases 2-6).
    pub fn is_overlap_plus(&self) -> bool {
        self.paper_case() >= 2
    }

    /// Number of endpoints of one interval lying (closed-)inside the other,
    /// summed over both directions — the quantity the simple counting
    /// procedure of Section 4.1.2 computes. The paper's table: cases (1)-(6)
    /// yield 0, 2, 2, 2, 3, 4.
    pub fn endpoint_containment_count(r: &Interval, s: &Interval) -> u32 {
        let mut c = 0;
        if r.contains(s.lo()) {
            c += 1;
        }
        if r.contains(s.hi()) {
            c += 1;
        }
        if s.contains(r.lo()) {
            c += 1;
        }
        if s.contains(r.hi()) {
            c += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use IntervalRelation::*;

    fn iv(l: u64, h: u64) -> Interval {
        Interval::new(l, h)
    }

    #[test]
    fn figure3_classification() {
        let r = iv(10, 20);
        assert_eq!(IntervalRelation::of(&r, &iv(25, 30)), Disjoint);
        assert_eq!(IntervalRelation::of(&r, &iv(0, 5)), Disjoint);
        assert_eq!(IntervalRelation::of(&r, &iv(20, 30)), Meet);
        assert_eq!(IntervalRelation::of(&r, &iv(0, 10)), Meet);
        assert_eq!(IntervalRelation::of(&r, &iv(15, 30)), Overlap);
        assert_eq!(IntervalRelation::of(&r, &iv(5, 15)), Overlap);
        assert_eq!(IntervalRelation::of(&r, &iv(12, 18)), Contains);
        assert_eq!(IntervalRelation::of(&iv(12, 18), &r), Inside);
        assert_eq!(IntervalRelation::of(&r, &iv(10, 15)), ContainsMeet);
        assert_eq!(IntervalRelation::of(&r, &iv(15, 20)), ContainsMeet);
        assert_eq!(IntervalRelation::of(&iv(10, 15), &r), InsideMeet);
        assert_eq!(IntervalRelation::of(&r, &r.clone()), Identical);
    }

    #[test]
    fn paper_case_numbers() {
        assert_eq!(Disjoint.paper_case(), 1);
        assert_eq!(Meet.paper_case(), 2);
        assert_eq!(Overlap.paper_case(), 3);
        assert_eq!(Contains.paper_case(), 4);
        assert_eq!(Inside.paper_case(), 4);
        assert_eq!(ContainsMeet.paper_case(), 5);
        assert_eq!(InsideMeet.paper_case(), 5);
        assert_eq!(Identical.paper_case(), 6);
    }

    #[test]
    fn overlap_flags_match_interval_predicates() {
        let r = iv(10, 20);
        let cases = [
            iv(25, 30),
            iv(20, 30),
            iv(15, 30),
            iv(12, 18),
            iv(10, 15),
            iv(10, 20),
            iv(0, 10),
            iv(0, 40),
        ];
        for s in cases {
            let rel = IntervalRelation::of(&r, &s);
            assert_eq!(rel.is_overlap(), r.overlaps(&s), "{s:?}");
            assert_eq!(rel.is_overlap_plus(), r.overlaps_plus(&s), "{s:?}");
        }
    }

    #[test]
    fn counting_procedure_table() {
        // Section 4.1.2: counts 0, 2, 2, 2, 3, 4 for cases (1)-(6).
        let r = iv(10, 20);
        let table = [
            (iv(25, 30), 0u32), // (1)
            (iv(20, 30), 2),    // (2)
            (iv(15, 30), 2),    // (3)
            (iv(12, 18), 2),    // (4)
            (iv(10, 15), 3),    // (5)
            (iv(10, 20), 4),    // (6)
        ];
        for (s, want) in table {
            assert_eq!(
                IntervalRelation::endpoint_containment_count(&r, &s),
                want,
                "{s:?}"
            );
        }
    }

    #[test]
    fn symmetry_of_case_numbers() {
        let samples = [
            (iv(0, 4), iv(6, 9)),
            (iv(0, 4), iv(4, 9)),
            (iv(0, 6), iv(4, 9)),
            (iv(0, 9), iv(4, 8)),
            (iv(0, 9), iv(0, 5)),
            (iv(2, 7), iv(2, 7)),
        ];
        for (r, s) in samples {
            assert_eq!(
                IntervalRelation::of(&r, &s).paper_case(),
                IntervalRelation::of(&s, &r).paper_case()
            );
        }
    }
}

//! # sketch — spatial sketches with provable error guarantees
//!
//! A full implementation of the estimation framework of Das, Gehrke,
//! Riedewald: *Approximation Techniques for Spatial Data* (SIGMOD 2004):
//! AMS-style randomized linear projections generalized from frequency
//! vectors to sets of intervals and hyper-rectangles.
//!
//! ## What it does
//!
//! Maintain tiny summaries ("sketches") of spatial relations under inserts
//! **and deletes**, in a single pass, and answer from the summaries alone:
//!
//! * spatial join cardinality `|R ⋈_o S|` of hyper-rectangle sets,
//! * extended joins `|R ⋈+_o S|` (touching counts), containment joins,
//! * ε-join cardinality of point sets under L∞,
//! * range-query selectivity and stabbing counts,
//!
//! each with an unbiased estimator whose error is provably within `ε`
//! relative with probability `1 - φ` given enough instances (the [`plan`]
//! module computes how many from the paper's Theorems).
//!
//! ## Architecture
//!
//! * [`comp`] — atomic-sketch components (`ξ̄[a,b]`, `ξ̄[a] + ξ̄[b]`, …) and
//!   words (`X_II`, `X_IE`, …);
//! * [`schema`] — the shared seeds and boosting-grid shape that make
//!   sketches combinable;
//! * [`atomic`] — the maintained counters ([`atomic::SketchSet`]) with
//!   streaming insert/delete, linear merge, and four bit-identical
//!   maintenance kernels ([`atomic::BuildKernel`]: scalar oracle, 64-lane
//!   batched, 256-lane wide, 512-lane wide — instantiations of one
//!   lane-width-generic kernel over [`fourwise::Lane`]);
//! * [`estimator`] — generic term-expansion machinery turning per-dimension
//!   counting identities into d-dimensional estimators;
//! * [`estimators`] — ready-made estimators for every query class in the
//!   paper;
//! * [`query`] — the estimation-side evaluation kernels
//!   ([`query::QueryKernel`]: scalar oracle, batched, wide, wide512,
//!   auto-resolved per schema) and the shared [`query::QueryContext`]
//!   scratch — including a compiled-plan cache for repeated queries — every
//!   estimator evaluates through;
//! * [`kernel`] — the shared kernel-width dispatch (`SKETCH_KERNEL` env
//!   override → runtime CPU detection → instance-count heuristic);
//! * [`boost`] — mean-then-median boosting (Figure 1);
//! * [`selfjoin`] — exact and sketched self-join sizes (`SJ`), the accuracy
//!   currency of every variance bound;
//! * [`plan`] — Theorem-1/2/3 space planning and the paper's
//!   words-of-memory accounting;
//! * [`par`] — parallel bulk loading across the instance axis.
//!
//! ## Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use sketch::estimators::{joins::{EndpointStrategy, SpatialJoin}, SketchConfig};
//! use geometry::rect2;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 2-d rectangle join over a 1024x1024 domain, 128x5 boosting grid.
//! let join = SpatialJoin::<2>::new(
//!     &mut rng,
//!     SketchConfig::new(128, 5),
//!     [10, 10],
//!     EndpointStrategy::Transform,
//! );
//! let mut r = join.new_sketch_r();
//! let mut s = join.new_sketch_s();
//! for i in 0..50u64 {
//!     r.insert(&rect2(10 * i % 900, 10 * i % 900 + 40, 5 * i % 800, 5 * i % 800 + 60)).unwrap();
//!     s.insert(&rect2(7 * i % 880, 7 * i % 880 + 70, 11 * i % 850, 11 * i % 850 + 30)).unwrap();
//! }
//! let estimate = join.estimate(&r, &s).unwrap();
//! assert!(estimate.value >= 0.0 || estimate.value < 0.0); // finite either way
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod boost;
pub mod comp;
pub mod error;
pub mod estimator;
pub mod estimators;
pub mod kernel;
pub mod log;
pub mod par;
pub mod persist;
pub mod plan;
pub mod query;
pub mod schema;
pub mod selfjoin;

pub use atomic::{BuildKernel, EndpointPolicy, SketchSet};
pub use boost::Estimate;
pub use comp::{complement, ie_words, word_name, Comp, Word};
pub use error::{Result, SketchError};
pub use estimator::{DimTerm, PairEstimator, PairTerms, Term};
pub use estimators::containment::{IntervalContainment, RectContainment};
pub use estimators::eps::EpsJoin;
pub use estimators::joins::{EndpointStrategy, OverlapPlusJoin, SpatialJoin};
pub use estimators::range::{BatchQuery, RangeQuery, RangeStrategy};
pub use estimators::SketchConfig;
pub use kernel::{
    cpu_vector, dispatch_report, preferred_lane_width, CpuVector, DispatchReport,
    WIDE512_MIN_INSTANCES, WIDE_MIN_INSTANCES,
};
pub use log::{LogEntry, LogRetention, UpdateLog};
pub use par::{par_estimate, par_insert_batch, par_merge_batch, par_update_batch};
pub use persist::{
    restore_pair, restore_schema, restore_sketch, restore_sketch_with_schema, snapshot_pair,
    snapshot_schema, snapshot_sketch, SchemaSnapshot, SketchPairSnapshot, SketchSnapshot,
};
pub use plan::Guarantee;
pub use query::{PartialEstimate, PlanCacheReport, PlanCacheStats, QueryContext, QueryKernel};
pub use schema::{BoostShape, DimSpec, SchemaLanes, SketchSchema};

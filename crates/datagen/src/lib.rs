//! # datagen — deterministic workloads for the spatial-sketch experiments
//!
//! Every dataset in the paper's evaluation (Section 7), regenerable from a
//! seed:
//!
//! * [`synthetic`] — the Section 7.1 synthetic rectangle sets (Zipfian
//!   positions, mean extent `sqrt(domain)`), plus uniform interval/point
//!   helpers for Figures 7-8 and the ε-join experiments;
//! * [`gis`] — clustered stand-ins for the Wyoming LANDO/LANDC/SOIL maps of
//!   Section 7.3 (the real data is not redistributable; see the module docs
//!   for why the simulation preserves the relevant behaviour);
//! * [`stream`] — insert/delete churn workloads exercising incremental
//!   sketch maintenance;
//! * [`zipf`], [`rng`] — the underlying samplers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gis;
pub mod rng;
pub mod stream;
pub mod synthetic;
pub mod zipf;

pub use gis::{landc, lando, soil, GisSpec, GIS_DOMAIN_BITS};
pub use stream::{churn_stream, replay, Update};
pub use synthetic::{uniform_intervals, uniform_points, SyntheticSpec};
pub use zipf::Zipf;

//! Closed integer intervals `[lo, hi]` over a discrete coordinate domain.

use serde::{Deserialize, Serialize};

/// Discrete coordinate type. The paper works over a finite metric space
/// `N = {0, 1, .., n-1}`; real-valued inputs are quantized by the caller
/// (Section 5.1 of the paper: "there is no spatial application we know of
/// that uses coordinates of unbounded precision").
pub type Coord = u64;

/// A closed interval `[lo, hi]` with `lo <= hi`.
///
/// A *degenerate* interval has `lo == hi` (a point). Degenerate objects never
/// contribute to the paper's spatial join (their intersection with anything
/// has zero length), but they are representable so that streams containing
/// them can be processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    lo: Coord,
    hi: Coord,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`; use [`Interval::try_new`] for fallible
    /// construction from untrusted input.
    #[inline]
    pub fn new(lo: Coord, hi: Coord) -> Self {
        assert!(lo <= hi, "interval lower endpoint {lo} exceeds upper {hi}");
        Self { lo, hi }
    }

    /// Creates `[lo, hi]`, returning `None` when `lo > hi`.
    #[inline]
    pub fn try_new(lo: Coord, hi: Coord) -> Option<Self> {
        (lo <= hi).then_some(Self { lo, hi })
    }

    /// A point interval `[x, x]`.
    #[inline]
    pub fn point(x: Coord) -> Self {
        Self { lo: x, hi: x }
    }

    /// Lower endpoint `l(r)`.
    #[inline]
    pub fn lo(&self) -> Coord {
        self.lo
    }

    /// Upper endpoint `u(r)`.
    #[inline]
    pub fn hi(&self) -> Coord {
        self.hi
    }

    /// Number of domain points covered (`hi - lo + 1`).
    #[inline]
    pub fn point_count(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Geometric length (`hi - lo`); zero for degenerate intervals.
    #[inline]
    pub fn length(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether this is a point (`lo == hi`).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// Closed containment of a coordinate: `lo <= x <= hi`.
    ///
    /// This is exactly the event the paper's point-in-interval sketches
    /// count (Lemma 4 is stated for closed containment).
    #[inline]
    pub fn contains(&self, x: Coord) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Closed containment of another interval.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The paper's notion of interval overlap (Definition 1 / Figure 3,
    /// cases (3)-(6)): the intersection must be a non-degenerate interval,
    /// i.e. have nonzero length. Touching at a single point — case (2),
    /// "meet" — does **not** count.
    ///
    /// For non-degenerate intervals this is `max(lo) < min(hi)`. Note that
    /// Definition 1's literal formula (strict "endpoint strictly inside the
    /// other interval" disjunction) coincides with this predicate exactly
    /// when the two intervals share no endpoints (the paper's Assumption 1);
    /// with shared endpoints the literal formula misclassifies cases (5) and
    /// (6), which is the reason the assumption exists. This method implements
    /// the *semantic* definition that Figure 3 describes.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo.max(other.lo) < self.hi.min(other.hi)
    }

    /// Extended overlap (Definition 4, `overlap+`): non-empty intersection,
    /// which additionally admits case (2), touching boundaries, and point
    /// intersections involving degenerate intervals.
    #[inline]
    pub fn overlaps_plus(&self, other: &Interval) -> bool {
        self.lo.max(other.lo) <= self.hi.min(other.hi)
    }

    /// The intersection interval, if non-empty.
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        Interval::try_new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Definition 1's literal disjunction: some endpoint of one interval lies
    /// *strictly* inside the other interval. Exposed for differential tests
    /// against [`Interval::overlaps`]; under Assumption 1 (no shared
    /// endpoints) the two predicates agree on non-degenerate intervals.
    pub fn overlaps_def1_literal(&self, other: &Interval) -> bool {
        let (rl, ru, sl, su) = (self.lo, self.hi, other.lo, other.hi);
        let strictly_inside = |x: Coord, l: Coord, u: Coord| l < x && x < u;
        strictly_inside(sl, rl, ru)
            || strictly_inside(su, rl, ru)
            || strictly_inside(rl, sl, su)
            || strictly_inside(ru, sl, su)
    }

    /// Whether this interval and `other` share any endpoint coordinate —
    /// the situation excluded by the paper's Assumption 1.
    #[inline]
    pub fn shares_endpoint(&self, other: &Interval) -> bool {
        self.lo == other.lo || self.lo == other.hi || self.hi == other.lo || self.hi == other.hi
    }
}

impl From<(Coord, Coord)> for Interval {
    fn from((lo, hi): (Coord, Coord)) -> Self {
        Interval::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let iv = Interval::new(3, 9);
        assert_eq!(iv.lo(), 3);
        assert_eq!(iv.hi(), 9);
        assert_eq!(iv.length(), 6);
        assert_eq!(iv.point_count(), 7);
        assert!(!iv.is_degenerate());
        assert!(Interval::point(5).is_degenerate());
        assert_eq!(Interval::try_new(9, 3), None);
        assert_eq!(Interval::try_new(3, 3), Some(Interval::point(3)));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn invalid_construction_panics() {
        let _ = Interval::new(10, 2);
    }

    #[test]
    fn containment() {
        let iv = Interval::new(2, 6);
        assert!(iv.contains(2));
        assert!(iv.contains(6));
        assert!(iv.contains(4));
        assert!(!iv.contains(1));
        assert!(!iv.contains(7));
        assert!(iv.contains_interval(&Interval::new(2, 6)));
        assert!(iv.contains_interval(&Interval::new(3, 5)));
        assert!(!iv.contains_interval(&Interval::new(3, 7)));
    }

    #[test]
    fn figure3_cases_overlap_semantics() {
        let r = Interval::new(10, 20);
        // (1) disjunct
        assert!(!r.overlaps(&Interval::new(25, 30)));
        assert!(!r.overlaps_plus(&Interval::new(25, 30)));
        // (2) meet: touching only — not an overlap, but overlap+
        assert!(!r.overlaps(&Interval::new(20, 30)));
        assert!(r.overlaps_plus(&Interval::new(20, 30)));
        assert!(!r.overlaps(&Interval::new(5, 10)));
        assert!(r.overlaps_plus(&Interval::new(5, 10)));
        // (3) proper overlap
        assert!(r.overlaps(&Interval::new(15, 30)));
        // (4) containment (strict)
        assert!(r.overlaps(&Interval::new(12, 18)));
        assert!(Interval::new(12, 18).overlaps(&r));
        // (5) containment with one shared endpoint
        assert!(r.overlaps(&Interval::new(10, 15)));
        assert!(r.overlaps(&Interval::new(15, 20)));
        // (6) identical
        assert!(r.overlaps(&r.clone()));
    }

    #[test]
    fn degenerate_objects_never_overlap() {
        let p = Interval::point(15);
        let r = Interval::new(10, 20);
        assert!(!p.overlaps(&r));
        assert!(!r.overlaps(&p));
        assert!(p.overlaps_plus(&r));
        assert!(!p.overlaps(&p));
    }

    #[test]
    fn def1_literal_agrees_without_shared_endpoints() {
        let r = Interval::new(10, 20);
        for s in [
            Interval::new(1, 5),
            Interval::new(1, 15),
            Interval::new(12, 17),
            Interval::new(15, 99),
            Interval::new(21, 30),
            Interval::new(5, 40),
        ] {
            assert!(!r.shares_endpoint(&s));
            assert_eq!(r.overlaps(&s), r.overlaps_def1_literal(&s), "{s:?}");
        }
    }

    #[test]
    fn def1_literal_fails_on_identical() {
        // The known deficiency of the literal formula that Assumption 1 works
        // around: identical intervals do not satisfy the strict disjunction.
        let r = Interval::new(10, 20);
        assert!(r.overlaps(&r.clone()));
        assert!(!r.overlaps_def1_literal(&r.clone()));
    }

    #[test]
    fn intersection_values() {
        let r = Interval::new(10, 20);
        assert_eq!(
            r.intersection(&Interval::new(15, 30)),
            Some(Interval::new(15, 20))
        );
        assert_eq!(
            r.intersection(&Interval::new(20, 30)),
            Some(Interval::point(20))
        );
        assert_eq!(r.intersection(&Interval::new(25, 30)), None);
    }

    // Seeded stand-ins for the original proptest properties (the offline
    // build has no proptest).
    fn random_pair(rng: &mut rand::rngs::StdRng, bound: u64) -> (Interval, Interval) {
        use rand::Rng as _;
        let (a, b) = (rng.gen_range(0..bound), rng.gen_range(0..bound));
        let (c, d) = (rng.gen_range(0..bound), rng.gen_range(0..bound));
        (
            Interval::new(a.min(b), a.max(b)),
            Interval::new(c.min(d), c.max(d)),
        )
    }

    #[test]
    fn overlap_is_symmetric() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for _ in 0..1024 {
            let (r, s) = random_pair(&mut rng, 1000);
            assert_eq!(r.overlaps(&s), s.overlaps(&r));
            assert_eq!(r.overlaps_plus(&s), s.overlaps_plus(&r));
        }
    }

    #[test]
    fn overlap_matches_intersection_length() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        for _ in 0..1024 {
            let (r, s) = random_pair(&mut rng, 1000);
            let by_len = r.intersection(&s).map(|i| i.length() > 0).unwrap_or(false);
            assert_eq!(r.overlaps(&s), by_len);
            let by_nonempty = r.intersection(&s).is_some();
            assert_eq!(r.overlaps_plus(&s), by_nonempty);
        }
    }

    #[test]
    fn overlap_implies_overlap_plus() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        for _ in 0..1024 {
            let (r, s) = random_pair(&mut rng, 1000);
            if r.overlaps(&s) {
                assert!(r.overlaps_plus(&s));
            }
        }
    }

    #[test]
    fn def1_literal_equivalence_under_assumption1() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        for _ in 0..1024 {
            let (a, b) = (rng.gen_range(0u64..500), rng.gen_range(0u64..500));
            let (c, d) = (rng.gen_range(0u64..500), rng.gen_range(0u64..500));
            let r = Interval::new(2 * a.min(b), 2 * a.max(b) + 2);
            // Force distinct endpoint parity so endpoints can never collide.
            let s = Interval::new(2 * c.min(d) + 1, 2 * c.max(d) + 1 + 2);
            assert!(!r.shares_endpoint(&s));
            if !r.is_degenerate() && !s.is_degenerate() {
                assert_eq!(r.overlaps(&s), r.overlaps_def1_literal(&s));
            }
        }
    }
}

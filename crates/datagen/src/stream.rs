//! Insert/delete update streams.
//!
//! Sketches are maintainable under deletions (Section 1: "handle inserts and
//! deletes to the database incrementally"); these helpers produce
//! deterministic mixed workloads for exercising that path, tracking the live
//! multiset so deletions always remove an element that is actually present.

use crate::rng::rng_for;
use geometry::HyperRect;
use rand::Rng;

/// A single update against a spatial relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update<const D: usize> {
    /// Insert the rectangle.
    Insert(HyperRect<D>),
    /// Delete one previously inserted copy of the rectangle.
    Delete(HyperRect<D>),
}

impl<const D: usize> Update<D> {
    /// The rectangle being inserted or deleted.
    pub fn rect(&self) -> &HyperRect<D> {
        match self {
            Update::Insert(r) | Update::Delete(r) => r,
        }
    }

    /// +1 for inserts, -1 for deletes — the sketch update sign.
    pub fn delta(&self) -> i64 {
        match self {
            Update::Insert(_) => 1,
            Update::Delete(_) => -1,
        }
    }
}

/// Builds a stream that first inserts every base object, then performs
/// `churn` random operations with the given delete probability (deletes pick
/// a uniformly random live object; when none are live an insert is emitted
/// instead). Deleted objects are re-inserted from the base pool, modelling
/// a fluctuating live set over a fixed object universe.
pub fn churn_stream<const D: usize>(
    base: &[HyperRect<D>],
    churn: usize,
    delete_prob: f64,
    seed: u64,
) -> Vec<Update<D>> {
    assert!((0.0..=1.0).contains(&delete_prob), "probability in [0,1]");
    let mut rng = rng_for(seed);
    let mut stream = Vec::with_capacity(base.len() + churn);
    let mut live: Vec<HyperRect<D>> = Vec::with_capacity(base.len());
    for r in base {
        stream.push(Update::Insert(*r));
        live.push(*r);
    }
    for _ in 0..churn {
        if !live.is_empty() && rng.gen::<f64>() < delete_prob {
            let i = rng.gen_range(0..live.len());
            let r = live.swap_remove(i);
            stream.push(Update::Delete(r));
        } else if !base.is_empty() {
            let r = base[rng.gen_range(0..base.len())];
            stream.push(Update::Insert(r));
            live.push(r);
        }
    }
    stream
}

/// Replays a stream into a live multiset (reference semantics for tests and
/// for computing exact answers mid-stream).
pub fn replay<const D: usize>(stream: &[Update<D>]) -> Vec<HyperRect<D>> {
    let mut live: Vec<HyperRect<D>> = Vec::new();
    for u in stream {
        match u {
            Update::Insert(r) => live.push(*r),
            Update::Delete(r) => {
                let pos = live
                    .iter()
                    .position(|x| x == r)
                    .expect("stream deletes an object that is not live");
                live.swap_remove(pos);
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;

    fn base() -> Vec<HyperRect<2>> {
        (0..50u64)
            .map(|i| rect2(i, i + 5, 2 * i, 2 * i + 3))
            .collect()
    }

    #[test]
    fn stream_is_replayable_and_deterministic() {
        let b = base();
        let s1 = churn_stream(&b, 200, 0.5, 99);
        let s2 = churn_stream(&b, 200, 0.5, 99);
        assert_eq!(s1, s2);
        let live = replay(&s1);
        // Every live object comes from the base pool.
        assert!(live.iter().all(|r| b.contains(r)));
    }

    #[test]
    fn deletes_never_underflow() {
        let b = base();
        let s = churn_stream(&b, 500, 0.95, 7);
        let live = replay(&s); // would panic on an invalid delete
        let inserts = s.iter().filter(|u| matches!(u, Update::Insert(_))).count();
        let deletes = s.iter().filter(|u| matches!(u, Update::Delete(_))).count();
        assert_eq!(live.len(), inserts - deletes);
    }

    #[test]
    fn delta_signs() {
        let r = rect2(0, 1, 0, 1);
        assert_eq!(Update::Insert(r).delta(), 1);
        assert_eq!(Update::Delete(r).delta(), -1);
        assert_eq!(Update::Delete(r).rect(), &r);
    }

    #[test]
    fn all_insert_stream_when_delete_prob_zero() {
        let b = base();
        let s = churn_stream(&b, 100, 0.0, 3);
        assert_eq!(s.len(), b.len() + 100);
        assert!(s.iter().all(|u| matches!(u, Update::Insert(_))));
    }
}

//! The single concrete data model every [`crate::Serialize`] impl feeds.

/// A JSON-shaped value tree.
///
/// Integers keep their signedness (`Int` vs `UInt`) so `i64`/`u64` fields
/// round-trip exactly; a JSON writer may merge the two.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (always negative when produced by the parser).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An insertion-ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short tag for error messages ("map", "sequence", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

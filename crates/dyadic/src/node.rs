//! Heap-indexed dyadic intervals over a power-of-two domain.
//!
//! For a domain `N = {0, .., n-1}` with `n = 2^h`, the paper (Section 3.1)
//! partitions `N` at every level `0 <= i <= h` into `2^(h-i)` aligned
//! intervals of size `2^i`. The set `D` of all dyadic intervals has
//! `2n - 1` members and forms a complete binary tree. We number the tree
//! heap-style:
//!
//! * the root (the whole domain, level `h`) has id `1`,
//! * the children of id `v` are `2v` and `2v + 1`,
//! * the leaf for coordinate `x` (level 0) has id `n + x`.
//!
//! Under this numbering the level-`l` dyadic interval containing coordinate
//! `x` has id `(n + x) >> l`, which makes point covers and segment-tree
//! style interval covers branch-free.

use geometry::{Coord, Interval};

/// A power-of-two discrete domain together with its dyadic interval tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DyadicDomain {
    bits: u32,
}

/// Identifier of a dyadic interval (heap index, `1 ..= 2n - 1`).
pub type NodeId = u64;

impl DyadicDomain {
    /// Maximum supported domain bits. Node ids need `bits + 1` bits and the
    /// xi-family index space is sized accordingly.
    pub const MAX_BITS: u32 = 40;

    /// Creates the dyadic tree over `{0, .., 2^bits - 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds [`DyadicDomain::MAX_BITS`].
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=Self::MAX_BITS).contains(&bits),
            "domain bits must be in 1..={}, got {bits}",
            Self::MAX_BITS
        );
        Self { bits }
    }

    /// Smallest domain that can hold coordinates `0 ..= max_coord`.
    pub fn for_max_coordinate(max_coord: Coord) -> Self {
        let bits = (64 - max_coord.leading_zeros()).max(1);
        Self::new(bits)
    }

    /// Domain bits `h` (levels run `0 ..= h`).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Domain size `n = 2^h`.
    #[inline]
    pub fn size(&self) -> u64 {
        1u64 << self.bits
    }

    /// Number of dyadic intervals, `2n - 1`.
    #[inline]
    pub fn node_count(&self) -> u64 {
        2 * self.size() - 1
    }

    /// Bits needed to index nodes (`node ids < 2n`), i.e. the `k` of the
    /// xi-family domain for this dyadic space.
    #[inline]
    pub fn node_bits(&self) -> u32 {
        self.bits + 1
    }

    /// Whether `x` is a valid coordinate.
    #[inline]
    pub fn contains_coord(&self, x: Coord) -> bool {
        x < self.size()
    }

    /// Leaf id of coordinate `x` (the level-0 dyadic interval `[x, x]`).
    #[inline]
    pub fn leaf(&self, x: Coord) -> NodeId {
        debug_assert!(self.contains_coord(x));
        self.size() + x
    }

    /// Id of the level-`level` dyadic interval containing `x`.
    #[inline]
    pub fn ancestor(&self, x: Coord, level: u32) -> NodeId {
        debug_assert!(level <= self.bits);
        (self.size() + x) >> level
    }

    /// Level of a node (interval size is `2^level`).
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        debug_assert!(id >= 1 && id < 2 * self.size());
        let depth = 63 - id.leading_zeros(); // floor(log2(id))
        self.bits - depth
    }

    /// The coordinate range covered by a node.
    pub fn node_range(&self, id: NodeId) -> Interval {
        let level = self.level(id);
        let first_at_level = 1u64 << (self.bits - level);
        let offset = id - first_at_level;
        let lo = offset << level;
        Interval::new(lo, lo + (1u64 << level) - 1)
    }

    /// Whether dyadic interval `id` contains coordinate `x`.
    #[inline]
    pub fn node_contains(&self, id: NodeId, x: Coord) -> bool {
        self.ancestor(x, self.level(id)) == id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let d = DyadicDomain::new(3); // n = 8
        assert_eq!(d.size(), 8);
        assert_eq!(d.node_count(), 15);
        assert_eq!(d.node_bits(), 4);
        assert_eq!(d.leaf(0), 8);
        assert_eq!(d.leaf(7), 15);
        assert_eq!(d.level(1), 3);
        assert_eq!(d.level(2), 2);
        assert_eq!(d.level(8), 0);
        assert_eq!(d.node_range(1), Interval::new(0, 7));
        assert_eq!(d.node_range(2), Interval::new(0, 3));
        assert_eq!(d.node_range(3), Interval::new(4, 7));
        assert_eq!(d.node_range(13), Interval::new(5, 5));
    }

    #[test]
    fn for_max_coordinate_fits() {
        assert_eq!(DyadicDomain::for_max_coordinate(0).bits(), 1);
        assert_eq!(DyadicDomain::for_max_coordinate(1).bits(), 1);
        assert_eq!(DyadicDomain::for_max_coordinate(2).bits(), 2);
        assert_eq!(DyadicDomain::for_max_coordinate(255).bits(), 8);
        assert_eq!(DyadicDomain::for_max_coordinate(256).bits(), 9);
    }

    #[test]
    #[should_panic(expected = "domain bits")]
    fn zero_bits_rejected() {
        let _ = DyadicDomain::new(0);
    }

    #[test]
    fn ancestor_consistency() {
        let d = DyadicDomain::new(4);
        for x in 0..16u64 {
            assert_eq!(d.ancestor(x, 0), d.leaf(x));
            assert_eq!(d.ancestor(x, 4), 1);
            for level in 0..=4u32 {
                let id = d.ancestor(x, level);
                assert_eq!(d.level(id), level);
                assert!(d.node_range(id).contains(x));
                assert!(d.node_contains(id, x));
            }
        }
    }

    #[test]
    fn children_partition_parent() {
        let d = DyadicDomain::new(5);
        for id in 1..d.size() {
            let parent = d.node_range(id);
            let left = d.node_range(2 * id);
            let right = d.node_range(2 * id + 1);
            assert_eq!(left.lo(), parent.lo());
            assert_eq!(right.hi(), parent.hi());
            assert_eq!(left.hi() + 1, right.lo());
        }
    }

    #[test]
    fn levels_have_correct_population() {
        let d = DyadicDomain::new(4);
        for level in 0..=4u32 {
            let expected = 1u64 << (4 - level);
            let count = (1..2 * d.size()).filter(|&id| d.level(id) == level).count() as u64;
            assert_eq!(count, expected, "level {level}");
        }
    }

    // Seeded stand-ins for the original proptest properties (the offline
    // build has no proptest).
    #[test]
    fn node_range_and_contains_agree() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..1024 {
            let bits = rng.gen_range(1u32..12);
            let d = DyadicDomain::new(bits);
            let x = rng.gen_range(0u64..4096) % d.size();
            let id = rng.gen_range(1u64..8191) % d.node_count() + 1;
            assert_eq!(d.node_contains(id, x), d.node_range(id).contains(x));
        }
    }

    #[test]
    fn exactly_one_node_per_level_contains_point() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..256 {
            let bits = rng.gen_range(1u32..10);
            let d = DyadicDomain::new(bits);
            let x = rng.gen_range(0u64..1024) % d.size();
            for level in 0..=bits {
                let matching = (1..=d.node_count())
                    .filter(|&id| d.level(id) == level && d.node_contains(id, x))
                    .count();
                assert_eq!(matching, 1);
            }
        }
    }
}

//! # serve — the serving layer for spatial sketches
//!
//! Production serving over many sketches, built on three pieces (see
//! `DESIGN.md` § "Serving layer" for the full picture):
//!
//! * [`store::ShardedStore`] — partitions the keyed domain across N
//!   [`shard::SketchShard`]s along a dyadic-aligned
//!   [`dyadic::DomainPartition`] (shard boundaries sit on dyadic slab
//!   boundaries, so range/stab covers split cleanly at them), and publishes
//!   immutable epochs: ingest builds into staging shards and atomically
//!   swaps a new epoch in, readers revalidate a cached epoch with one
//!   atomic load — the steady-state read path takes no lock and allocates
//!   nothing.
//! * [`router::QueryRouter`] — compiles a query once (through the worker's
//!   plan-caching [`sketch::QueryContext`]), fans out to the selected
//!   shards, and merges **at the counter level**, the only merge point that
//!   is correct for boosting (nonlinear) and pair estimators (bilinear) —
//!   and exact: integer linearity makes every router answer bit-identical
//!   to a single unsharded [`sketch::SketchSet`] over the selected shards'
//!   objects.
//! * [`context::ContextPool`] — per-worker [`context::WorkerContext`]s
//!   (estimation scratch + cached epochs + cached merged views) so
//!   concurrent request handlers stay allocation-free.
//!
//! The [`net`] module puts the three behind a TCP front-end: a compact
//! framed binary protocol with pipelined frame ids, an event-driven
//! reactor multiplexing every connection over a few threads,
//! cross-connection batch coalescing through single pooled-context
//! passes, bounded-queue backpressure with load shedding, and graceful
//! drain — see `DESIGN.md` § "Network front-end".
//!
//! On top of those, the elastic layer (`DESIGN.md` § "Elastic sharding"):
//!
//! * [`rebalance`] — hot-shard detection ([`ShardLoadReport`]) and online
//!   topology changes ([`store::ShardedStore::split_shard`] /
//!   [`store::ShardedStore::merge_shards`] /
//!   [`store::ShardedStore::move_shard_boundary`]): affected shards are
//!   rebuilt by replaying the store's update journal through the new
//!   partition and published as one atomic epoch swap — ingest pauses for
//!   the rebuild, queries never do, and answers stay bit-identical to an
//!   unsharded oracle throughout.
//! * [`replica`] — snapshot-based replicas ([`Replica`]): restore a
//!   [`StoreSnapshot`] against the shared schema, tail the primary's
//!   bounded journal to catch up, and serve bit-identical answers after a
//!   [`ReplicaSet`] failover.
//! * [`cluster`] — a scatter-gather [`ClusterRouter`] fronting remote
//!   store nodes over [`net`]: nodes return pre-boost
//!   [`sketch::PartialEstimate`] grids, merged in fixed node order and
//!   boosted once at the router, with per-node replica-address failover.
//!
//! ## Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use serve::{ContextPool, QueryRouter, ShardedStore};
//! use sketch::estimators::SketchConfig;
//! use sketch::{RangeQuery, RangeStrategy};
//! use geometry::rect2;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let rq = RangeQuery::<2>::new(
//!     &mut rng,
//!     SketchConfig::new(16, 5),
//!     [8, 8],
//!     RangeStrategy::Transform,
//! );
//! let store = ShardedStore::like(&rq.new_sketch(), 4);
//! store.insert_slice(&[rect2(10, 40, 10, 40), rect2(100, 140, 90, 120)]).unwrap();
//!
//! let router = QueryRouter::new();
//! let pool = ContextPool::new(2);
//! let est = pool
//!     .with(|ctx| router.estimate_range(&rq, &store, ctx, &rect2(0, 80, 0, 80)))
//!     .unwrap();
//! assert!(est.value.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod context;
pub mod net;
pub mod rebalance;
pub mod replica;
pub mod router;
pub mod shard;
pub mod store;

pub use cluster::{ClusterError, ClusterNode, ClusterRouter, NodeHealth};
pub use context::{ContextPool, WorkerContext};
pub use net::{ClientConfig, ServeConfig, ServeStats, ServerHandle, SketchClient, SketchService};
pub use rebalance::{RebalanceError, ShardLoad, ShardLoadReport};
pub use replica::{Replica, ReplicaSet, ReplicaState};
pub use router::{QueryRouter, RouterMode};
pub use shard::SketchShard;
pub use store::{ShardedStore, StoreEpoch, StoreSnapshot};

//! Spatial join estimators for sets of hyper-rectangles.
//!
//! [`SpatialJoin`] estimates `|R ⋈_o S|` (Definition 1: full-dimensional
//! intersection). Three strategies handle the common-endpoint problem of
//! Section 4.1.2:
//!
//! * [`EndpointStrategy::AssumeDistinct`] — the raw estimator of
//!   Theorems 1-3. Exact in expectation **only** under Assumption 1 (no
//!   endpoint coordinate shared between `R` and `S` in any dimension).
//! * [`EndpointStrategy::Transform`] — the Section 5.2 domain transform:
//!   both relations are embedded into the tripled domain and `S` is shrunk;
//!   unbiased for arbitrary inputs at the cost of two extra domain bits.
//! * [`EndpointStrategy::CorrectCommon`] — the Appendix C estimator: stays
//!   on the raw domain and subtracts the over-counts with additional
//!   leaf-endpoint sketches `X_L`/`X_U` (more atomic sketches, larger
//!   variance bound `2·SJ(R)·SJ(S)` instead of `SJ(R)·SJ(S)/2` in 1-d).
//!
//! [`OverlapPlusJoin`] estimates the extended join `|R ⋈+_o S|`
//! (Definition 4: touching boundaries count), per Appendix B.1.
//!
//! Both require non-degenerate objects (zero-extent objects contribute
//! nothing to `⋈_o` by definition and are mishandled by `⋈+_o` counting;
//! the paper makes the same assumption in Section 4.1).

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::Comp;
use crate::error::Result;
use crate::estimator::{DimTerm, PairEstimator, PairTerms};
use crate::estimators::SketchConfig;
use crate::query::QueryContext;
use crate::schema::{DimSpec, SketchSchema};
use rand::Rng;

/// How shared endpoint coordinates between `R` and `S` are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointStrategy {
    /// Trust Assumption 1; cheapest and matches Theorems 1-3 verbatim.
    AssumeDistinct,
    /// Section 5.2 endpoint transform (tripled domain, `S` shrunk).
    Transform,
    /// Appendix C corrective sketches on the raw domain.
    CorrectCommon,
}

fn join_dim_terms(strategy: EndpointStrategy) -> Vec<DimTerm> {
    let mut terms = vec![
        DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
        DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
    ];
    if strategy == EndpointStrategy::CorrectCommon {
        // Appendix C (Lemma 13): subtract the over-counts of Figure 3 cases
        // (2), (5) and (6) using leaf-endpoint sketches.
        terms.extend([
            DimTerm::new(Comp::LowerLeaf, Comp::UpperLeaf, -1.0),
            DimTerm::new(Comp::UpperLeaf, Comp::LowerLeaf, -1.0),
            DimTerm::new(Comp::LowerLeaf, Comp::LowerLeaf, -0.5),
            DimTerm::new(Comp::UpperLeaf, Comp::UpperLeaf, -0.5),
        ]);
    }
    terms
}

fn policies(strategy: EndpointStrategy) -> (EndpointPolicy, EndpointPolicy) {
    match strategy {
        EndpointStrategy::AssumeDistinct | EndpointStrategy::CorrectCommon => {
            (EndpointPolicy::Raw, EndpointPolicy::Raw)
        }
        EndpointStrategy::Transform => (EndpointPolicy::Tripled, EndpointPolicy::TripledShrunk),
    }
}

fn build_pair<const D: usize, R: Rng + ?Sized>(
    rng: &mut R,
    config: SketchConfig,
    data_bits: [u32; D],
    per_dim_terms: Vec<DimTerm>,
    r_policy: EndpointPolicy,
    s_policy: EndpointPolicy,
) -> PairEstimator<D> {
    let extra = r_policy.extra_bits().max(s_policy.extra_bits());
    let dims: [DimSpec; D] = std::array::from_fn(|i| {
        let bits = data_bits[i] + extra;
        match config.max_level {
            Some(ml) => DimSpec::with_max_level(bits, ml),
            None => DimSpec::dyadic(bits),
        }
    });
    let schema = SketchSchema::new(rng, config.kind, config.shape, dims);
    let per_dim: [Vec<DimTerm>; D] = std::array::from_fn(|_| per_dim_terms.clone());
    let terms = PairTerms::from_dim_terms(&per_dim);
    PairEstimator::new(schema, terms, r_policy, s_policy)
}

/// Estimator for the spatial join `|R ⋈_o S|` of d-dimensional
/// hyper-rectangle sets (Theorems 1-3 with the Section 5 generalizations).
///
/// ```
/// use rand::SeedableRng;
/// use sketch::estimators::{joins::{EndpointStrategy, SpatialJoin}, SketchConfig};
/// use geometry::rect2;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let join = SpatialJoin::<2>::new(
///     &mut rng,
///     SketchConfig::new(64, 5),
///     [10, 10],
///     EndpointStrategy::Transform,
/// );
/// let mut r = join.new_sketch_r();
/// let mut s = join.new_sketch_s();
/// r.insert(&rect2(0, 100, 0, 100)).unwrap();
/// s.insert(&rect2(50, 150, 50, 150)).unwrap();
/// let est = join.estimate(&r, &s).unwrap();
/// assert!(est.value.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct SpatialJoin<const D: usize> {
    inner: PairEstimator<D>,
    strategy: EndpointStrategy,
}

impl<const D: usize> SpatialJoin<D> {
    /// Creates the estimator for data domains of `2^data_bits[i]` values per
    /// dimension.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        config: SketchConfig,
        data_bits: [u32; D],
        strategy: EndpointStrategy,
    ) -> Self {
        let (rp, sp) = policies(strategy);
        let inner = build_pair(rng, config, data_bits, join_dim_terms(strategy), rp, sp);
        Self { inner, strategy }
    }

    /// The endpoint strategy in use.
    pub fn strategy(&self) -> EndpointStrategy {
        self.strategy
    }

    /// The underlying generic estimator (schema, words, terms).
    pub fn inner(&self) -> &PairEstimator<D> {
        &self.inner
    }

    /// Creates an empty sketch for `R`.
    pub fn new_sketch_r(&self) -> SketchSet<D> {
        self.inner.new_sketch_r()
    }

    /// Creates an empty sketch for `S`.
    pub fn new_sketch_s(&self) -> SketchSet<D> {
        self.inner.new_sketch_s()
    }

    /// Combines the two sketches into the boosted cardinality estimate.
    pub fn estimate(&self, r: &SketchSet<D>, s: &SketchSet<D>) -> Result<Estimate> {
        self.inner.estimate(r, s)
    }

    /// Like [`SpatialJoin::estimate`] but with the caller's
    /// [`QueryContext`] (kernel choice + reused scratch for serving loops).
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        r: &SketchSet<D>,
        s: &SketchSet<D>,
    ) -> Result<Estimate> {
        self.inner.estimate_with(ctx, r, s)
    }

    /// Estimated selectivity `|R ⋈_o S| / (|R|·|S|)`.
    pub fn estimate_selectivity(&self, r: &SketchSet<D>, s: &SketchSet<D>) -> Result<f64> {
        let est = self.estimate(r, s)?;
        let denom = (r.len().max(1) as f64) * (s.len().max(1) as f64);
        Ok(est.value / denom)
    }
}

/// Estimator for the extended join `|R ⋈+_o S|` (Appendix B.1): overlap of
/// any dimensionality counts, including touching boundaries.
#[derive(Debug, Clone)]
pub struct OverlapPlusJoin<const D: usize> {
    inner: PairEstimator<D>,
}

impl<const D: usize> OverlapPlusJoin<D> {
    /// Creates the estimator. The Appendix B.1 construction sketches shrunken
    /// `S` geometry alongside untransformed leaf endpoints, so both sides
    /// live on the tripled domain (`data_bits + 2` sketch bits).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: SketchConfig, data_bits: [u32; D]) -> Self {
        // Per-dimension factor (B.1): (X_I Y_E + X_E Y_I)/2 + X_L Y_U + X_U Y_L.
        let terms = vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
            DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
            DimTerm::new(Comp::LowerLeaf, Comp::UpperLeaf, 1.0),
            DimTerm::new(Comp::UpperLeaf, Comp::LowerLeaf, 1.0),
        ];
        let inner = build_pair(
            rng,
            config,
            data_bits,
            terms,
            EndpointPolicy::Tripled,
            EndpointPolicy::TripledShrunk,
        );
        Self { inner }
    }

    /// The underlying generic estimator.
    pub fn inner(&self) -> &PairEstimator<D> {
        &self.inner
    }

    /// Creates an empty sketch for `R`.
    pub fn new_sketch_r(&self) -> SketchSet<D> {
        self.inner.new_sketch_r()
    }

    /// Creates an empty sketch for `S`.
    pub fn new_sketch_s(&self) -> SketchSet<D> {
        self.inner.new_sketch_s()
    }

    /// Combines the two sketches into the boosted cardinality estimate.
    pub fn estimate(&self, r: &SketchSet<D>, s: &SketchSet<D>) -> Result<Estimate> {
        self.inner.estimate(r, s)
    }

    /// Like [`OverlapPlusJoin::estimate`] but with the caller's
    /// [`QueryContext`].
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        r: &SketchSet<D>,
        s: &SketchSet<D>,
    ) -> Result<Estimate> {
        self.inner.estimate_with(ctx, r, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{rect2, HyperRect, Interval};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mean and standard error of the atomic estimates — used for
    /// self-normalizing unbiasedness checks: if E[Z] = truth, the sample mean
    /// over `n` i.i.d. instances deviates by more than 6 standard errors with
    /// probability ~1e-9.
    fn mean_se(join: &PairEstimator<1>, r: &SketchSet<1>, s: &SketchSet<1>) -> (f64, f64) {
        let shape = join.schema().shape();
        let est = join.estimate(r, s).unwrap();
        // Reconstruct atomic values from row means is lossy; recompute here.
        let _ = est;
        let mut vals = Vec::new();
        for inst in 0..shape.instances() {
            let rc = r.instance_counters(inst);
            let sc = s.instance_counters(inst);
            let mut z = 0.0;
            for t in join.terms().terms() {
                z += t.coeff * (rc[t.r_word] as i128 * sc[t.s_word] as i128) as f64;
            }
            vals.push(z);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    fn intervals_even(seed: u64, count: usize, domain: u64) -> Vec<HyperRect<1>> {
        // Even endpoints only: guarantees Assumption 1 against odd-endpoint sets.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let lo = 2 * rng.gen_range(0..domain / 2 - 2);
                let len = 2 * rng.gen_range(1..12u64);
                Interval::new(lo, (lo + len).min(domain - 2)).into()
            })
            .collect()
    }

    fn intervals_odd(seed: u64, count: usize, domain: u64) -> Vec<HyperRect<1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let lo = 2 * rng.gen_range(0..domain / 2 - 8) + 1;
                let len = 2 * rng.gen_range(1..12u64);
                Interval::new(lo, (lo + len).min(domain - 1)).into()
            })
            .collect()
    }

    fn build_and_fill(
        join: &SpatialJoin<1>,
        r_data: &[HyperRect<1>],
        s_data: &[HyperRect<1>],
    ) -> (SketchSet<1>, SketchSet<1>) {
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        for x in r_data {
            r.insert(x).unwrap();
        }
        for x in s_data {
            s.insert(x).unwrap();
        }
        (r, s)
    }

    #[test]
    fn interval_join_unbiased_under_assumption1() {
        let mut rng = StdRng::seed_from_u64(42);
        let join = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(300, 5),
            [8],
            EndpointStrategy::AssumeDistinct,
        );
        let r_data = intervals_even(1, 40, 256);
        let s_data = intervals_odd(2, 40, 256);
        let truth = exact::naive::join_count(&r_data, &s_data) as f64;
        assert!(truth > 0.0);
        let (r, s) = build_and_fill(&join, &r_data, &s_data);
        let (mean, se) = mean_se(join.inner(), &r, &s);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn transform_strategy_unbiased_with_shared_endpoints() {
        let mut rng = StdRng::seed_from_u64(43);
        let join = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(300, 5),
            [8],
            EndpointStrategy::Transform,
        );
        // Same generator for both sides: many shared endpoints, including
        // identical intervals.
        let r_data = intervals_even(5, 40, 256);
        let mut s_data = intervals_even(5, 30, 256);
        s_data.extend_from_slice(&r_data[..10]);
        let truth = exact::naive::join_count(&r_data, &s_data) as f64;
        assert!(truth > 0.0);
        let (r, s) = build_and_fill(&join, &r_data, &s_data);
        let (mean, se) = mean_se(join.inner(), &r, &s);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn appendix_c_strategy_unbiased_with_shared_endpoints() {
        let mut rng = StdRng::seed_from_u64(44);
        let join = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(400, 5),
            [8],
            EndpointStrategy::CorrectCommon,
        );
        let r_data = intervals_even(7, 35, 256);
        let mut s_data = intervals_even(8, 25, 256);
        s_data.extend_from_slice(&r_data[..12]); // force cases (5)/(6)
        let truth = exact::naive::join_count(&r_data, &s_data) as f64;
        assert!(truth > 0.0);
        let (r, s) = build_and_fill(&join, &r_data, &s_data);
        let (mean, se) = mean_se(join.inner(), &r, &s);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn raw_strategy_biased_on_identical_inputs() {
        // Negative control: AssumeDistinct must over-count case (6) —
        // otherwise the transform/Appendix-C strategies would be pointless.
        // For a single identical pair, Section 4.1.2's counting yields
        // 4/2 = 2 instead of 1.
        let mut rng = StdRng::seed_from_u64(45);
        let join = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(4000, 3),
            [4],
            EndpointStrategy::AssumeDistinct,
        );
        let data: Vec<HyperRect<1>> = vec![Interval::new(5, 11).into()];
        let truth = exact::naive::join_count(&data, &data) as f64;
        assert_eq!(truth, 1.0);
        let (r, s) = build_and_fill(&join, &data, &data);
        let (mean, se) = mean_se(join.inner(), &r, &s);
        assert!(
            (mean - truth).abs() > 6.0 * se,
            "raw estimator should be biased here: mean {mean}, truth {truth}, se {se}"
        );
        // And the bias is exactly the predicted over-count: E = 2, not 1.
        assert!(
            (mean - 2.0).abs() <= 6.0 * se,
            "expected E[Z] = 2 for an identical pair: mean {mean}, se {se}"
        );
    }

    #[test]
    fn rect_join_2d_unbiased() {
        let mut rng = StdRng::seed_from_u64(46);
        let join = SpatialJoin::<2>::new(
            &mut rng,
            SketchConfig::new(400, 5),
            [6, 6],
            EndpointStrategy::Transform,
        );
        let gen = |seed: u64, n: usize| -> Vec<HyperRect<2>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| {
                    let x = rng.gen_range(0..50u64);
                    let y = rng.gen_range(0..50u64);
                    rect2(
                        x,
                        x + rng.gen_range(1u64..12),
                        y,
                        y + rng.gen_range(1u64..12),
                    )
                })
                .collect()
        };
        let r_data = gen(1, 80);
        let s_data = gen(2, 80);
        let truth = exact::rect_join_count(&r_data, &s_data) as f64;
        assert!(truth > 100.0, "workload too sparse: {truth}");
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        for x in &r_data {
            r.insert(x).unwrap();
        }
        for x in &s_data {
            s.insert(x).unwrap();
        }
        // Self-normalized mean check over instances (2-d variant).
        let shape = join.inner().schema().shape();
        let mut vals = Vec::new();
        for inst in 0..shape.instances() {
            let rc = r.instance_counters(inst);
            let sc = s.instance_counters(inst);
            let mut z = 0.0;
            for t in join.inner().terms().terms() {
                z += t.coeff * (rc[t.r_word] as i128 * sc[t.s_word] as i128) as f64;
            }
            vals.push(z);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        let se = (var / n).sqrt();
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
        // The boosted estimate should land in a sane ballpark too. (The
        // sharp statistical statement is the 6-sigma mean check above; with
        // k1 = 400 on this tiny workload the median's own deviation can be
        // on the order of the truth itself, so this is a loose smoke bound —
        // the integration tests exercise tight accuracy at realistic sizes.)
        let est = join.estimate(&r, &s).unwrap();
        assert!(
            (est.value - truth).abs() / truth < 2.0,
            "boosted {} vs truth {truth}",
            est.value
        );
    }

    #[test]
    fn overlap_plus_counts_touching() {
        let mut rng = StdRng::seed_from_u64(47);
        let join = OverlapPlusJoin::<1>::new(&mut rng, SketchConfig::new(400, 5), [8]);
        // Chains of exactly-touching intervals: ⋈+ differs from ⋈ by the meets.
        let r_data: Vec<HyperRect<1>> = (0..20u64)
            .map(|i| Interval::new(10 * i, 10 * i + 10).into())
            .collect();
        let s_data: Vec<HyperRect<1>> = (0..20u64)
            .map(|i| Interval::new(10 * i + 10, 10 * i + 14).into())
            .collect();
        let truth_plus = exact::naive::join_plus_count(&r_data, &s_data) as f64;
        let truth_strict = exact::naive::join_count(&r_data, &s_data) as f64;
        assert!(truth_plus > truth_strict);
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        for x in &r_data {
            r.insert(x).unwrap();
        }
        for x in &s_data {
            s.insert(x).unwrap();
        }
        let shape = join.inner().schema().shape();
        let mut vals = Vec::new();
        for inst in 0..shape.instances() {
            let rc = r.instance_counters(inst);
            let sc = s.instance_counters(inst);
            let mut z = 0.0;
            for t in join.inner().terms().terms() {
                z += t.coeff * (rc[t.r_word] as i128 * sc[t.s_word] as i128) as f64;
            }
            vals.push(z);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        let se = (var / n).sqrt();
        assert!(
            (mean - truth_plus).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth_plus} (se {se})"
        );
    }

    #[test]
    fn estimate_rejects_foreign_sketches() {
        let mut rng = StdRng::seed_from_u64(48);
        let a = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            EndpointStrategy::AssumeDistinct,
        );
        let b = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            EndpointStrategy::AssumeDistinct,
        );
        let r = a.new_sketch_r();
        let s_foreign = b.new_sketch_s();
        assert!(a.estimate(&r, &s_foreign).is_err());
        // Swapped word sets are rejected too.
        let s = a.new_sketch_s();
        // r in place of s: word lists coincide for the symmetric join, so
        // this is actually allowed; use the Appendix-C variant for asymmetry.
        let _ = s;
        let c = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            EndpointStrategy::CorrectCommon,
        );
        let rc_sk = c.new_sketch_r();
        assert!(a.estimate(&rc_sk, &a.new_sketch_s()).is_err());
    }

    #[test]
    fn selectivity_normalization() {
        let mut rng = StdRng::seed_from_u64(49);
        let join = SpatialJoin::<1>::new(
            &mut rng,
            SketchConfig::new(64, 3),
            [8],
            EndpointStrategy::Transform,
        );
        let r_data = intervals_even(3, 16, 256);
        let s_data = intervals_odd(4, 8, 256);
        let (r, s) = build_and_fill(&join, &r_data, &s_data);
        let est = join.estimate(&r, &s).unwrap();
        let sel = join.estimate_selectivity(&r, &s).unwrap();
        assert!((sel - est.value / (16.0 * 8.0)).abs() < 1e-12);
    }
}

//! Differential suite for the network front-end: batched answers over a
//! real TCP connection against the in-process `QueryRouter` oracle.
//!
//! The wire carries f64 *bit patterns*, the workers answer through the
//! same router + pooled contexts the in-process path uses, and counter
//! merges are integer folds — so every networked estimate must be
//! **bit-identical** to the in-process answer, across the query-kernel
//! matrix and batch sizes 1/7/64. Also covered: pipelined out-of-order
//! frame completion, cross-connection batch coalescing, client timeouts
//! and reconnect against a dying server, deterministic load shedding,
//! wire-injected panic + pool recovery, protocol-violation handling, and
//! ping liveness.
//!
//! Heavyweight cases (the full kernel × batch-size sweep, the coalescing
//! kernel matrix) are gated to the `tests-release` lane with
//! `#[cfg_attr(debug_assertions, ignore)]`, following the ROADMAP
//! convention.

use geometry::{HyperRect, Interval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::net::codec::{decode_queries, encode_replies, Opcode};
use serve::net::io::{frame_bytes, read_frame, write_frame};
use serve::net::{
    range_query, serve, stab_query, ClientConfig, SketchClient, WireError, WireErrorCode,
    WireQuery, WireReply,
};
use serve::{ContextPool, QueryRouter, ServeConfig, ShardedStore, SketchService, WorkerContext};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{Estimate, QueryKernel, RangeQuery, RangeStrategy};
use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const KERNELS: [QueryKernel; 3] = [QueryKernel::Scalar, QueryKernel::Batched, QueryKernel::Wide];
const BATCH_SIZES: [usize; 3] = [1, 7, 64];

/// A served fixture: range + join estimators over three sharded stores
/// (range at index 0, join R/S at 1/2), with unsharded oracle routing
/// state kept alongside for the differential checks.
struct Fixture {
    rq: RangeQuery<2>,
    join: SpatialJoin<2>,
    stores: Vec<Arc<ShardedStore<2>>>,
    data: Vec<HyperRect<2>>,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [8, 8],
        RangeStrategy::Transform,
    );
    let join = SpatialJoin::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [8, 8],
        EndpointStrategy::Transform,
    );
    let range_store = Arc::new(ShardedStore::like(&rq.new_sketch(), 3));
    let r_store = Arc::new(ShardedStore::like(&join.new_sketch_r(), 2));
    let s_store = Arc::new(ShardedStore::like(&join.new_sketch_s(), 4));
    let data = rand_rects(&mut rng, 80);
    // Multi-epoch history with deletes, mirrored into all three stores.
    for store in [&range_store, &r_store, &s_store] {
        for chunk in data.chunks(30) {
            store.insert_slice(chunk).unwrap();
        }
        store.delete_slice(&data[..15]).unwrap();
    }
    Fixture {
        rq,
        join,
        stores: vec![range_store, r_store, s_store],
        data,
    }
}

fn rand_rects(rng: &mut StdRng, n: usize) -> Vec<HyperRect<2>> {
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..255 - 17u64);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

fn assert_wire_bit_identical(want: &Estimate, got: &WireReply, label: &str) {
    let WireReply::Estimate { value, row_means } = got else {
        panic!("{label}: expected an estimate, got {got:?}");
    };
    assert_eq!(
        want.value.to_bits(),
        value.to_bits(),
        "{label}: networked value diverged ({value} vs {})",
        want.value
    );
    assert_eq!(want.row_means.len(), row_means.len(), "{label}: row count");
    for (i, (a, b)) in want.row_means.iter().zip(row_means.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: row mean {i} diverged");
    }
}

/// The full matrix: for each query kernel and batch size, a mixed
/// range/stab/join batch answered over TCP must bit-match the in-process
/// router driven with the same kernel.
fn kernel_batch_matrix(fx: &Fixture, kernels: &[QueryKernel], sizes: &[usize]) {
    let mut rng = StdRng::seed_from_u64(907);
    let router = QueryRouter::new();
    for &kernel in kernels {
        let service = Arc::new(
            SketchService::new(fx.rq.clone(), fx.stores.clone()).with_join(fx.join.clone()),
        );
        // Pin the served kernel through the pool contexts.
        let pool = Arc::new(ContextPool::new(2));
        pool.with(|ctx| ctx.query.set_kernel(kernel));
        pool.with(|ctx| ctx.query.set_kernel(kernel));
        let server = serve(service, pool, &ServeConfig::default(), 0).unwrap();
        let mut client = SketchClient::connect(server.local_addr()).unwrap();
        let mut ctx = WorkerContext::new().with_kernel(kernel);

        for &size in sizes {
            let label = format!("{kernel:?}/batch{size}");
            let mut queries = Vec::with_capacity(size);
            let mut oracle: Vec<Estimate> = Vec::with_capacity(size);
            for i in 0..size {
                match i % 3 {
                    0 => {
                        let q = rand_rects(&mut rng, 1)[0];
                        queries.push(range_query(0, &q));
                        oracle.push(
                            router
                                .estimate_range(&fx.rq, &fx.stores[0], &mut ctx, &q)
                                .unwrap(),
                        );
                    }
                    1 => {
                        let anchor = fx.data[rng.gen_range(15..fx.data.len())];
                        let p = [anchor.range(0).lo(), anchor.range(1).lo()];
                        queries.push(stab_query(0, &p));
                        oracle.push(
                            router
                                .estimate_stab(&fx.rq, &fx.stores[0], &mut ctx, &p)
                                .unwrap(),
                        );
                    }
                    _ => {
                        queries.push(WireQuery::Join {
                            r_store: 1,
                            s_store: 2,
                        });
                        oracle.push(
                            router
                                .estimate_join(&fx.join, &fx.stores[1], &fx.stores[2], &mut ctx)
                                .unwrap(),
                        );
                    }
                }
            }
            let replies = client.query_batch(&queries).unwrap();
            assert_eq!(replies.len(), size, "{label}: reply arity");
            for (i, (want, got)) in oracle.iter().zip(replies.iter()).enumerate() {
                assert_wire_bit_identical(want, got, &format!("{label}/q{i}"));
            }
        }
        drop(client);
        server.shutdown();
    }
}

#[test]
fn networked_batches_bit_match_router_small() {
    let fx = fixture(901);
    kernel_batch_matrix(&fx, &[QueryKernel::Batched], &[1, 7]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn networked_batches_bit_match_router_matrix() {
    let fx = fixture(902);
    kernel_batch_matrix(&fx, &KERNELS, &BATCH_SIZES);
}

#[test]
fn zero_capacity_server_sheds_every_query() {
    let fx = fixture(903);
    let service = Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()));
    let pool = Arc::new(ContextPool::new(1));
    let config = ServeConfig {
        queue_capacity: 0,
        ..ServeConfig::default()
    };
    let server = serve(service, pool, &config, 0).unwrap();
    let mut client = SketchClient::connect(server.local_addr()).unwrap();
    let queries: Vec<WireQuery> = fx.data[..5].iter().map(|q| range_query(0, q)).collect();
    let replies = client.query_batch(&queries).unwrap();
    for (i, reply) in replies.iter().enumerate() {
        assert!(
            matches!(
                reply,
                WireReply::Error {
                    code: WireErrorCode::Overloaded,
                    ..
                }
            ),
            "query {i} was not shed: {reply:?}"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed, 5);
    assert_eq!(stats.served, 0);
}

#[test]
fn wire_injected_panic_recovers_single_worker() {
    // One worker, one pool slot: the panicking batch and every later batch
    // share the same context, so recovery (not just survival) is proven.
    let fx = fixture(904);
    let service = Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()));
    let pool = Arc::new(ContextPool::new(1));
    let config = ServeConfig {
        workers: 1,
        fault_injection: true,
        ..ServeConfig::default()
    };
    let server = serve(service, pool, &config, 0).unwrap();
    let mut client = SketchClient::connect(server.local_addr()).unwrap();

    // Warm the slot's caches first so the reset discards real state.
    let q = fx.data[20];
    let warm = client.query_batch(&[range_query(0, &q)]).unwrap();
    assert!(matches!(warm[0], WireReply::Estimate { .. }));

    let replies = client.query_batch(&[WireQuery::FaultPanic]).unwrap();
    assert!(
        matches!(
            replies[0],
            WireReply::Error {
                code: WireErrorCode::Internal,
                ..
            }
        ),
        "injected panic should answer Internal, got {:?}",
        replies[0]
    );

    // The recovered slot must serve bit-identical answers again.
    let router = QueryRouter::new();
    let mut ctx = WorkerContext::new();
    for round in 0..3 {
        let want = router
            .estimate_range(&fx.rq, &fx.stores[0], &mut ctx, &q)
            .unwrap();
        let got = client.query_batch(&[range_query(0, &q)]).unwrap();
        assert_wire_bit_identical(&want, &got[0], &format!("post-panic round {round}"));
    }
    let stats = server.shutdown();
    assert_eq!(stats.panics, 1);
}

#[test]
fn malformed_queries_answer_bad_request_without_killing_batchmates() {
    let fx = fixture(905);
    let service = Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()));
    let pool = Arc::new(ContextPool::new(1));
    let server = serve(service, pool, &ServeConfig::default(), 0).unwrap();
    let mut client = SketchClient::connect(server.local_addr()).unwrap();

    let good = fx.data[30];
    let queries = vec![
        range_query(0, &good),
        WireQuery::Range {
            store: 99, // unknown store index
            ranges: vec![(0, 10), (0, 10)],
        },
        WireQuery::Stab {
            store: 0,
            point: vec![1, 2, 3], // wrong dimensionality
        },
        WireQuery::Join {
            r_store: 1,
            s_store: 2, // service has no join estimator
        },
        WireQuery::FaultPanic, // fault injection disabled
        range_query(0, &good),
    ];
    let replies = client.query_batch(&queries).unwrap();
    let router = QueryRouter::new();
    let mut ctx = WorkerContext::new();
    let want = router
        .estimate_range(&fx.rq, &fx.stores[0], &mut ctx, &good)
        .unwrap();
    assert_wire_bit_identical(&want, &replies[0], "good before bad");
    assert_wire_bit_identical(&want, &replies[5], "good after bad");
    for (i, reply) in replies[1..5].iter().enumerate() {
        assert!(
            matches!(
                reply,
                WireReply::Error {
                    code: WireErrorCode::BadRequest,
                    ..
                }
            ),
            "bad query {} did not answer BadRequest: {reply:?}",
            i + 1
        );
    }
    server.shutdown();
}

fn assert_replies_bit_identical(want: &WireReply, got: &WireReply, label: &str) {
    match (want, got) {
        (
            WireReply::Estimate {
                value: va,
                row_means: ra,
            },
            WireReply::Estimate {
                value: vb,
                row_means: rb,
            },
        ) => {
            assert_eq!(va.to_bits(), vb.to_bits(), "{label}: value diverged");
            assert_eq!(ra.len(), rb.len(), "{label}: row count diverged");
            for (i, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: row mean {i} diverged");
            }
        }
        (want, got) => assert_eq!(want, got, "{label}: replies diverged"),
    }
}

#[test]
fn chunked_client_bit_matches_one_by_one() {
    let fx = fixture(908);
    let service = Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()));
    let pool = Arc::new(ContextPool::new(2));
    let config = ServeConfig::default();
    let server = serve(service, pool, &config, 0).unwrap();
    let mut client = SketchClient::connect(server.local_addr()).unwrap();

    let mut rng = StdRng::seed_from_u64(908);
    // 41 queries: more than two max_batch frames, with a short final chunk;
    // mixes ranges, stabs and one bad slot so errors chunk through too.
    let mut queries = Vec::new();
    for i in 0..41 {
        match i % 4 {
            3 => {
                let anchor = fx.data[rng.gen_range(15..fx.data.len())];
                queries.push(stab_query(0, &[anchor.range(0).lo(), anchor.range(1).lo()]));
            }
            2 if i == 22 => queries.push(WireQuery::Stab {
                store: 0,
                point: vec![1, 2, 3], // wrong dimensionality: BadRequest slot
            }),
            _ => queries.push(range_query(0, &rand_rects(&mut rng, 1)[0])),
        }
    }

    // An empty list performs no round-trip and answers nothing.
    assert!(client
        .query_batch_chunked(&[], config.max_batch)
        .unwrap()
        .is_empty());

    let chunked = client
        .query_batch_chunked(&queries, config.max_batch)
        .unwrap();
    assert_eq!(chunked.len(), queries.len(), "chunked reply arity");
    for (i, q) in queries.iter().enumerate() {
        let single = client.query_batch(std::slice::from_ref(q)).unwrap();
        assert_replies_bit_identical(&single[0], &chunked[i], &format!("chunked slot {i}"));
    }
    server.shutdown();
}

/// Many frames in flight on one connection, redeemed in *reverse*
/// submission order: whatever order the server completes them in, the
/// frame-id matching must hand every ticket its own replies, bit-identical
/// to the in-process router.
#[test]
fn pipelined_frames_complete_out_of_order_bit_identically() {
    let fx = fixture(909);
    let service =
        Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()).with_join(fx.join.clone()));
    let pool = Arc::new(ContextPool::new(2));
    let server = serve(service, pool, &ServeConfig::default(), 0).unwrap();
    let mut client = SketchClient::connect(server.local_addr()).unwrap();
    let router = QueryRouter::new();
    let mut ctx = WorkerContext::new();
    let mut rng = StdRng::seed_from_u64(909);

    // Frames of varying size and kind, all submitted before any collect.
    let mut frames: Vec<(serve::net::Ticket, Vec<Estimate>)> = Vec::new();
    for f in 0..9usize {
        let mut queries = Vec::new();
        let mut oracle = Vec::new();
        for i in 0..(f % 4) + 1 {
            match (f + i) % 3 {
                0 => {
                    let q = rand_rects(&mut rng, 1)[0];
                    queries.push(range_query(0, &q));
                    oracle.push(
                        router
                            .estimate_range(&fx.rq, &fx.stores[0], &mut ctx, &q)
                            .unwrap(),
                    );
                }
                1 => {
                    let anchor = fx.data[rng.gen_range(15..fx.data.len())];
                    let p = [anchor.range(0).lo(), anchor.range(1).lo()];
                    queries.push(stab_query(0, &p));
                    oracle.push(
                        router
                            .estimate_stab(&fx.rq, &fx.stores[0], &mut ctx, &p)
                            .unwrap(),
                    );
                }
                _ => {
                    queries.push(WireQuery::Join {
                        r_store: 1,
                        s_store: 2,
                    });
                    oracle.push(
                        router
                            .estimate_join(&fx.join, &fx.stores[1], &fx.stores[2], &mut ctx)
                            .unwrap(),
                    );
                }
            }
        }
        let ticket = client.submit(&queries).unwrap();
        frames.push((ticket, oracle));
    }
    assert_eq!(client.in_flight(), frames.len());

    for (f, (ticket, oracle)) in frames.iter().enumerate().rev() {
        let replies = client.collect(*ticket).unwrap();
        assert_eq!(replies.len(), oracle.len(), "frame {f} arity");
        for (i, (want, got)) in oracle.iter().zip(replies.iter()).enumerate() {
            assert_wire_bit_identical(want, got, &format!("pipelined frame {f} q{i}"));
        }
    }
    assert_eq!(client.in_flight(), 0);
    // A redeemed ticket is spent.
    assert!(matches!(
        client.collect(frames[0].0),
        Err(WireError::UnknownFrame(_))
    ));
    server.shutdown();
}

/// A hand-rolled server that answers in **reverse** arrival order proves
/// the client's id matching deterministically: the reply read off the
/// wire first belongs to the frame submitted last.
#[test]
fn reply_matching_handles_out_of_order_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let frame = read_frame(&mut stream).unwrap();
            assert_eq!(frame.opcode, Opcode::QueryBatch);
            let queries = decode_queries(&frame.payload).unwrap();
            // Tag each reply with its frame id so the test can prove the
            // client handed the right replies to the right ticket.
            let replies: Vec<WireReply> = queries
                .iter()
                .map(|_| WireReply::Estimate {
                    value: f64::from(frame.frame_id),
                    row_means: Vec::new(),
                })
                .collect();
            got.push((frame.frame_id, encode_replies(&replies)));
        }
        got.reverse();
        for (id, payload) in got {
            write_frame(&mut stream, Opcode::ReplyBatch, id, &payload).unwrap();
        }
    });

    let mut client = SketchClient::connect(addr).unwrap();
    let q = WireQuery::Stab {
        store: 0,
        point: vec![1, 2],
    };
    let first = client.submit(std::slice::from_ref(&q)).unwrap();
    let second = client.submit(std::slice::from_ref(&q)).unwrap();
    assert_ne!(first.frame_id(), second.frame_id());
    // Collect in submission order even though the wire carries the
    // replies reversed: `first`'s collect stashes `second`'s reply.
    let replies = client.collect(first).unwrap();
    assert_eq!(replies.len(), 1);
    assert!(
        matches!(&replies[0], WireReply::Estimate { value, .. } if *value == f64::from(first.frame_id()))
    );
    let replies = client.collect(second).unwrap();
    assert!(
        matches!(&replies[0], WireReply::Estimate { value, .. } if *value == f64::from(second.frame_id()))
    );
    fake.join().unwrap();
}

/// Batch-of-1 clients on separate connections, a coalescing window wide
/// enough to merge them: every reply must still be bit-identical to the
/// sequential oracle — coalescing may change *when* queries are
/// evaluated, never *what* they answer.
fn coalescing_case(fx: &Fixture, kernel: QueryKernel, clients: usize, rounds: usize) {
    let service = Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()));
    // One worker and one pool slot: every coalesced batch rides the same
    // context, so cross-connection merging is maximal and kernel pinning
    // is deterministic.
    let pool = Arc::new(ContextPool::new(1));
    pool.with(|ctx| ctx.query.set_kernel(kernel));
    let config = ServeConfig {
        workers: 1,
        max_batch: 16,
        coalesce_us: 2_000,
        ..ServeConfig::default()
    };
    let server = serve(service, pool, &config, 0).unwrap();
    let addr = server.local_addr();

    let per_client: Vec<Vec<WireQuery>> = (0..clients)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(910 + t as u64);
            (0..rounds)
                .map(|i| {
                    if i % 3 == 2 {
                        let anchor = fx.data[rng.gen_range(15..fx.data.len())];
                        stab_query(0, &[anchor.range(0).lo(), anchor.range(1).lo()])
                    } else {
                        range_query(0, &rand_rects(&mut rng, 1)[0])
                    }
                })
                .collect()
        })
        .collect();

    let answers: Vec<Vec<WireReply>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .iter()
            .map(|queries| {
                scope.spawn(move || {
                    let mut client = SketchClient::connect(addr).expect("coalesce connect");
                    queries
                        .iter()
                        .map(|q| {
                            let replies =
                                client.query_batch(std::slice::from_ref(q)).expect("batch");
                            assert_eq!(replies.len(), 1);
                            replies.into_iter().next().unwrap()
                        })
                        .collect::<Vec<WireReply>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = server.shutdown();
    assert_eq!(stats.served, (clients * rounds) as u64);

    let mut ctx = WorkerContext::new().with_kernel(kernel);
    let router = QueryRouter::new();
    for (t, (queries, replies)) in per_client.iter().zip(&answers).enumerate() {
        for (i, (query, got)) in queries.iter().zip(replies).enumerate() {
            let want = match query {
                WireQuery::Range { ranges, .. } => {
                    let rect = HyperRect::new(std::array::from_fn(|d| {
                        Interval::new(ranges[d].0, ranges[d].1)
                    }));
                    router
                        .estimate_range(&fx.rq, &fx.stores[0], &mut ctx, &rect)
                        .unwrap()
                }
                WireQuery::Stab { point, .. } => router
                    .estimate_stab(&fx.rq, &fx.stores[0], &mut ctx, &[point[0], point[1]])
                    .unwrap(),
                other => panic!("unexpected query {other:?}"),
            };
            assert_wire_bit_identical(&want, got, &format!("{kernel:?} client {t} round {i}"));
        }
    }
}

#[test]
fn cross_connection_coalescing_is_bit_identical_small() {
    let fx = fixture(911);
    coalescing_case(&fx, QueryKernel::Batched, 4, 5);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn cross_connection_coalescing_is_bit_identical_matrix() {
    let fx = fixture(912);
    for kernel in KERNELS {
        coalescing_case(&fx, kernel, 8, 12);
    }
}

/// A server that accepts and reads but never replies must surface as
/// [`WireError::Timeout`], not a forever-blocked client.
#[test]
fn client_times_out_instead_of_blocking_when_server_stalls() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Read the request, answer nothing, hold the socket open until
        // the client has long given up.
        let _ = read_frame(&mut stream);
        std::thread::sleep(Duration::from_millis(800));
    });
    let mut client = SketchClient::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(120)),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let q = WireQuery::Stab {
        store: 0,
        point: vec![3, 4],
    };
    assert!(matches!(
        client.query_batch(std::slice::from_ref(&q)),
        Err(WireError::Timeout)
    ));
    stall.join().unwrap();
}

/// The kill-the-server-mid-batch case: the peer dies after a *partial*
/// reply frame. The client must report [`WireError::Disconnected`] — not
/// hang, not misparse — and [`SketchClient::reconnect`] must yield a
/// working connection.
#[test]
fn server_death_mid_frame_surfaces_disconnected_and_reconnect_recovers() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        // First connection: die mid-frame, after the header but before
        // the payload completes.
        let (mut stream, _) = listener.accept().unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let queries = decode_queries(&frame.payload).unwrap();
        let replies: Vec<WireReply> = queries
            .iter()
            .map(|_| WireReply::Estimate {
                value: 7.5,
                row_means: Vec::new(),
            })
            .collect();
        let bytes = frame_bytes(
            Opcode::ReplyBatch,
            frame.frame_id,
            &encode_replies(&replies),
        );
        stream.write_all(&bytes[..bytes.len() - 3]).unwrap();
        drop(stream); // mid-frame death

        // Second connection (the reconnect): answer properly.
        let (mut stream, _) = listener.accept().unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let queries = decode_queries(&frame.payload).unwrap();
        let replies: Vec<WireReply> = queries
            .iter()
            .map(|_| WireReply::Estimate {
                value: 7.5,
                row_means: Vec::new(),
            })
            .collect();
        write_frame(
            &mut stream,
            Opcode::ReplyBatch,
            frame.frame_id,
            &encode_replies(&replies),
        )
        .unwrap();
    });

    let mut client = SketchClient::connect(addr).unwrap();
    let q = WireQuery::Stab {
        store: 0,
        point: vec![5, 6],
    };
    assert!(matches!(
        client.query_batch(std::slice::from_ref(&q)),
        Err(WireError::Disconnected)
    ));
    client.reconnect().unwrap();
    assert_eq!(
        client.in_flight(),
        0,
        "reconnect invalidates in-flight state"
    );
    let replies = client.query_batch(std::slice::from_ref(&q)).unwrap();
    assert!(matches!(&replies[0], WireReply::Estimate { value, .. } if *value == 7.5));
    fake.join().unwrap();
}

#[test]
fn garbage_frames_close_only_the_offending_connection() {
    let fx = fixture(906);
    let service = Arc::new(SketchService::new(fx.rq.clone(), fx.stores.clone()));
    let pool = Arc::new(ContextPool::new(1));
    let server = serve(service, pool, &ServeConfig::default(), 0).unwrap();

    // A peer that writes garbage gets dropped…
    let mut garbage = std::net::TcpStream::connect(server.local_addr()).unwrap();
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    garbage.flush().unwrap();
    let mut probe = SketchClient::connect(server.local_addr()).unwrap();
    // …while a well-behaved connection keeps serving.
    probe.ping().unwrap();
    let q = fx.data[40];
    let replies = probe.query_batch(&[range_query(0, &q)]).unwrap();
    assert!(matches!(replies[0], WireReply::Estimate { .. }));
    server.shutdown();
}

//! A minimal blocking client: one connection, synchronous batch
//! round-trips. Enough for the differential suites, the soak binary and
//! the latency probe; a production pipeline would multiplex, but the wire
//! format already permits that (frames are self-delimiting).

use super::codec::{
    decode_replies, encode_queries, read_frame, write_frame, Opcode, WireError, WireQuery,
    WireReply,
};
use geometry::{HyperRect, Point};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a sketch server.
#[derive(Debug)]
pub struct SketchClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl SketchClient {
    /// Connects (with `TCP_NODELAY`, since frames are small and
    /// latency-sensitive).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one query batch and blocks for its replies, which arrive in
    /// request order, exactly one per query ([`WireError::ReplyArity`]
    /// otherwise — a server that drops entries is broken, not slow).
    pub fn query_batch(&mut self, queries: &[WireQuery]) -> Result<Vec<WireReply>, WireError> {
        write_frame(
            &mut self.writer,
            Opcode::QueryBatch,
            &encode_queries(queries),
        )?;
        let (opcode, payload) = read_frame(&mut self.reader)?;
        if opcode != Opcode::ReplyBatch {
            return Err(WireError::BadOpcode(opcode as u8));
        }
        let replies = decode_replies(&payload)?;
        if replies.len() != queries.len() {
            return Err(WireError::ReplyArity {
                sent: queries.len(),
                got: replies.len(),
            });
        }
        Ok(replies)
    }

    /// Like [`SketchClient::query_batch`], but splits an oversized query
    /// list into frames of at most `max_batch` queries each instead of
    /// failing (or letting the codec's batch-size assertion abort) the
    /// whole request. Use the server's [`ServeConfig::max_batch`] as the
    /// chunk size so each frame fits one worker pass — the shape the
    /// batched kernel answers in a single sweep. Replies concatenate in
    /// request order, exactly one per query; an empty query list performs
    /// no round-trip at all.
    ///
    /// [`ServeConfig::max_batch`]: crate::net::ServeConfig::max_batch
    pub fn query_batch_chunked(
        &mut self,
        queries: &[WireQuery],
        max_batch: usize,
    ) -> Result<Vec<WireReply>, WireError> {
        let mut replies = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(max_batch.max(1)) {
            replies.extend(self.query_batch(chunk)?);
        }
        Ok(replies)
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.writer, Opcode::Ping, &[])?;
        let (opcode, payload) = read_frame(&mut self.reader)?;
        if opcode != Opcode::Pong || !payload.is_empty() {
            return Err(WireError::BadOpcode(opcode as u8));
        }
        Ok(())
    }
}

/// The wire form of a range query against store `store`.
pub fn range_query<const D: usize>(store: u32, q: &HyperRect<D>) -> WireQuery {
    WireQuery::Range {
        store,
        ranges: (0..D).map(|d| (q.range(d).lo(), q.range(d).hi())).collect(),
    }
}

/// The wire form of a stabbing query at `p` against store `store`.
pub fn stab_query<const D: usize>(store: u32, p: &Point<D>) -> WireQuery {
    WireQuery::Stab {
        store,
        point: p.to_vec(),
    }
}

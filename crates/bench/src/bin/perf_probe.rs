//! Build/estimate/serve throughput probe plus quick maxLevel sanity sweeps.
//!
//! The default probe times the sketch build under the whole maintenance
//! kernel matrix (scalar oracle, 64-lane batched, 256-lane wide, 512-lane
//! wide; see `sketch::BuildKernel`) and appends one JSON record per run to
//! `results/perf_probe.json` — the committed `BENCH_*.json` anchors are
//! copies of such records. Every per-kernel record carries the kernel
//! variant, its lane width and its instance-block size, and every record
//! carries the runtime dispatch decision (detected CPU class, any
//! `SKETCH_KERNEL` pin, the auto-selected width cap), so anchors stay
//! self-describing. `--probe estimate` times the *estimation* path the same
//! way under all query kernels (`sketch::QueryKernel`), join and range;
//! `--probe wide` is the quick blocked-width head-to-head sweeping all
//! three bit-sliced widths (64/256/512, build and estimate); `--probe
//! serve` times the serving layer — router QPS vs shard count (1/2/4)
//! through `spatial-serve`'s sharded store, against the direct
//! single-sketch baseline; `--probe net` sweeps the TCP front-end
//! end-to-end — connection counts 1/8/64 at batch-of-1 frames × the
//! cross-connection coalescing window off/on (200 µs), plus the legacy
//! 2-client × batch-8 continuity point, recording p50/p99/p999 round-trip
//! latency, wire QPS and realized sweeps per configuration, with epoch
//! churn running throughout (server knobs come from the probe, not the
//! `SKETCH_NET_REACTORS` / `SKETCH_NET_COALESCE_US` env vars, except the
//! reactor count which honors the env default); `--probe batchq`
//! measures the multi-query batch kernel — amortized ns/query of
//! `estimate_batch_with` at batch sizes 1/8/64 over a serving-shaped hot
//! set, with the plan-cache hit/miss/eviction counters reported next to
//! the dispatch decision; `--probe rebalance` measures the elastic
//! topology path — wall cost of an online split / boundary move / merge on
//! a journaled store, the ingest cutover pause each one causes (worst
//! blocked `insert_slice` from a concurrent writer), and warm routed QPS
//! before, during and after a split/merge storm, every phase asserted
//! bit-identical to an unsharded oracle.
//!
//! The probe harnesses themselves live in `spatial_bench::probes`, shared
//! with the CI `perf_check` regression guard.
//!
//! Usage: cargo run --release -p spatial-bench --bin perf_probe
//!        [-- --gis | --range | --quick | --probe <estimate|wide|serve|net|batchq|rebalance>]
//!
//! `--quick` probes only the smallest instance count (fast iteration while
//! touching the hot path).

use rand::SeedableRng;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, BoostShape, BuildKernel, QueryKernel};
use spatial_bench::cli::Args;
use spatial_bench::probes::{
    batchq_probe, build_probe, estimate_probe, net_probe, rebalance_probe, serve_probe,
};
use spatial_bench::report::rel_error;
use spatial_bench::runner::{default_threads, shape_for_words};

fn main() {
    let args = Args::parse(&["gis", "range", "quick"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let threads = default_threads();

    match args.get("probe") {
        Some("estimate") => {
            estimate_probe(
                threads,
                args.has("quick"),
                &[
                    QueryKernel::Scalar,
                    QueryKernel::Batched,
                    QueryKernel::Wide,
                    QueryKernel::Wide512,
                ],
                "estimate",
            );
            return;
        }
        Some("wide") => {
            // Head-to-head of the three blocked widths, build + estimate.
            build_probe(
                threads,
                args.has("quick"),
                &[
                    BuildKernel::Batched,
                    BuildKernel::Wide,
                    BuildKernel::Wide512,
                ],
                "wide-build",
                false,
            );
            estimate_probe(
                threads,
                args.has("quick"),
                &[
                    QueryKernel::Batched,
                    QueryKernel::Wide,
                    QueryKernel::Wide512,
                ],
                "wide-estimate",
            );
            return;
        }
        Some("serve") => {
            serve_probe(threads, args.has("quick"));
            return;
        }
        Some("net") => {
            net_probe(args.has("quick"));
            return;
        }
        Some("batchq") => {
            batchq_probe(threads, args.has("quick"));
            return;
        }
        Some("rebalance") => {
            rebalance_probe(threads, args.has("quick"));
            return;
        }
        Some(other) => {
            eprintln!(
                "unknown --probe `{other}` (supported: estimate, wide, serve, net, batchq, rebalance)"
            );
            std::process::exit(2);
        }
        None => {}
    }

    if args.has("range") {
        use rand::Rng as _;
        use sketch::{RangeQuery, RangeStrategy};
        let bits = 14u32;
        let data: Vec<geometry::HyperRect<2>> =
            datagen::SyntheticSpec::paper(30_000, bits, 0.0, 81).generate();
        let mut qrng = rand::rngs::StdRng::seed_from_u64(83);
        let n = 1u64 << bits;
        let queries: Vec<geometry::HyperRect<2>> = (0..20)
            .map(|i| {
                let side = ((n as f64) * (0.05 + 0.01 * i as f64)) as u64;
                let x = qrng.gen_range(0..n - side - 1);
                let y = qrng.gen_range(0..n - side - 1);
                geometry::HyperRect::new([
                    geometry::Interval::new(x, x + side),
                    geometry::Interval::new(y, y + side),
                ])
            })
            .collect();
        for ml in [4u32, 5, 6, 7, 8, 9, 11, 13] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(90);
            let config = SketchConfig {
                kind: fourwise::XiKind::Bch,
                shape: BoostShape::new(240, 5),
                max_level: Some(ml),
            };
            let rq = RangeQuery::<2>::new(&mut rng, config, [bits, bits], RangeStrategy::Transform);
            let mut sk = rq.new_sketch();
            par_insert_batch(&mut sk, &data, threads).unwrap();
            let mut errs = 0.0;
            for q in &queries {
                let truth = exact::naive::range_count(&data, q) as f64;
                errs += rel_error(rq.estimate(&sk, q).unwrap().value, truth);
            }
            println!(
                "  range maxLevel {ml}: avg rel err {:.4}",
                errs / queries.len() as f64
            );
        }
        return;
    }

    if args.has("gis") {
        // maxLevel sweep on the simulated GIS join.
        let r = datagen::landc(1);
        let s = datagen::lando(1);
        let bits = datagen::GIS_DOMAIN_BITS;
        let truth = exact::rect_join_count(&r, &s) as f64;
        let shape: BoostShape = shape_for_words(2, 9025.0);
        println!("landc-lando truth {truth}, shape {}x{}", shape.k1, shape.k2);
        for ml in 4..=12u32 {
            let mut errs = Vec::new();
            for t in 0..3u64 {
                let mut rng = rand::rngs::StdRng::seed_from_u64(50 + t);
                let config = SketchConfig {
                    kind: fourwise::XiKind::Bch,
                    shape,
                    max_level: Some(ml),
                };
                let join = SpatialJoin::<2>::new(
                    &mut rng,
                    config,
                    [bits, bits],
                    EndpointStrategy::Transform,
                );
                let mut sk_r = join.new_sketch_r();
                let mut sk_s = join.new_sketch_s();
                par_insert_batch(&mut sk_r, &r, threads).unwrap();
                par_insert_batch(&mut sk_s, &s, threads).unwrap();
                errs.push(rel_error(join.estimate(&sk_r, &sk_s).unwrap().value, truth));
            }
            let avg = errs.iter().sum::<f64>() / errs.len() as f64;
            println!("  maxLevel {ml}: avg rel err {avg:.4} ({errs:?})");
        }
        return;
    }

    // Default probe: build-throughput sweep across the whole kernel matrix
    // plus one exact-join timing. Each run *appends* a record to
    // results/perf_probe.json (the committed BENCH_*.json anchors are
    // copies of such records), so successive runs stay diffable.
    build_probe(
        threads,
        args.has("quick"),
        &[
            BuildKernel::Scalar,
            BuildKernel::Batched,
            BuildKernel::Wide,
            BuildKernel::Wide512,
        ],
        "build",
        true,
    );
}

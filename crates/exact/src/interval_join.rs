//! Exact 1-dimensional interval join counting in `O((N + M) log M)`.
//!
//! For non-degenerate intervals, the paper's overlap (Figure 3 cases 3-6) is
//! `max(lo) < min(hi)`, so the number of partners of `r` in `S` is
//!
//! ```text
//! #{s : lo_s < hi_r}  -  #{s : hi_s <= lo_r}
//! ```
//!
//! (the second set is a subset of the first for non-degenerate intervals),
//! which two sorted endpoint arrays answer with binary searches.

use geometry::Interval;

/// Sorted endpoint index over one interval set, supporting overlap counting.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    los: Vec<u64>,
    his: Vec<u64>,
    degenerate_dropped: usize,
}

impl IntervalIndex {
    /// Builds the index, dropping degenerate intervals (they never overlap
    /// anything under Definition 1).
    pub fn new(intervals: &[Interval]) -> Self {
        let mut los = Vec::with_capacity(intervals.len());
        let mut his = Vec::with_capacity(intervals.len());
        let mut dropped = 0;
        for iv in intervals {
            if iv.is_degenerate() {
                dropped += 1;
                continue;
            }
            los.push(iv.lo());
            his.push(iv.hi());
        }
        los.sort_unstable();
        his.sort_unstable();
        Self {
            los,
            his,
            degenerate_dropped: dropped,
        }
    }

    /// Number of indexed (non-degenerate) intervals.
    pub fn len(&self) -> usize {
        self.los.len()
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.los.is_empty()
    }

    /// How many degenerate inputs were dropped at construction.
    pub fn degenerate_dropped(&self) -> usize {
        self.degenerate_dropped
    }

    /// Number of indexed intervals overlapping `q` (Definition 1 semantics).
    pub fn count_overlapping(&self, q: &Interval) -> u64 {
        if q.is_degenerate() {
            return 0;
        }
        let lo_lt = partition_point(&self.los, |&v| v < q.hi()) as u64;
        let hi_le = partition_point(&self.his, |&v| v <= q.lo()) as u64;
        lo_lt - hi_le
    }

    /// Number of indexed intervals with non-empty intersection with `q`
    /// (`overlap+`, Definition 4). Note degenerate *inputs* were dropped at
    /// construction, so this undercounts `overlap+` if the build input had
    /// points; use it only on point-free sets.
    pub fn count_overlapping_plus(&self, q: &Interval) -> u64 {
        let lo_le = partition_point(&self.los, |&v| v <= q.hi()) as u64;
        let hi_lt = partition_point(&self.his, |&v| v < q.lo()) as u64;
        lo_le - hi_lt
    }
}

fn partition_point(sorted: &[u64], pred: impl Fn(&u64) -> bool) -> usize {
    sorted.partition_point(pred)
}

/// Exact interval join cardinality `|R ⋈_o S|`.
pub fn interval_join_count(r: &[Interval], s: &[Interval]) -> u64 {
    let idx = IntervalIndex::new(s);
    r.iter().map(|iv| idx.count_overlapping(iv)).sum()
}

/// Exact extended interval join cardinality `|R ⋈+_o S|` (touching counts;
/// degenerate intervals participate).
pub fn interval_join_plus_count(r: &[Interval], s: &[Interval]) -> u64 {
    // overlap+ admits degenerate intervals, so index manually.
    let mut los: Vec<u64> = s.iter().map(Interval::lo).collect();
    let mut his: Vec<u64> = s.iter().map(Interval::hi).collect();
    los.sort_unstable();
    his.sort_unstable();
    let mut count = 0u64;
    for q in r {
        let lo_le = los.partition_point(|&v| v <= q.hi()) as u64;
        let hi_lt = his.partition_point(|&v| v < q.lo()) as u64;
        count += lo_le - hi_lt;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use geometry::HyperRect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn as_rects(ivs: &[Interval]) -> Vec<HyperRect<1>> {
        ivs.iter().map(|&iv| iv.into()).collect()
    }

    #[test]
    fn matches_naive_small() {
        let r = vec![
            Interval::new(0, 10),
            Interval::new(5, 8),
            Interval::new(20, 30),
            Interval::point(7),
        ];
        let s = vec![
            Interval::new(8, 25),
            Interval::new(10, 20),
            Interval::new(0, 100),
            Interval::point(9),
        ];
        assert_eq!(
            interval_join_count(&r, &s),
            naive::join_count(&as_rects(&r), &as_rects(&s))
        );
        assert_eq!(
            interval_join_plus_count(&r, &s),
            naive::join_plus_count(&as_rects(&r), &as_rects(&s))
        );
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(interval_join_count(&[], &[Interval::new(0, 5)]), 0);
        assert_eq!(interval_join_count(&[Interval::new(0, 5)], &[]), 0);
        let idx = IntervalIndex::new(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.count_overlapping(&Interval::new(0, 5)), 0);
    }

    #[test]
    fn degenerate_handling() {
        let points = vec![Interval::point(5), Interval::point(6)];
        let idx = IntervalIndex::new(&points);
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.degenerate_dropped(), 2);
        // Points never join under strict overlap...
        assert_eq!(interval_join_count(&points, &[Interval::new(0, 10)]), 0);
        // ... but do under overlap+.
        assert_eq!(
            interval_join_plus_count(&points, &[Interval::new(0, 10)]),
            2
        );
        assert_eq!(
            interval_join_plus_count(&points, &[Interval::new(6, 10)]),
            1
        );
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..50 {
            let gen = |rng: &mut StdRng| -> Vec<Interval> {
                (0..rng.gen_range(0..60))
                    .map(|_| {
                        let a = rng.gen_range(0u64..200);
                        let b = rng.gen_range(0u64..200);
                        Interval::new(a.min(b), a.max(b))
                    })
                    .collect()
            };
            let r = gen(&mut rng);
            let s = gen(&mut rng);
            assert_eq!(
                interval_join_count(&r, &s),
                naive::join_count(&as_rects(&r), &as_rects(&s))
            );
            assert_eq!(
                interval_join_plus_count(&r, &s),
                naive::join_plus_count(&as_rects(&r), &as_rects(&s))
            );
        }
    }

    // Seeded stand-in for the original proptest property (the offline
    // build has no proptest): many random interval sets and queries,
    // including the empty set and degenerate/point inputs.
    #[test]
    fn count_overlapping_matches_scan() {
        let mut rng = StdRng::seed_from_u64(987);
        for case in 0..256 {
            let n = rng.gen_range(0usize..40);
            let ivs: Vec<Interval> = (0..n)
                .map(|_| {
                    let a = rng.gen_range(0u64..100);
                    let b = rng.gen_range(0u64..100);
                    Interval::new(a.min(b), a.max(b))
                })
                .collect();
            let qa = rng.gen_range(0u64..100);
            let qb = rng.gen_range(0u64..100);
            let q = Interval::new(qa.min(qb), qa.max(qb));
            let idx = IntervalIndex::new(&ivs);
            let want = ivs.iter().filter(|iv| iv.overlaps(&q)).count() as u64;
            assert_eq!(idx.count_overlapping(&q), want, "case {case}");
        }
    }
}

//! Serving-layer soak test: bounded, deterministic mixed ingest + query
//! rounds asserting that every router answer **bit-matches** an unsharded
//! oracle — the binary the CI `serve-smoke` lane runs under each blocked
//! kernel (`SKETCH_KERNEL=batched|wide|wide512`).
//!
//! Usage: cargo run --release -p spatial-serve --bin serve_soak --
//!          [--iters N] [--shards N] [--seed N] [--readers N] [--rebalance N]
//!
//! Three phases:
//!
//! 1. **Differential soak** — each round ingests a batch (inserts plus
//!    deletes of earlier objects) into a sharded range store, two sharded
//!    join stores and their unsharded oracles, then asserts range, stab and
//!    join router totals are bit-identical to the oracles' estimates.
//! 2. **Concurrency smoke** — reader threads hammer the context pool while
//!    the main thread keeps swapping epochs in; estimates must stay finite
//!    and, once quiescent, converge to the oracle bitwise from every pooled
//!    context.
//! 3. **Rebalance soak** (`--rebalance N` rounds, default 6; 0 disables) —
//!    each round ingests a fresh batch, then applies an online topology op
//!    chosen from the store's own load report (split the hottest shard /
//!    move a boundary / merge the coldest neighbours, log-replay rebuilds),
//!    then re-asserts bit-identity against the oracle; a final burst runs
//!    the full op storm *under* concurrent readers, whose every answer must
//!    bit-match the oracle — a query may never observe a half-rebalanced
//!    topology.
//!
//! Everything is seeded; a nonzero exit (assert) means a real router bug.

use geometry::{HyperRect, Interval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{ContextPool, QueryRouter, ShardedStore, WorkerContext};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{Estimate, LogRetention, QueryContext, RangeQuery, RangeStrategy};

const BITS: u32 = 8;

struct Args {
    iters: usize,
    shards: usize,
    seed: u64,
    readers: usize,
    rebalance: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 30,
        shards: 3,
        seed: 7,
        readers: 2,
        rebalance: 6,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .unwrap_or_else(|| die(&format!("flag {flag} needs a value")));
        let parsed: u64 = value
            .parse()
            .unwrap_or_else(|_| die(&format!("cannot parse `{value}` for {flag}")));
        match flag.as_str() {
            "--iters" => args.iters = parsed as usize,
            "--shards" => args.shards = (parsed as usize).max(1),
            "--seed" => args.seed = parsed,
            "--readers" => args.readers = (parsed as usize).max(1),
            "--rebalance" => args.rebalance = parsed as usize,
            other => die(&format!(
                "unknown flag `{other}` (supported: --iters --shards --seed --readers --rebalance)"
            )),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("serve_soak: {msg}");
    std::process::exit(2);
}

fn rand_rects(rng: &mut StdRng, n: usize) -> Vec<HyperRect<2>> {
    let max = (1u64 << BITS) - 1;
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..max - 17);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

fn assert_bit_identical(want: &Estimate, got: &Estimate, label: &str) {
    assert_eq!(
        want.value.to_bits(),
        got.value.to_bits(),
        "{label}: router total diverged from the unsharded oracle ({} vs {})",
        got.value,
        want.value
    );
    assert_eq!(want.row_means, got.row_means, "{label}: row means diverged");
}

fn main() {
    let args = parse_args();
    let report = sketch::dispatch_report();
    println!(
        "serve-smoke dispatch: cpu={} max_lane_width={} override={}",
        report.cpu.name(),
        report.max_lane_width,
        report.env_override.unwrap_or("none"),
    );
    let mut rng = StdRng::seed_from_u64(args.seed);

    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [BITS, BITS],
        RangeStrategy::Transform,
    );
    let join = SpatialJoin::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [BITS, BITS],
        EndpointStrategy::Transform,
    );
    // A full update log so the rebalance phase can log-replay shard
    // rebuilds; memory stays bounded by the soak's own batch count.
    let range_store =
        ShardedStore::like(&rq.new_sketch(), args.shards).with_log(LogRetention::Full);
    let r_store = ShardedStore::like(&join.new_sketch_r(), args.shards);
    let s_store = ShardedStore::like(&join.new_sketch_s(), args.shards);
    let mut range_oracle = rq.new_sketch();
    let mut r_oracle = join.new_sketch_r();
    let mut s_oracle = join.new_sketch_s();

    let router = QueryRouter::new();
    let mut ctx = WorkerContext::new();
    let mut octx = QueryContext::new();
    let mut live: Vec<HyperRect<2>> = Vec::new();
    let mut checks = 0u64;

    // Phase 1: differential soak.
    for round in 0..args.iters {
        let batch = rand_rects(&mut rng, 40);
        range_store.insert_slice(&batch).unwrap();
        range_oracle.insert_slice(&batch).unwrap();
        r_store.insert_slice(&batch).unwrap();
        r_oracle.insert_slice(&batch).unwrap();
        let other = rand_rects(&mut rng, 40);
        s_store.insert_slice(&other).unwrap();
        s_oracle.insert_slice(&other).unwrap();
        live.extend_from_slice(&batch);
        if live.len() > 100 {
            // Delete a prefix of earlier inserts (exercises negative deltas
            // across epochs; sketches are linear, deletes are exact).
            let dels: Vec<HyperRect<2>> = live.drain(..25).collect();
            range_store.delete_slice(&dels).unwrap();
            range_oracle.delete_slice(&dels).unwrap();
            r_store.delete_slice(&dels).unwrap();
            r_oracle.delete_slice(&dels).unwrap();
        }

        for qi in 0..4 {
            let label = format!("round {round} query {qi}");
            let q = rand_rects(&mut rng, 1)[0];
            let got = router
                .estimate_range(&rq, &range_store, &mut ctx, &q)
                .unwrap();
            let want = rq.estimate_with(&mut octx, &range_oracle, &q).unwrap();
            assert_bit_identical(&want, &got, &label);
            checks += 1;
        }
        for pi in 0..2 {
            let label = format!("round {round} stab {pi}");
            let anchor = live[rng.gen_range(0..live.len())];
            let p = [anchor.range(0).lo(), anchor.range(1).lo()];
            let got = router
                .estimate_stab(&rq, &range_store, &mut ctx, &p)
                .unwrap();
            let want = rq.estimate_stab_with(&mut octx, &range_oracle, &p).unwrap();
            assert_bit_identical(&want, &got, &label);
            checks += 1;
        }
        let got = router
            .estimate_join(&join, &r_store, &s_store, &mut ctx)
            .unwrap();
        let want = join.estimate_with(&mut octx, &r_oracle, &s_oracle).unwrap();
        assert_bit_identical(&want, &got, &format!("round {round} join"));
        checks += 1;
    }

    // Phase 2: concurrency smoke — readers race the epoch swaps.
    let pool = ContextPool::new(args.readers);
    let queries = rand_rects(&mut rng, 8);
    let churn = rand_rects(&mut rng, 60);
    std::thread::scope(|scope| {
        for t in 0..args.readers {
            let (pool, router, rq, store, queries) = (&pool, &router, &rq, &range_store, &queries);
            scope.spawn(move || {
                for i in 0..60usize {
                    let q = &queries[(t + i) % queries.len()];
                    let est = pool
                        .with(|c| router.estimate_range(rq, store, c, q))
                        .unwrap();
                    assert!(
                        est.value.is_finite(),
                        "reader {t} got a non-finite estimate"
                    );
                }
            });
        }
        for chunk in churn.chunks(12) {
            range_store.insert_slice(chunk).unwrap();
        }
    });
    range_oracle.insert_slice(&churn).unwrap();
    for q in &queries {
        let want = rq.estimate_with(&mut octx, &range_oracle, q).unwrap();
        let got = pool
            .with(|c| router.estimate_range(&rq, &range_store, c, q))
            .unwrap();
        assert_bit_identical(&want, &got, "post-churn quiescence");
        checks += 1;
    }

    // Phase 3: rebalance soak — online topology churn with bit-match
    // assertions after every op, then an op storm under concurrent readers.
    let mut topo_ops = 0u64;
    for round in 0..args.rebalance {
        let batch = rand_rects(&mut rng, 20);
        range_store.insert_slice(&batch).unwrap();
        range_oracle.insert_slice(&batch).unwrap();
        live.extend_from_slice(&batch);

        // Steer by the store's own load report, like a rebalancer would:
        // grow while below 2× the starting width, then shrink back.
        let report = range_store.load_report();
        let grow = range_store.shard_count() < (args.shards * 2).max(2);
        if grow {
            if round % 3 == 2 {
                // An occasional boundary move at a deliberately odd offset.
                let spans: Vec<_> = report.shards().iter().map(|s| s.span).collect();
                let b = 1 + round % (spans.len() - 1);
                let at = spans[b - 1].lo() + (spans[b].hi() - spans[b - 1].lo()) / 2 + 1;
                if range_store.move_shard_boundary(b, at).is_ok() {
                    topo_ops += 1;
                }
            } else if let Some((shard, at)) = report.split_candidate() {
                range_store.split_shard(shard, at).unwrap();
                topo_ops += 1;
            }
        } else if let Some(left) = report.merge_candidate() {
            range_store.merge_shards(left).unwrap();
            topo_ops += 1;
        }

        for qi in 0..3 {
            let label = format!("rebalance round {round} query {qi}");
            let q = rand_rects(&mut rng, 1)[0];
            let got = router
                .estimate_range(&rq, &range_store, &mut ctx, &q)
                .unwrap();
            let want = rq.estimate_with(&mut octx, &range_oracle, &q).unwrap();
            assert_bit_identical(&want, &got, &label);
            checks += 1;
        }
        let anchor = live[rng.gen_range(0..live.len())];
        let p = [anchor.range(0).lo(), anchor.range(1).lo()];
        let got = router
            .estimate_stab(&rq, &range_store, &mut ctx, &p)
            .unwrap();
        let want = rq.estimate_stab_with(&mut octx, &range_oracle, &p).unwrap();
        assert_bit_identical(&want, &got, &format!("rebalance round {round} stab"));
        checks += 1;
    }
    if args.rebalance > 0 {
        // Data held constant: every concurrent answer must bit-match the
        // one oracle no matter which epoch the reader catches mid-storm.
        let queries = rand_rects(&mut rng, 6);
        let wants: Vec<Estimate> = queries
            .iter()
            .map(|q| rq.estimate_with(&mut octx, &range_oracle, q).unwrap())
            .collect();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let racing_checks = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..args.readers {
                let (pool, router, rq, store) = (&pool, &router, &rq, &range_store);
                let (queries, wants, stop, racing) = (&queries, &wants, &stop, &racing_checks);
                scope.spawn(move || {
                    let mut i = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let qi = (t + i) % queries.len();
                        let got = pool
                            .with(|c| router.estimate_range(rq, store, c, &queries[qi]))
                            .unwrap();
                        assert_bit_identical(
                            &wants[qi],
                            &got,
                            &format!("mid-rebalance reader {t} pass {i}"),
                        );
                        racing.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            for _ in 0..args.rebalance {
                let report = range_store.load_report();
                if range_store.shard_count() > 2 {
                    if let Some(left) = report.merge_candidate() {
                        range_store.merge_shards(left).unwrap();
                        topo_ops += 1;
                    }
                } else if let Some((shard, at)) = report.split_candidate() {
                    range_store.split_shard(shard, at).unwrap();
                    topo_ops += 1;
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        checks += racing_checks.load(std::sync::atomic::Ordering::Relaxed);
    }

    let epoch = range_store.load();
    println!(
        "serve-smoke OK: {} rounds, {} bit-match checks, {} topology ops, {} shards, final epoch {}, {} net objects",
        args.iters,
        checks,
        topo_ops,
        range_store.shard_count(),
        epoch.epoch(),
        epoch.total_len()
    );
}

//! Ablation A3: range-query estimation (Section 6.4).
//!
//! Compares the paper's *optimized* range estimator (two atomic sketches per
//! dimension pair, query evaluated deterministically — Lemma 9) against
//! treating the query as a singleton-relation join, over a spread of query
//! selectivities.
//!
//! Usage: cargo run --release -p spatial-bench --bin range_query_accuracy
//!   [-- --size 30000] [--queries 40] [--trials 2] [--threads N]

use datagen::SyntheticSpec;
use geometry::{HyperRect, Interval};
use rand::Rng as _;
use rand::SeedableRng;
use serde::Serialize;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, BoostShape, RangeQuery, RangeStrategy};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::{default_threads, mean_sketch_extent};

#[derive(Serialize)]
struct Record {
    size: usize,
    queries: usize,
    instances: usize,
    avg_err_optimized: f64,
    avg_err_join_form: f64,
    avg_selectivity: f64,
}

fn main() {
    let args = Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let size: usize = args.get_or("size", 30_000).expect("--size");
    let queries: usize = args.get_or("queries", 40).expect("--queries");
    let trials: u32 = args.get_or("trials", 2).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");

    let bits = 14u32;
    let data: Vec<HyperRect<2>> = SyntheticSpec::paper(size, bits, 0.0, 81).generate();
    let max_level = plan::adaptive_max_level(mean_sketch_extent(&[&data]), bits + 2);
    let shape = BoostShape::new(600, 5);
    let instances = shape.instances();

    // Queries with moderate-to-large selectivities: the Lemma 9 variance
    // carries a (3 log2 n + 1) query-cover amplification per dimension, so
    // (as with all guarantees-bearing estimators, paper Section 7.4)
    // accuracy is only meaningful when the result size is substantial.
    let mut qrng = rand::rngs::StdRng::seed_from_u64(83);
    let n = 1u64 << bits;
    let query_set: Vec<HyperRect<2>> = (0..queries)
        .map(|i| {
            let frac = 0.15 + 0.45 * (i as f64 / queries as f64);
            let side = ((n as f64) * frac) as u64;
            let x = qrng.gen_range(0..n - side - 1);
            let y = qrng.gen_range(0..n - side - 1);
            HyperRect::new([Interval::new(x, x + side), Interval::new(y, y + side)])
        })
        .collect();

    let mut err_opt_sum = 0.0;
    let mut err_join_sum = 0.0;
    let mut sel_sum = 0.0;
    let mut table = Table::new(
        "range-query estimation: optimized (Lemma 9) vs join-form",
        &["query", "truth", "optimized err", "join-form err"],
    );

    for t in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8000 + 7 * t as u64);
        let config = SketchConfig {
            kind: fourwise::XiKind::Bch,
            shape,
            max_level: Some(max_level),
        };
        // Optimized range estimator.
        let rq = RangeQuery::<2>::new(&mut rng, config, [bits, bits], RangeStrategy::Transform);
        let mut rsk = rq.new_sketch();
        par_insert_batch(&mut rsk, &data, threads).expect("range sketch");
        // Join-form estimator: the data vs a singleton "relation".
        let join =
            SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);
        let mut jr = join.new_sketch_r();
        par_insert_batch(&mut jr, &data, threads).expect("join sketch");

        for (qi, q) in query_set.iter().enumerate() {
            let truth = exact::naive::range_count(&data, q) as f64;
            if truth == 0.0 {
                continue;
            }
            let opt = rq.estimate(&rsk, q).expect("range estimate").value;
            let mut js = join.new_sketch_s();
            js.insert(q).expect("query insert");
            let jf = join.estimate(&jr, &js).expect("join estimate").value;
            let eo = rel_error(opt, truth);
            let ej = rel_error(jf, truth);
            err_opt_sum += eo;
            err_join_sum += ej;
            sel_sum += truth / size as f64;
            if t == 0 && qi % 8 == 0 {
                table.push_row(vec![
                    format!("q{qi}"),
                    format_num(truth),
                    format_num(eo),
                    format_num(ej),
                ]);
            }
        }
    }
    let denom = (trials as usize * queries) as f64;
    let rec = Record {
        size,
        queries,
        instances,
        avg_err_optimized: err_opt_sum / denom,
        avg_err_join_form: err_join_sum / denom,
        avg_selectivity: sel_sum / denom,
    };
    table.print();
    println!(
        "avg relative error over {queries} queries x {trials} trials ({instances} instances): optimized {:.4}, join-form {:.4} (avg selectivity {:.4})",
        rec.avg_err_optimized, rec.avg_err_join_form, rec.avg_selectivity
    );
    table.write_csv("range_query_accuracy");
    let json = write_json("range_query_accuracy", &rec);
    println!("wrote {}", json.display());
}

//! The TCP serving front-end: per-connection framed handlers feeding a
//! bounded batch queue, worker threads answering whole batches through one
//! [`ContextPool`] pass, load-shedding at admission, graceful drain on
//! shutdown.
//!
//! ## Batching
//!
//! Connection handlers never evaluate queries. They decode a `QueryBatch`
//! frame, enqueue one job per query into the shared `BatchQueue`, and
//! wait on a per-frame reply channel. Worker threads drain up to
//! [`ServeConfig::max_batch`] queued jobs at a time — possibly from many
//! connections — and answer the whole batch inside a **single**
//! [`ContextPool::with`] pass. That is the shape the serving layer is
//! built for: the first query of a pass revalidates the store epoch and
//! (at most) re-folds the merged view; every other query in the batch
//! reuses both for free, so batching amortizes exactly the work the
//! worker caches exist to avoid repeating.
//!
//! ## Backpressure
//!
//! The queue is bounded by [`ServeConfig::queue_capacity`]. Admission is
//! per query, not per frame: when the queue is full (or closed for
//! shutdown) the query is *shed* — answered immediately with
//! [`WireErrorCode::Overloaded`], never silently dropped and never
//! blocking the handler. An overloaded server therefore stays responsive
//! and the client learns, per query, what to retry.
//!
//! ## Crash resilience
//!
//! Each worker pass runs under `catch_unwind`: a panic while evaluating a
//! batch (the fault-injection hook, or a real bug) converts the whole
//! batch to [`WireErrorCode::Internal`] replies, and the poisoned pool
//! slot is recovered — reset, not abandoned — by [`ContextPool::with`] on
//! the next pass. One bad query costs its batch, never the server.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] closes the queue (late arrivals shed),
//! unblocks and joins the acceptor, joins the workers — which first
//! **drain** every already-admitted job so no accepted query goes
//! unanswered — then shuts down the connection sockets and joins the
//! handlers.

use super::codec::{
    decode_queries, encode_replies, read_frame, write_frame, Opcode, WireErrorCode, WireQuery,
    WireReply,
};
use crate::context::{ContextPool, WorkerContext};
use crate::router::QueryRouter;
use crate::store::ShardedStore;
use geometry::{HyperRect, Interval};
use sketch::estimators::joins::SpatialJoin;
use sketch::RangeQuery;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the batch queue (each holds one
    /// [`ContextPool`] slot per pass; pools at least this large avoid
    /// blocking).
    pub workers: usize,
    /// Most queries one worker admits into a single context pass.
    pub max_batch: usize,
    /// Bound on queued-but-unevaluated queries; admission beyond it sheds
    /// with [`WireErrorCode::Overloaded`]. Zero sheds everything — useful
    /// for deterministic overload tests.
    pub queue_capacity: usize,
    /// Honor [`WireQuery::FaultPanic`] (soak tests / CI only). Off by
    /// default: a production server answers the opcode with
    /// [`WireErrorCode::BadRequest`] instead of letting a peer panic it.
    pub fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
            queue_capacity: 256,
            fault_injection: false,
        }
    }
}

/// The queries a server answers: one range estimator, optionally one join
/// estimator, over an indexed table of sharded stores.
///
/// Wire queries address stores by table index; [`SketchService::answer`]
/// validates the index, the dimensionality and the interval bounds before
/// touching the router, answering malformed queries with
/// [`WireErrorCode::BadRequest`] rather than failing the connection.
#[derive(Debug)]
pub struct SketchService<const D: usize> {
    range: RangeQuery<D>,
    join: Option<SpatialJoin<D>>,
    stores: Vec<Arc<ShardedStore<D>>>,
    router: QueryRouter,
}

impl<const D: usize> SketchService<D> {
    /// A service answering range/stab queries over `stores` with `range`.
    pub fn new(range: RangeQuery<D>, stores: Vec<Arc<ShardedStore<D>>>) -> Self {
        Self {
            range,
            join: None,
            stores,
            router: QueryRouter::new(),
        }
    }

    /// Also answer join queries with `join` (builder form). The join's
    /// stores must share its schema, as everywhere in the serving layer.
    pub fn with_join(mut self, join: SpatialJoin<D>) -> Self {
        self.join = Some(join);
        self
    }

    /// Routes queries with `router` instead of the default exact-mode one
    /// (builder form).
    pub fn with_router(mut self, router: QueryRouter) -> Self {
        self.router = router;
        self
    }

    /// The store table a wire query's `store` index resolves against.
    pub fn stores(&self) -> &[Arc<ShardedStore<D>>] {
        &self.stores
    }

    fn store(&self, index: u32) -> Result<&Arc<ShardedStore<D>>, WireReply> {
        self.stores
            .get(index as usize)
            .ok_or_else(|| WireReply::Error {
                code: WireErrorCode::BadRequest,
                message: format!(
                    "store index {index} out of range ({} stores)",
                    self.stores.len()
                ),
            })
    }

    /// Answers one wire query with `ctx`. Infallible by design: every
    /// failure mode becomes a [`WireReply::Error`] entry so a bad query
    /// can never take down its batch-mates or the connection.
    ///
    /// # Panics
    ///
    /// [`WireQuery::FaultPanic`] panics when `fault_injection` is true —
    /// deliberately, to exercise the worker's `catch_unwind` + pool
    /// recovery path from the wire.
    pub fn answer(
        &self,
        ctx: &mut WorkerContext<D>,
        query: &WireQuery,
        fault_injection: bool,
    ) -> WireReply {
        match query {
            WireQuery::Range { store, ranges } => {
                let store = match self.store(*store) {
                    Ok(s) => s,
                    Err(reply) => return reply,
                };
                let Some(rect) = rect_of::<D>(ranges) else {
                    return bad_request(format!(
                        "range query needs {D} non-inverted (lo, hi) pairs"
                    ));
                };
                estimate_reply(self.router.estimate_range(&self.range, store, ctx, &rect))
            }
            WireQuery::Stab { store, point } => {
                let store = match self.store(*store) {
                    Ok(s) => s,
                    Err(reply) => return reply,
                };
                let Ok(p) = <[u64; D]>::try_from(point.as_slice()) else {
                    return bad_request(format!("stab query needs {D} coordinates"));
                };
                estimate_reply(self.router.estimate_stab(&self.range, store, ctx, &p))
            }
            WireQuery::Join { r_store, s_store } => {
                let Some(join) = &self.join else {
                    return bad_request("this service has no join estimator".into());
                };
                let r = match self.store(*r_store) {
                    Ok(s) => Arc::clone(s),
                    Err(reply) => return reply,
                };
                let s = match self.store(*s_store) {
                    Ok(s) => Arc::clone(s),
                    Err(reply) => return reply,
                };
                estimate_reply(self.router.estimate_join(join, &r, &s, ctx))
            }
            WireQuery::FaultPanic => {
                if fault_injection {
                    panic!("injected fault: wire-requested handler panic");
                }
                bad_request("fault injection is disabled on this server".into())
            }
        }
    }

    /// Answers a whole batch of wire queries with `ctx`, grouping the valid
    /// range/stab queries per store so each store's group rides **one**
    /// batched kernel sweep ([`QueryRouter::estimate_batch`]) instead of a
    /// per-query pass. Malformed queries answer [`WireErrorCode::BadRequest`]
    /// individually — a bad query never costs its batch-mates the fast
    /// path — and join/fault queries fall through to
    /// [`SketchService::answer`] unchanged. Every reply is bit-identical to
    /// the per-query path's.
    ///
    /// # Panics
    ///
    /// Like [`SketchService::answer`], [`WireQuery::FaultPanic`] panics
    /// when `fault_injection` is true.
    pub fn answer_batch(
        &self,
        ctx: &mut WorkerContext<D>,
        queries: &[&WireQuery],
        fault_injection: bool,
    ) -> Vec<WireReply> {
        let mut replies: Vec<Option<WireReply>> = vec![None; queries.len()];
        // Per distinct store index: the query slots and their parsed
        // batch queries. Batches are `max_batch`-bounded, so linear scans
        // over the handful of distinct stores are fine.
        let mut group_store: Vec<u32> = Vec::new();
        let mut group_slots: Vec<Vec<usize>> = Vec::new();
        let mut group_queries: Vec<Vec<sketch::BatchQuery<D>>> = Vec::new();
        let mut push = |store: u32, slot: usize, q: sketch::BatchQuery<D>| match group_store
            .iter()
            .position(|&s| s == store)
        {
            Some(g) => {
                group_slots[g].push(slot);
                group_queries[g].push(q);
            }
            None => {
                group_store.push(store);
                group_slots.push(vec![slot]);
                group_queries.push(vec![q]);
            }
        };
        for (slot, query) in queries.iter().enumerate() {
            match query {
                WireQuery::Range { store, ranges } => {
                    if let Err(reply) = self.store(*store) {
                        replies[slot] = Some(reply);
                        continue;
                    }
                    let Some(rect) = rect_of::<D>(ranges) else {
                        replies[slot] = Some(bad_request(format!(
                            "range query needs {D} non-inverted (lo, hi) pairs"
                        )));
                        continue;
                    };
                    push(*store, slot, sketch::BatchQuery::Range(rect));
                }
                WireQuery::Stab { store, point } => {
                    if let Err(reply) = self.store(*store) {
                        replies[slot] = Some(reply);
                        continue;
                    }
                    let Ok(p) = <[u64; D]>::try_from(point.as_slice()) else {
                        replies[slot] =
                            Some(bad_request(format!("stab query needs {D} coordinates")));
                        continue;
                    };
                    push(*store, slot, sketch::BatchQuery::Stab(p));
                }
                // Joins and fault injection keep their per-query path.
                _ => replies[slot] = Some(self.answer(ctx, query, fault_injection)),
            }
        }
        for (g, store) in group_store.iter().enumerate() {
            let store = self.store(*store).expect("validated at classification");
            let answers = self
                .router
                .estimate_batch(&self.range, store, ctx, &group_queries[g]);
            for (&slot, answer) in group_slots[g].iter().zip(answers) {
                replies[slot] = Some(estimate_reply(answer));
            }
        }
        replies
            .into_iter()
            .map(|r| r.expect("every query classified"))
            .collect()
    }
}

/// Builds a `HyperRect` from wire `(lo, hi)` pairs; `None` on arity or
/// interval-order violations (closed intervals, `lo <= hi`).
fn rect_of<const D: usize>(ranges: &[(u64, u64)]) -> Option<HyperRect<D>> {
    if ranges.len() != D {
        return None;
    }
    let mut intervals = Vec::with_capacity(D);
    for &(lo, hi) in ranges {
        intervals.push(Interval::try_new(lo, hi)?);
    }
    Some(HyperRect::new(std::array::from_fn(|d| intervals[d])))
}

fn bad_request(message: String) -> WireReply {
    WireReply::Error {
        code: WireErrorCode::BadRequest,
        message,
    }
}

fn estimate_reply(result: sketch::Result<sketch::Estimate>) -> WireReply {
    match result {
        Ok(est) => WireReply::Estimate {
            value: est.value,
            row_means: est.row_means,
        },
        Err(e) => WireReply::Error {
            code: WireErrorCode::Estimate,
            message: e.to_string(),
        },
    }
}

/// One admitted query: what to evaluate, where it sits in its frame, and
/// the handler's reply channel.
struct Job {
    query: WireQuery,
    slot: usize,
    reply: mpsc::Sender<(usize, WireReply)>,
}

/// The bounded in-flight queue between connection handlers and workers.
struct BatchQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl BatchQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job`, or gives it back when the queue is full or closed —
    /// the caller sheds it. Never blocks.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for work and takes up to `max` jobs. An empty result means
    /// the queue is closed **and** fully drained: workers exit only after
    /// every admitted job has been taken.
    fn drain(&self, max: usize) -> Vec<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if !state.jobs.is_empty() {
                let take = state.jobs.len().min(max);
                return state.jobs.drain(..take).collect();
            }
            if state.closed {
                return Vec::new();
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// Monotonic serving counters, readable while the server runs.
#[derive(Debug, Default)]
struct ServeCounters {
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries evaluated (successfully or as per-query errors).
    pub served: u64,
    /// Queries shed at admission with [`WireErrorCode::Overloaded`].
    pub shed: u64,
    /// Worker passes that panicked (each converts its batch to
    /// [`WireErrorCode::Internal`] replies and recovers the pool slot).
    pub panics: u64,
}

/// Open connections and their handler threads, registered by the acceptor
/// so shutdown can unblock and join them.
#[derive(Default)]
struct ConnRegistry {
    streams: Vec<TcpStream>,
    handlers: Vec<JoinHandle<()>>,
}

/// A running server. Dropping the handle shuts the server down (prefer
/// calling [`ServerHandle::shutdown`] to observe the drain explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    queue: Arc<BatchQueue>,
    counters: Arc<ServeCounters>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<ConnRegistry>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.counters.served.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop admitting, answer everything already admitted,
    /// then tear the threads down (see the module docs for the order).
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return; // already shut down
        };
        self.stopping.store(true, Ordering::SeqCst);
        self.queue.close();
        // The acceptor blocks in accept(); a throwaway local connection
        // wakes it to observe `stopping`.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // Workers drain the queue dry, then see `closed` and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Unblock handlers parked in read_frame, then join them.
        let mut conns = self.conns.lock().expect("conn registry lock");
        for stream in conns.streams.drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handlers: Vec<JoinHandle<()>> = conns.handlers.drain(..).collect();
        drop(conns);
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Binds `127.0.0.1:<port>` (port 0 = ephemeral, the test/CI default) and
/// starts serving `service` through `pool`.
pub fn serve<const D: usize>(
    service: Arc<SketchService<D>>,
    pool: Arc<ContextPool<D>>,
    config: &ServeConfig,
    port: u16,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let queue = Arc::new(BatchQueue::new(config.queue_capacity));
    let counters = Arc::new(ServeCounters::default());
    let stopping = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(Mutex::new(ConnRegistry::default()));

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let (service, pool, queue, counters) = (
                Arc::clone(&service),
                Arc::clone(&pool),
                Arc::clone(&queue),
                Arc::clone(&counters),
            );
            let (max_batch, fault) = (config.max_batch.max(1), config.fault_injection);
            std::thread::spawn(move || {
                worker_loop(&service, &pool, &queue, &counters, max_batch, fault)
            })
        })
        .collect();

    let acceptor = {
        let (queue, counters, stopping, conns) = (
            Arc::clone(&queue),
            Arc::clone(&counters),
            Arc::clone(&stopping),
            Arc::clone(&conns),
        );
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stopping.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let Ok(clone) = stream.try_clone() else {
                    continue;
                };
                let (queue, counters) = (Arc::clone(&queue), Arc::clone(&counters));
                let handler =
                    std::thread::spawn(move || handle_connection(stream, &queue, &counters));
                let mut registry = conns.lock().expect("conn registry lock");
                registry.streams.push(clone);
                registry.handlers.push(handler);
            }
        })
    };

    Ok(ServerHandle {
        addr,
        queue,
        counters,
        stopping,
        acceptor: Some(acceptor),
        workers,
        conns,
    })
}

/// One worker: drain a batch, answer it in a single pooled-context pass,
/// route the replies back. Exits when the queue is closed and dry.
fn worker_loop<const D: usize>(
    service: &SketchService<D>,
    pool: &ContextPool<D>,
    queue: &BatchQueue,
    counters: &ServeCounters,
    max_batch: usize,
    fault_injection: bool,
) {
    loop {
        let batch = queue.drain(max_batch);
        if batch.is_empty() {
            return;
        }
        // One pool pass per batch: the first query pays epoch revalidation
        // and any view re-fold, the rest ride the warm caches — and the
        // batched answer path evaluates each store's queries in a single
        // multi-query kernel sweep. A panic anywhere in the pass poisons
        // the slot; `ContextPool::with` recovers it on the next checkout,
        // and this batch answers `Internal` rather than leaving its
        // handlers waiting forever.
        let replies = catch_unwind(AssertUnwindSafe(|| {
            pool.with(|ctx| {
                let queries: Vec<&WireQuery> = batch.iter().map(|job| &job.query).collect();
                service.answer_batch(ctx, &queries, fault_injection)
            })
        }));
        match replies {
            Ok(replies) => {
                counters
                    .served
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for (job, reply) in batch.iter().zip(replies) {
                    let _ = job.reply.send((job.slot, reply));
                }
            }
            Err(_) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                for job in &batch {
                    let _ = job.reply.send((
                        job.slot,
                        WireReply::Error {
                            code: WireErrorCode::Internal,
                            message: "handler panicked evaluating this batch".into(),
                        },
                    ));
                }
            }
        }
    }
}

/// One connection: frames in, frames out. Any protocol violation closes
/// the connection (there is no sound way to resynchronize a byte stream
/// after a framing error); per-query problems are reply entries instead.
fn handle_connection(stream: TcpStream, queue: &BatchQueue, counters: &ServeCounters) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let Ok((opcode, payload)) = read_frame(&mut reader) else {
            return; // EOF, socket error, or a framing violation
        };
        match opcode {
            Opcode::Ping => {
                if write_frame(&mut writer, Opcode::Pong, &[]).is_err() {
                    return;
                }
            }
            Opcode::QueryBatch => {
                let Ok(queries) = decode_queries(&payload) else {
                    return;
                };
                let (tx, rx) = mpsc::channel();
                let mut replies: Vec<Option<WireReply>> = vec![None; queries.len()];
                let mut pending = 0usize;
                for (slot, query) in queries.into_iter().enumerate() {
                    match queue.push(Job {
                        query,
                        slot,
                        reply: tx.clone(),
                    }) {
                        Ok(()) => pending += 1,
                        Err(_) => {
                            counters.shed.fetch_add(1, Ordering::Relaxed);
                            replies[slot] = Some(WireReply::Error {
                                code: WireErrorCode::Overloaded,
                                message: "in-flight queue full; retry with backoff".into(),
                            });
                        }
                    }
                }
                drop(tx);
                for _ in 0..pending {
                    // Workers always reply to admitted jobs, including on
                    // panic and during shutdown drain; Err here means the
                    // channel died with the worker pool (process teardown).
                    let Ok((slot, reply)) = rx.recv() else { break };
                    replies[slot] = Some(reply);
                }
                let out: Vec<WireReply> = replies
                    .into_iter()
                    .map(|r| {
                        r.unwrap_or(WireReply::Error {
                            code: WireErrorCode::Internal,
                            message: "reply lost during server teardown".into(),
                        })
                    })
                    .collect();
                if write_frame(&mut writer, Opcode::ReplyBatch, &encode_replies(&out)).is_err() {
                    return;
                }
            }
            // Server-to-client opcodes from a client are a protocol error.
            Opcode::ReplyBatch | Opcode::Pong => return,
        }
    }
}

//! Property tests for `fourwise::batch` across the cube-table boundary.
//!
//! `XiContext` eagerly tabulates GF(2^k) cubes for `k <=`
//! [`CUBE_TABLE_MAX_BITS`] and computes them on the fly above it; the block
//! evaluation path consumes `IndexPre` either way and must agree with the
//! scalar `XiFamily` evaluation bit for bit on both sides of the boundary.
//!
//! Seeded stand-ins for property tests (deterministic randomized loops).

use fourwise::{
    IndexPre, LaneCounter, XiBlock, XiContext, XiKind, XiSeed, BLOCK_LANES, CUBE_TABLE_MAX_BITS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domains straddling the table/no-table split (table for 20 and 21, on-the-
/// fly field arithmetic for 22).
const BOUNDARY_KS: [u32; 3] = [
    CUBE_TABLE_MAX_BITS - 1,
    CUBE_TABLE_MAX_BITS,
    CUBE_TABLE_MAX_BITS + 1,
];

#[test]
fn boundary_constants_still_straddle() {
    // The satellite contract: k = 20, 21, 22 crosses the tabulation cutoff.
    assert_eq!(CUBE_TABLE_MAX_BITS, 21);
    assert_eq!(BOUNDARY_KS, [20, 21, 22]);
}

#[test]
fn size_one_blocks_equal_family_evaluation() {
    for k in BOUNDARY_KS {
        for kind in [XiKind::Bch, XiKind::Poly] {
            let ctx = XiContext::new(kind, k);
            let mut rng = StdRng::seed_from_u64(1000 + k as u64);
            for trial in 0..8 {
                let seed = ctx.random_seed(&mut rng);
                let block = XiBlock::pack(&ctx, &[seed]);
                assert_eq!(block.lanes(), 1);
                let fam = ctx.family(seed);
                let top = (1u64 << k) - 1;
                for t in 0..200u64 {
                    // Deterministic spread plus random draws, hitting both
                    // domain ends.
                    let i = match t {
                        0 => 0,
                        1 => top,
                        _ => rng.gen_range(0..=top),
                    };
                    let pre = ctx.precompute(i);
                    let mask = block.eval_mask(pre);
                    let got = 1 - 2 * ((mask & 1) as i64);
                    assert_eq!(
                        got,
                        fam.xi_pre(pre),
                        "{kind:?} k={k} trial={trial} index={i}"
                    );
                    assert_eq!(fam.xi_pre(pre), fam.xi(i), "precompute path diverged");
                }
            }
        }
    }
}

#[test]
fn full_blocks_equal_family_sums_at_boundary() {
    for k in BOUNDARY_KS {
        for kind in [XiKind::Bch, XiKind::Poly] {
            let ctx = XiContext::new(kind, k);
            let mut rng = StdRng::seed_from_u64(2000 + k as u64);
            let seeds: Vec<XiSeed> = (0..BLOCK_LANES)
                .map(|_| ctx.random_seed(&mut rng))
                .collect();
            let block = XiBlock::pack(&ctx, &seeds);
            let top = (1u64 << k) - 1;
            let pres: Vec<IndexPre> = (0..40)
                .map(|_| ctx.precompute(rng.gen_range(0..=top)))
                .collect();
            let mut counter = LaneCounter::new();
            let mut sums = [0i64; BLOCK_LANES];
            block.sum_pre_into(&pres, &mut counter, &mut sums);
            for (lane, &seed) in seeds.iter().enumerate() {
                let fam = ctx.family(seed);
                assert_eq!(sums[lane], fam.sum_pre(&pres), "{kind:?} k={k} lane={lane}");
            }
        }
    }
}

//! Figures 5 and 6: relative error vs dataset size under uniform (Zipf 0)
//! and skewed (Zipf 1) synthetic 2-d rectangle workloads.
//!
//! Paper setup: equal-size inputs from 30K to 500K rectangles, domain-scaled
//! extents, generalized Euler histograms at grid level 6 (~36K words), with
//! SKETCH and GH given the same space. Expected shape: for Zipf 0, SKETCH ≈
//! GH with errors well below EH; for Zipf 1 all three are comparable with
//! SKETCH marginally best; SKETCH/GH errors stay flat as size grows.
//!
//! Usage:
//!   cargo run --release -p spatial-bench --bin fig5_6 -- --zipf 0
//!     [--paper-scale] [--trials 3] [--threads N]
//!
//! Defaults are scaled down (sizes to 100K, EH level 4 ≈ 2.2K words) so the
//! run finishes in tens of seconds; `--paper-scale` restores the original
//! sizes and level-6 grids.

use datagen::SyntheticSpec;
use serde::Serialize;
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, Table};
use spatial_bench::runner::{
    default_threads, eh_join_error, gh_join_error, shape_for_words, sketch_join_error_2d,
};

#[derive(Serialize)]
struct Record {
    figure: String,
    zipf: f64,
    domain_bits: u32,
    eh_level: u32,
    words_budget: f64,
    sizes: Vec<usize>,
    sketch_err: Vec<f64>,
    eh_err: Vec<f64>,
    gh_err: Vec<f64>,
    truths: Vec<u64>,
}

fn main() {
    let args = Args::parse(&["paper-scale"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let zipf: f64 = args.get_or("zipf", 0.0).expect("--zipf");
    let trials: u32 = args.get_or("trials", 3).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");
    let paper = args.has("paper-scale");

    // Paper: domain-scaled extents (avg side O(sqrt(domain))), EH level 6.
    let domain_bits: u32 = 14;
    let (sizes, eh_level): (Vec<usize>, u32) = if paper {
        (vec![30_000, 100_000, 200_000, 350_000, 500_000], 6)
    } else {
        (vec![10_000, 25_000, 50_000, 75_000, 100_000], 4)
    };
    let words = histograms::EulerHistogram::words_at_level(eh_level) as f64;
    let gh_level = spatial_bench::runner::gh_level_for_words(words, domain_bits)
        .expect("GH level within budget");

    let fig = if zipf == 0.0 { "fig5" } else { "fig6" };
    println!(
        "# {} — relative error vs dataset size (zipf = {zipf})",
        fig.to_uppercase()
    );
    println!(
        "# space budget per dataset: {words} words (EH level {eh_level}, GH level {gh_level}, SKETCH {} instances)",
        shape_for_words(2, words).instances()
    );

    let mut table = Table::new(
        format!("{fig}: relative error vs dataset size (zipf={zipf})"),
        &["size", "truth", "SKETCH", "EH", "GH"],
    );
    let mut rec = Record {
        figure: fig.into(),
        zipf,
        domain_bits,
        eh_level,
        words_budget: words,
        sizes: sizes.clone(),
        sketch_err: vec![],
        eh_err: vec![],
        gh_err: vec![],
        truths: vec![],
    };

    for (i, &n) in sizes.iter().enumerate() {
        let r: Vec<geometry::HyperRect<2>> =
            SyntheticSpec::paper(n, domain_bits, zipf, 100 + i as u64).generate();
        let s: Vec<geometry::HyperRect<2>> =
            SyntheticSpec::paper(n, domain_bits, zipf, 200 + i as u64).generate();
        let truth = exact::rect_join_count(&r, &s);
        let truth_f = truth as f64;
        let sk = sketch_join_error_2d(
            &r,
            &s,
            truth_f,
            domain_bits,
            words,
            trials,
            7 + i as u64,
            threads,
        );
        let eh = eh_join_error(&r, &s, truth_f, domain_bits, eh_level);
        let gh = gh_join_error(&r, &s, truth_f, domain_bits, gh_level);
        table.push_row(vec![
            n.to_string(),
            truth.to_string(),
            format_num(sk),
            format_num(eh),
            format_num(gh),
        ]);
        rec.sketch_err.push(sk);
        rec.eh_err.push(eh);
        rec.gh_err.push(gh);
        rec.truths.push(truth);
        eprintln!("  size {n}: truth {truth}, SKETCH {sk:.4}, EH {eh:.4}, GH {gh:.4}");
    }

    table.print();
    let csv = table.write_csv(fig);
    let json = spatial_bench::report::write_json(fig, &rec);
    println!("wrote {} and {}", csv.display(), json.display());
}

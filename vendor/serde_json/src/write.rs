//! JSON text emission (compact and pretty).

use serde::Value;
use std::fmt::Write as _;

/// Renders a value tree as JSON; `indent = Some(n)` pretty-prints with
/// `n`-space indentation. Fails on non-finite floats (JSON has no NaN).
pub fn render(value: &Value, indent: Option<usize>) -> Result<String, String> {
    let mut out = String::new();
    emit(value, indent, 0, &mut out)?;
    Ok(out)
}

fn emit(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), String> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Value::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(format!("cannot represent {v} in JSON"));
            }
            // Rust's shortest-roundtrip formatting; integral floats print
            // without a fraction, which is still valid JSON.
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => emit_str(s, out),
        Value::Seq(items) => {
            emit_bracketed(out, '[', ']', items.len(), indent, depth, |out, i| {
                emit(&items[i], indent, depth + 1, out)
            })?;
        }
        Value::Map(entries) => {
            emit_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, v) = &entries[i];
                emit_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(v, indent, depth + 1, out)
            })?;
        }
    }
    Ok(())
}

fn emit_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize) -> Result<(), String>,
) -> Result<(), String> {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * (depth + 1)));
        }
        item(out, i)?;
    }
    if len > 0 {
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * depth));
        }
    }
    out.push(close);
    Ok(())
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

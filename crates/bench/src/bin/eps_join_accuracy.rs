//! Ablation A2: ε-join estimator accuracy (Section 6.3) vs ε and space.
//!
//! Uniform 2-d point sets; for each ε the estimator sketches `A` as points
//! and `B` as ε-cubes, and we report relative error against the exact
//! grid-hash join for several instance budgets.
//!
//! Usage: cargo run --release -p spatial-bench --bin eps_join_accuracy
//!   [-- --size 20000] [--trials 3] [--threads N]

use datagen::uniform_points;
use geometry::HyperRect;
use rand::SeedableRng;
use serde::Serialize;
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, BoostShape, EpsJoin};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::default_threads;

#[derive(Serialize)]
struct Record {
    size: usize,
    eps_values: Vec<u64>,
    instance_budgets: Vec<usize>,
    rel_err: Vec<Vec<f64>>, // [eps][budget]
    truths: Vec<u64>,
}

fn main() {
    let args = Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let size: usize = args.get_or("size", 20_000).expect("--size");
    let trials: u32 = args.get_or("trials", 3).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");

    let bits = 12u32;
    let a_pts: Vec<[u64; 2]> = uniform_points(size, bits, 71);
    let b_pts: Vec<[u64; 2]> = uniform_points(size, bits, 72);
    let eps_values = [4u64, 16, 64, 128];
    let budgets = [125usize, 500, 2000];

    println!("# A2 — eps-join accuracy (|A| = |B| = {size}, domain 2^{bits})");
    let mut table = Table::new(
        "eps-join relative error vs eps and instances",
        &["eps", "truth", "inst=125", "inst=500", "inst=2000"],
    );
    let mut rec = Record {
        size,
        eps_values: eps_values.to_vec(),
        instance_budgets: budgets.to_vec(),
        rel_err: vec![],
        truths: vec![],
    };

    for (ei, &eps) in eps_values.iter().enumerate() {
        let truth = exact::eps_join_count(&a_pts, &b_pts, eps);
        let truth_f = truth as f64;
        let mut row = vec![eps.to_string(), truth.to_string()];
        let mut errs = Vec::new();
        for (bi, &instances) in budgets.iter().enumerate() {
            let k2 = 5;
            let shape = BoostShape::new((instances / k2).max(1), k2);
            let mut err_sum = 0.0;
            for t in 0..trials {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    4000 + 97 * t as u64 + 7 * (ei + 11 * bi) as u64,
                );
                // Section 6.5 applies to the ε-join too: truncate near the
                // cube extent (2ε) so point covers stop sharing high levels.
                let max_level = sketch::plan::adaptive_max_level(2.0 * eps as f64, bits);
                let config = SketchConfig {
                    kind: fourwise::XiKind::Bch,
                    shape,
                    max_level: Some(max_level),
                };
                let est = EpsJoin::<2>::new(&mut rng, config, bits, eps);
                let mut a = est.new_sketch_a();
                let mut b = est.new_sketch_b();
                let a_rects: Vec<HyperRect<2>> =
                    a_pts.iter().map(|p| HyperRect::from_point(*p)).collect();
                par_insert_batch(&mut a, &a_rects, threads).expect("A sketch");
                let b_rects: Vec<HyperRect<2>> = b_pts
                    .iter()
                    .map(|p| geometry::distance::linf_cube(p, eps, (1u64 << bits) - 1))
                    .collect();
                par_insert_batch(&mut b, &b_rects, threads).expect("B sketch");
                err_sum += rel_error(est.estimate(&a, &b).expect("estimate").value, truth_f);
            }
            let err = err_sum / trials as f64;
            row.push(format_num(err));
            errs.push(err);
        }
        eprintln!("  eps {eps}: truth {truth}, errors {errs:?}");
        table.push_row(row);
        rec.rel_err.push(errs);
        rec.truths.push(truth);
    }

    table.print();
    table.write_csv("eps_join_accuracy");
    let json = write_json("eps_join_accuracy", &rec);
    println!("wrote {}", json.display());
}

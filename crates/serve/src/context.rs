//! Per-worker serving state: reusable estimation scratch, cached store
//! epochs, and cached cross-shard merge views — everything a serving loop
//! needs to keep the hot path allocation-free and lock-free.

use crate::store::{ShardedStore, StoreEpoch};
use sketch::{par_merge_batch, QueryContext, QueryKernel, Result, SketchSet};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Most stores one worker caches views/epochs for (oldest evicted first).
const STORE_CACHE_CAPACITY: usize = 8;

/// One worker's serving state.
///
/// Holds a core [`QueryContext`] (kernel scratch + compiled-plan cache), a
/// cached `Arc<StoreEpoch>` per store — revalidated against the store's
/// epoch tag with a single atomic load, so steady-state queries never touch
/// a lock — and a cached *merged view* per store: one reusable [`SketchSet`]
/// holding the integer fold of the selected shards' counters. The view is
/// rebuilt only when the epoch or the shard selection changes; between
/// ingests, every query runs at full single-sketch speed with zero
/// allocation.
#[derive(Debug, Default)]
pub struct WorkerContext<const D: usize> {
    /// The core estimation scratch (kernel choice, atomic grid, plan cache).
    pub query: QueryContext,
    /// Reusable shard-selection mask: the router takes it, fills it per
    /// query and puts it back, so warm queries allocate nothing.
    pub(crate) mask: Vec<bool>,
    epochs: Vec<CachedEpoch<D>>,
    views: Vec<StoreView<D>>,
}

#[derive(Debug)]
struct CachedEpoch<const D: usize> {
    store: u64,
    epoch: Arc<StoreEpoch<D>>,
}

/// A cached cross-shard merge: the counters of every selected shard folded
/// into one sketch (exact `i64` linearity — see the router docs).
#[derive(Debug)]
pub(crate) struct StoreView<const D: usize> {
    store: u64,
    epoch: u64,
    mask: Vec<bool>,
    pub(crate) merged: SketchSet<D>,
}

impl<const D: usize> WorkerContext<D> {
    /// Fresh worker state (default `Auto` kernel).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the estimation kernel (builder form).
    pub fn with_kernel(mut self, kernel: QueryKernel) -> Self {
        self.query.set_kernel(kernel);
        self
    }

    /// The store epoch this worker serves from, revalidated against the
    /// store's lock-free epoch tag; only an actual epoch change re-reads
    /// the store's published pointer.
    pub fn epoch_for(&mut self, store: &ShardedStore<D>) -> Arc<StoreEpoch<D>> {
        let tag = store.epoch_tag();
        if let Some(c) = self.epochs.iter().find(|c| c.store == store.id()) {
            if c.epoch.epoch() == tag {
                return Arc::clone(&c.epoch);
            }
        }
        let fresh = store.load();
        match self.epochs.iter_mut().find(|c| c.store == store.id()) {
            Some(c) => c.epoch = Arc::clone(&fresh),
            None => {
                if self.epochs.len() >= STORE_CACHE_CAPACITY {
                    self.epochs.remove(0);
                }
                self.epochs.push(CachedEpoch {
                    store: store.id(),
                    epoch: Arc::clone(&fresh),
                });
            }
        }
        fresh
    }

    /// Brings the merged view of `epoch`'s shards selected by `mask` up to
    /// date, rebuilding it only on epoch/selection change, and refreshes
    /// the entry's recency (least recently *ensured* is evicted first).
    /// Look the view up afterwards with [`WorkerContext::split`] +
    /// [`view_of`] — views are addressed by store id, never by position:
    /// ensuring a *second* store's view may evict the oldest cache entry
    /// and shift positions.
    pub(crate) fn ensure_view(
        &mut self,
        store: &ShardedStore<D>,
        epoch: &StoreEpoch<D>,
        mask: &[bool],
        merge_threads: usize,
    ) -> Result<()> {
        // LRU, not FIFO: a hit moves to the back, so a multi-store query
        // (join) that ensures its views back to back can never evict one
        // of its own — the invariant `view_of` relies on.
        match self.views.iter().position(|v| v.store == store.id()) {
            Some(i) => {
                let hit = self.views.remove(i);
                self.views.push(hit);
            }
            None => {
                if self.views.len() >= STORE_CACHE_CAPACITY {
                    self.views.remove(0);
                }
                self.views.push(StoreView {
                    store: store.id(),
                    epoch: 0, // forces the first build below
                    mask: Vec::new(),
                    merged: store.empty_sketch(),
                });
            }
        }
        let view = self.views.last_mut().expect("just positioned at the back");
        if view.epoch != epoch.epoch() || view.mask != mask {
            view.merged.reset();
            let parts: Vec<&SketchSet<D>> = epoch
                .shards()
                .iter()
                .zip(mask.iter())
                .filter(|(_, &selected)| selected)
                .map(|(s, _)| s.sketch())
                .collect();
            if merge_threads > 1 && parts.len() > 1 {
                par_merge_batch(&mut view.merged, &parts, merge_threads)?;
            } else {
                for p in parts {
                    view.merged.merge_from(p)?;
                }
            }
            view.epoch = epoch.epoch();
            view.mask.clear();
            view.mask.extend_from_slice(mask);
        }
        Ok(())
    }

    /// Splits the worker into its estimation scratch and its views, so a
    /// router can borrow the query context mutably alongside one or two
    /// merged views immutably.
    pub(crate) fn split(&mut self) -> (&mut QueryContext, &[StoreView<D>]) {
        (&mut self.query, &self.views)
    }
}

/// The merged view of `store_id` within a split worker's view list.
///
/// # Panics
///
/// Panics if the view is absent — callers must have run
/// [`WorkerContext::ensure_view`] for every store of the query *before*
/// splitting. That is always safe: the cache holds
/// [`STORE_CACHE_CAPACITY`] ≥ 2 entries, evicts least-recently-*ensured*
/// first, and every `ensure_view` (hit or miss) moves its entry to the
/// back, so ensuring one query's stores back to back can never evict each
/// other.
pub(crate) fn view_of<const D: usize>(views: &[StoreView<D>], store_id: u64) -> &SketchSet<D> {
    &views
        .iter()
        .find(|v| v.store == store_id)
        .expect("merged view evicted between ensure_view and use")
        .merged
}

/// A fixed set of [`WorkerContext`]s shared by concurrent request handlers.
///
/// [`ContextPool::with`] hands the calling thread an uncontended slot when
/// one is free (slots are probed starting from a thread-local hash, so
/// steady worker threads keep hitting *their* slot and its warm caches) and
/// blocks on one slot only when every context is busy.
#[derive(Debug)]
pub struct ContextPool<const D: usize> {
    slots: Vec<Mutex<WorkerContext<D>>>,
}

impl<const D: usize> ContextPool<D> {
    /// A pool of `workers` contexts (at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(WorkerContext::new()))
                .collect(),
        }
    }

    /// Number of pooled contexts.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` with a checked-out worker context.
    pub fn with<R>(&self, f: impl FnOnce(&mut WorkerContext<D>) -> R) -> R {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let start = (hasher.finish() as usize) % self.slots.len();
        for i in 0..self.slots.len() {
            let slot = &self.slots[(start + i) % self.slots.len()];
            if let Ok(mut ctx) = slot.try_lock() {
                return f(&mut ctx);
            }
        }
        // Every slot busy: wait for "our" slot.
        f(&mut self.slots[start].lock().expect("pool lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketch::{ie_words, BoostShape, DimSpec, EndpointPolicy, SketchSchema};

    fn store(shards: usize) -> ShardedStore<2> {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            fourwise::XiKind::Bch,
            BoostShape::new(5, 3),
            [DimSpec::dyadic(8); 2],
        );
        ShardedStore::new(
            schema,
            Arc::new(ie_words::<2>()),
            EndpointPolicy::Raw,
            shards,
        )
    }

    #[test]
    fn epoch_cache_revalidates_by_tag() {
        let st = store(2);
        let mut ctx = WorkerContext::<2>::new();
        let e1 = ctx.epoch_for(&st);
        assert_eq!(e1.epoch(), 1);
        assert!(Arc::ptr_eq(&e1, &ctx.epoch_for(&st)), "cache hit");
        st.insert_slice(&[rect2(1, 5, 1, 5)]).unwrap();
        let e2 = ctx.epoch_for(&st);
        assert_eq!(e2.epoch(), 2);
        assert!(!Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn merged_view_rebuilds_only_on_change() {
        let st = store(3);
        st.insert_slice(&[rect2(1, 5, 1, 5), rect2(200, 210, 7, 9)])
            .unwrap();
        let mut ctx = WorkerContext::<2>::new();
        let epoch = ctx.epoch_for(&st);
        let all = vec![true; 3];
        ctx.ensure_view(&st, &epoch, &all, 1).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 2);
        // Same epoch + mask: counters must not double up.
        ctx.ensure_view(&st, &epoch, &all, 1).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 2);
        // A different selection rebuilds.
        let mut some = vec![true; 3];
        some[st.partition().shard_of(200)] = false;
        ctx.ensure_view(&st, &epoch, &some, 1).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 1);
        // Parallel merge agrees with sequential.
        ctx.ensure_view(&st, &epoch, &all, 4).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 2);
    }

    #[test]
    fn views_resolve_by_store_id_across_evictions() {
        // Fill the view cache past capacity, then ensure two more stores
        // back to back (the join shape): both must resolve by id even
        // though the second ensure evicted an entry and shifted positions.
        let old: Vec<ShardedStore<2>> = (0..STORE_CACHE_CAPACITY).map(|_| store(2)).collect();
        let mut ctx = WorkerContext::<2>::new();
        for st in &old {
            let epoch = ctx.epoch_for(st);
            ctx.ensure_view(st, &epoch, &[false, false], 1).unwrap();
        }
        assert_eq!(ctx.views.len(), STORE_CACHE_CAPACITY);
        let r = store(2);
        let s = store(2);
        r.insert_slice(&[rect2(1, 5, 1, 5)]).unwrap();
        s.insert_slice(&[rect2(1, 5, 1, 5), rect2(9, 12, 1, 2)])
            .unwrap();
        let re = ctx.epoch_for(&r);
        let se = ctx.epoch_for(&s);
        ctx.ensure_view(&r, &re, &[true, true], 1).unwrap();
        ctx.ensure_view(&s, &se, &[true, true], 1).unwrap();
        assert_eq!(view_of(&ctx.views, r.id()).len(), 1);
        assert_eq!(view_of(&ctx.views, s.id()).len(), 2);
        assert_eq!(ctx.views.len(), STORE_CACHE_CAPACITY);

        // The LRU case a FIFO cache gets wrong: a join whose first store's
        // view is the *oldest* cached entry and whose second store is new.
        // The hit must refresh recency so the miss evicts some other entry,
        // never the view just ensured.
        let oldest = ctx.views[0].store;
        let first = old
            .iter()
            .chain([&r, &s])
            .find(|st| st.id() == oldest)
            .unwrap();
        let fe = ctx.epoch_for(first);
        let fresh = store(2);
        let fresh_epoch = ctx.epoch_for(&fresh);
        ctx.ensure_view(first, &fe, &[false, false], 1).unwrap();
        ctx.ensure_view(&fresh, &fresh_epoch, &[false, false], 1)
            .unwrap();
        assert!(ctx.views.iter().any(|v| v.store == first.id()));
        let _ = view_of(&ctx.views, first.id());
        let _ = view_of(&ctx.views, fresh.id());
    }

    #[test]
    fn pool_hands_out_contexts_concurrently() {
        let pool = Arc::new(ContextPool::<2>::new(3));
        assert_eq!(pool.workers(), 3);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..50 {
                        pool.with(|ctx| {
                            let _ = &mut ctx.query;
                        });
                    }
                });
            }
        });
    }
}

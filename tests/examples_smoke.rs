//! Smoke test: every example under `examples/` must build and run to
//! completion, so the facade re-exports they exercise cannot silently rot.
//!
//! Runs the examples through `cargo run --release` (the release artifacts
//! are normally already present from the tier-1 build, so the marginal cost
//! is one example compile each). Spawning cargo from a test is safe: the
//! build lock is released while tests execute.

use std::process::Command;

/// Enumerates `examples/*.rs` so a newly added example is covered without
/// editing this test.
fn example_names() -> Vec<String> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("read examples/ directory")
        .filter_map(|entry| {
            let path = entry.expect("read examples/ entry").path();
            (path.extension().is_some_and(|e| e == "rs"))
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
}

#[test]
fn all_examples_run() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let examples = example_names();
    assert!(
        examples.len() >= 4,
        "expected at least the four seed examples, found {examples:?}"
    );
    for example in &examples {
        let output = Command::new(&cargo)
            .args(["run", "--release", "--quiet", "--example", example])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` produced no output"
        );
    }
}

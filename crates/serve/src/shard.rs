//! A single shard of a [`crate::store::ShardedStore`]: one [`SketchSet`]
//! over the store's shared schema, plus the coverage metadata the router's
//! pruned mode selects shards by.

use geometry::{HyperRect, Interval};
use sketch::{Result, SketchSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard: a sketch set summarizing the objects routed to this shard's
/// partition region, and a monotone coverage bounding box.
///
/// Shards are immutable once published (ingest clones the affected shard,
/// updates the clone — the *staging* shard — and swaps it into a new store
/// epoch), so readers can hold a shard across an entire query without any
/// lock. The one exception is the query tally, a relaxed atomic the router
/// bumps on the read path — load telemetry, not shard state.
#[derive(Debug)]
pub struct SketchShard<const D: usize> {
    sketch: SketchSet<D>,
    /// Bounding box of every object ever referenced by an update, in data
    /// coordinates. A **monotone over-approximation**: deletes never shrink
    /// it (a shrinking box could unsoundly prune a shard whose counters
    /// still carry the delete's contribution).
    coverage: Option<HyperRect<D>>,
    /// Gross number of objects applied (inserts + deletes). Zero guarantees
    /// all-zero counters, which is the only *exact* skip condition: a net
    /// length of zero can hide nonzero counters (insert A, delete B).
    updates: u64,
    /// Queries the router selected this shard for — the read-side half of
    /// the load report feeding rebalance decisions. Relaxed: a tally, not
    /// a synchronization point.
    queries: AtomicU64,
}

impl<const D: usize> Clone for SketchShard<D> {
    fn clone(&self) -> Self {
        Self {
            sketch: self.sketch.clone(),
            coverage: self.coverage,
            updates: self.updates,
            queries: AtomicU64::new(self.queries.load(Ordering::Relaxed)),
        }
    }
}

impl<const D: usize> SketchShard<D> {
    /// Wraps an empty sketch set as an untouched shard.
    pub fn new(sketch: SketchSet<D>) -> Self {
        Self {
            sketch,
            coverage: None,
            updates: 0,
            queries: AtomicU64::new(0),
        }
    }

    /// The shard's maintained sketch.
    pub fn sketch(&self) -> &SketchSet<D> {
        &self.sketch
    }

    /// The coverage bounding box (`None` until the first update).
    pub fn coverage(&self) -> Option<&HyperRect<D>> {
        self.coverage.as_ref()
    }

    /// Gross updates applied to this shard.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Queries the router has selected this shard for, across every epoch
    /// this shard has been carried through (ingest clones preserve the
    /// tally). Counts selection-pass decisions: in exact batch mode a whole
    /// batch routed in one pass bumps each selected shard once.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Bumps the query tally (router read path; relaxed — telemetry only).
    pub(crate) fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether no update ever touched this shard. Untouched shards have
    /// all-zero counters and can be skipped from any merge *exactly*.
    pub fn is_untouched(&self) -> bool {
        self.updates == 0
    }

    /// Whether the coverage box overlaps `q` under closed semantics (the
    /// sound predicate for both range overlap and stabbing containment).
    /// Untouched shards overlap nothing.
    pub fn covers(&self, q: &HyperRect<D>) -> bool {
        self.coverage.as_ref().is_some_and(|c| c.overlaps_plus(q))
    }

    /// Applies one signed batch to the staging copy: counters via the
    /// kernel ingest path, coverage grown to include every rectangle.
    /// All-or-nothing like [`SketchSet::update_slice`].
    pub(crate) fn apply(&mut self, rects: &[HyperRect<D>], delta: i64) -> Result<()> {
        self.sketch.update_slice(rects, delta)?;
        for r in rects {
            self.grow_coverage(r);
        }
        self.updates += rects.len() as u64;
        Ok(())
    }

    /// Restores the bookkeeping of a snapshotted shard (the query tally is
    /// process-local telemetry and starts fresh).
    pub(crate) fn with_restored_meta(
        sketch: SketchSet<D>,
        coverage: Option<HyperRect<D>>,
        updates: u64,
    ) -> Self {
        Self {
            sketch,
            coverage,
            updates,
            queries: AtomicU64::new(0),
        }
    }

    /// The shard owning both inputs' objects: counters merged linearly,
    /// coverage boxes unioned, update and query tallies summed. The
    /// counter merge is exact (sketches are linear), so a rebalancer can
    /// fuse two neighbouring shards without touching the update log.
    pub(crate) fn merged_with(&self, other: &Self) -> Result<Self> {
        let mut sketch = self.sketch.clone();
        sketch.merge_from(&other.sketch)?;
        let coverage = match (self.coverage, other.coverage) {
            (None, c) | (c, None) => c,
            (Some(a), Some(b)) => Some(HyperRect::new(std::array::from_fn(|d| {
                Interval::new(
                    a.range(d).lo().min(b.range(d).lo()),
                    a.range(d).hi().max(b.range(d).hi()),
                )
            }))),
        };
        Ok(Self {
            sketch,
            coverage,
            updates: self.updates + other.updates,
            queries: AtomicU64::new(self.queries() + other.queries()),
        })
    }

    fn grow_coverage(&mut self, r: &HyperRect<D>) {
        self.coverage = Some(match self.coverage {
            None => *r,
            Some(c) => HyperRect::new(std::array::from_fn(|d| {
                Interval::new(
                    c.range(d).lo().min(r.range(d).lo()),
                    c.range(d).hi().max(r.range(d).hi()),
                )
            })),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketch::{ie_words, BoostShape, DimSpec, EndpointPolicy, SketchSchema};
    use std::sync::Arc;

    fn shard() -> SketchShard<2> {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            fourwise::XiKind::Bch,
            BoostShape::new(4, 3),
            [DimSpec::dyadic(8); 2],
        );
        SketchShard::new(SketchSet::new(
            schema,
            Arc::new(ie_words::<2>()),
            EndpointPolicy::Raw,
        ))
    }

    #[test]
    fn coverage_grows_monotonically_and_survives_deletes() {
        let mut s = shard();
        assert!(s.is_untouched());
        assert!(!s.covers(&rect2(0, 255, 0, 255)));
        s.apply(&[rect2(10, 20, 30, 40)], 1).unwrap();
        assert_eq!(s.coverage().unwrap(), &rect2(10, 20, 30, 40));
        s.apply(&[rect2(5, 12, 35, 90)], 1).unwrap();
        assert_eq!(s.coverage().unwrap(), &rect2(5, 20, 30, 90));
        // Deleting everything zeroes counters but not coverage or updates.
        s.apply(&[rect2(10, 20, 30, 40), rect2(5, 12, 35, 90)], -1)
            .unwrap();
        assert!(s.sketch().is_empty());
        assert!(!s.is_untouched());
        assert_eq!(s.coverage().unwrap(), &rect2(5, 20, 30, 90));
        assert_eq!(s.updates(), 4);
        // Closed-overlap coverage test (touching counts).
        assert!(s.covers(&rect2(20, 25, 90, 99)));
        assert!(!s.covers(&rect2(21, 25, 91, 99)));
    }

    #[test]
    fn failed_apply_leaves_shard_untouched() {
        let mut s = shard();
        assert!(s
            .apply(&[rect2(0, 5, 0, 5), rect2(0, 999, 0, 5)], 1)
            .is_err());
        assert!(s.is_untouched());
        assert!(s.coverage().is_none());
    }
}

//! Streaming scenario: selectivity tracking over a spatial update stream
//! with inserts *and deletes*.
//!
//! The paper's motivating property (Sections 1 and 9): sketches are linear,
//! so a single pass over an update stream — environmental sensor coverage
//! areas appearing and disappearing, say — maintains the join-size summary
//! exactly, something samples and non-grid histograms cannot do. This
//! example drives a churn stream against two relations and reports the
//! estimated vs exact join size at checkpoints.
//!
//! Run with: `cargo run --release --example streaming_spatial`

use rand::SeedableRng;
use spatial_sketch::datagen::{churn_stream, replay, SyntheticSpec, Update};
use spatial_sketch::exact;
use spatial_sketch::geometry::HyperRect;
use spatial_sketch::sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use spatial_sketch::sketch::estimators::SketchConfig;
use spatial_sketch::sketch::plan;

fn main() {
    let bits = 12u32;
    // A fixed reference relation S (deployed monitoring regions)...
    let s_data: Vec<HyperRect<2>> = SyntheticSpec::paper(8_000, bits, 0.0, 11).generate();
    // ... and a churning relation R (active sensor coverage areas).
    let r_base: Vec<HyperRect<2>> = SyntheticSpec::paper(6_000, bits, 0.4, 12).generate();
    let stream = churn_stream(&r_base, 12_000, 0.45, 13);
    println!(
        "stream: {} updates over a base of {} objects (~45% deletes after warm-up)",
        stream.len(),
        r_base.len()
    );

    let mean_extent: f64 = r_base
        .iter()
        .chain(s_data.iter())
        .map(|x| 3.0 * (x.range(0).length() + x.range(1).length()) as f64 / 2.0)
        .sum::<f64>()
        / (r_base.len() + s_data.len()) as f64;
    let max_level = plan::adaptive_max_level(mean_extent, bits + 2);
    let config = SketchConfig::new(700, 5).with_max_level(max_level);
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);

    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    for x in &s_data {
        sk_s.insert(x).expect("S insert");
    }

    println!(
        "\n{:>8}  {:>8}  {:>10}  {:>10}  {:>8}",
        "update#", "live |R|", "exact", "estimate", "rel err"
    );
    let checkpoints = 6;
    let step = stream.len() / checkpoints;
    for (i, chunk) in stream.chunks(step).enumerate() {
        for u in chunk {
            match u {
                Update::Insert(r) => sk_r.insert(r).expect("insert"),
                Update::Delete(r) => sk_r.delete(r).expect("delete"),
            }
        }
        let seen = (i + 1) * chunk.len().min(step);
        let live = replay(&stream[..(i * step + chunk.len()).min(stream.len())]);
        let exact_now = exact::rect_join_count(&live, &s_data) as f64;
        let est = join.estimate(&sk_r, &sk_s).expect("estimate").value;
        let rel = if exact_now > 0.0 {
            (est - exact_now).abs() / exact_now
        } else {
            est.abs()
        };
        println!(
            "{seen:>8}  {:>8}  {exact_now:>10.0}  {est:>10.0}  {rel:>8.3}",
            live.len()
        );
    }

    println!("\nThe sketch tracked the live multiset through deletions with no rebuild —");
    println!("its state is a linear function of the current contents, nothing else.");
}

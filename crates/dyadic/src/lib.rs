//! # dyadic — dyadic interval machinery for spatial sketches
//!
//! The dyadic sketches of *Approximation Techniques for Spatial Data*
//! (Section 3.1) replace the per-coordinate ξ variables of the naive
//! ("standard") spatial sketch with one ξ variable per *dyadic interval*,
//! cutting the per-interval update cost from `O(n)` to `O(log n)` while
//! preserving the point-in-interval counting identity (Lemma 4).
//!
//! This crate provides:
//!
//! * [`node::DyadicDomain`] — the complete binary tree of dyadic intervals
//!   over a power-of-two domain, heap-indexed so covers are branch-free;
//! * [`cover`] — interval covers (Lemma 2, the segment-tree decomposition),
//!   point covers (Lemma 3), and the `maxLevel` truncation of Section 6.5
//!   which interpolates between the standard sketch (`maxLevel = 0`) and the
//!   fully dyadic sketch (`maxLevel = log2 n`);
//! * [`freq`] — exact cover-frequency maps `f(δ)` and self-join sizes
//!   `SJ = Σ f(δ)²` (Equation 5), the quantities that drive all of the
//!   paper's variance bounds and space planning;
//! * [`partition`] — dyadic-aligned domain partitioning for sharded sketch
//!   stores: contiguous shard spans on slab boundaries, with cover-clean
//!   interval splitting (the serving layer's routing substrate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod freq;
pub mod node;
pub mod partition;

pub use cover::{interval_cover, interval_cover_into, point_cover, point_cover_into};
pub use node::{DyadicDomain, NodeId};
pub use partition::DomainPartition;

//! A unified interface over the available four-wise independent generators.
//!
//! Sketch schemas pick a [`XiKind`] once; every atomic sketch instance then
//! draws its own [`XiSeed`] and evaluates variables through [`XiFamily`].
//! The interface is shaped around the sketch hot loop: callers first
//! precompute per-index data shared by *all* instances (the GF(2^k) cube for
//! the BCH family, see [`IndexPre`]), then evaluate each instance's variable
//! with a few word operations.

use crate::bch::{BchFamily, BchSeed};
use crate::gf2::GfContext;
use crate::poly::{PolyFamily, PolySeed};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Largest index-space size (in bits) for which [`XiContext`] eagerly
/// tabulates all GF(2^k) cubes (2^21 entries = 16 MiB). Above this the cube
/// is computed on the fly per index.
pub const CUBE_TABLE_MAX_BITS: u32 = 21;

/// Which four-wise independent construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum XiKind {
    /// BCH over GF(2^k): the paper's construction; seed is exactly `2k+1`
    /// bits, exactly unbiased, and index cubes are shared across instances.
    #[default]
    Bch,
    /// Random cubic polynomial over Z_{2^61-1}; see [`crate::poly`].
    Poly,
}

/// Seed for one family instance, tagged by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XiSeed {
    /// Seed of a BCH family.
    Bch(BchSeed),
    /// Seed of a cubic-polynomial family.
    Poly(PolySeed),
}

impl XiSeed {
    /// Draws a random seed of the given kind for a domain of `2^k` indices.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, kind: XiKind, k: u32) -> Self {
        match kind {
            XiKind::Bch => XiSeed::Bch(BchSeed::random(rng, k)),
            XiKind::Poly => XiSeed::Poly(PolySeed::random(rng)),
        }
    }

    /// The construction this seed belongs to.
    pub fn kind(&self) -> XiKind {
        match self {
            XiSeed::Bch(_) => XiKind::Bch,
            XiSeed::Poly(_) => XiKind::Poly,
        }
    }
}

/// Precomputed per-index data shared by every instance over the same domain.
///
/// For the BCH family this holds `i^3` in GF(2^k); computing it once per
/// index per update (instead of once per index per *instance*) is what makes
/// maintaining thousands of instances affordable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexPre {
    /// The index itself.
    pub index: u64,
    /// `index^3` in GF(2^k) (0 for non-BCH kinds, unused).
    pub cube: u64,
}

/// Shared, instance-independent evaluation context for a domain of `2^k`
/// indices.
///
/// For BCH families over moderate domains (`k <=` [`CUBE_TABLE_MAX_BITS`])
/// the context eagerly tabulates `i³` for every index — cubes are
/// seed-independent, so this one table serves every sketch instance and
/// turns the per-index precomputation into an array load.
#[derive(Debug, Clone)]
pub struct XiContext {
    kind: XiKind,
    k: u32,
    gf: Option<GfContext>,
    cube_table: Option<Arc<[u64]>>,
}

impl XiContext {
    /// Creates a context of the given kind for indices in `[0, 2^k)`.
    pub fn new(kind: XiKind, k: u32) -> Self {
        let gf = match kind {
            XiKind::Bch => Some(GfContext::new(k)),
            XiKind::Poly => None,
        };
        let cube_table = match gf {
            Some(gf) if k <= CUBE_TABLE_MAX_BITS => {
                let table: Vec<u64> = (0..(1u64 << k)).map(|i| gf.cube(i)).collect();
                Some(Arc::from(table.into_boxed_slice()))
            }
            _ => None,
        };
        Self {
            kind,
            k,
            gf,
            cube_table,
        }
    }

    /// The construction kind.
    pub fn kind(&self) -> XiKind {
        self.kind
    }

    /// Domain bits `k`.
    pub fn bits(&self) -> u32 {
        self.k
    }

    /// Precomputes the shared per-index data.
    #[inline]
    pub fn precompute(&self, index: u64) -> IndexPre {
        let cube = match (&self.cube_table, &self.gf) {
            (Some(table), _) => table[index as usize],
            (None, Some(gf)) => gf.cube(index),
            (None, None) => 0,
        };
        IndexPre { index, cube }
    }

    /// Instantiates a family from a seed drawn for this context.
    ///
    /// # Panics
    ///
    /// Panics if the seed kind does not match the context kind.
    pub fn family(&self, seed: XiSeed) -> XiFamily {
        match (seed, self.gf) {
            (XiSeed::Bch(s), Some(gf)) => XiFamily::Bch(BchFamily::new(s, gf)),
            (XiSeed::Poly(s), None) => XiFamily::Poly(PolyFamily::new(s)),
            _ => panic!("xi seed kind does not match context kind"),
        }
    }

    /// Draws a fresh random seed appropriate for this context.
    pub fn random_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> XiSeed {
        XiSeed::random(rng, self.kind, self.k)
    }
}

/// One instantiated four-wise independent family.
#[derive(Debug, Clone, Copy)]
pub enum XiFamily {
    /// BCH-over-GF(2^k) family.
    Bch(BchFamily),
    /// Cubic-polynomial family.
    Poly(PolyFamily),
}

impl XiFamily {
    /// Evaluates `xi_i` (+1 or -1) with the shared precomputation.
    #[inline(always)]
    pub fn xi_pre(&self, pre: IndexPre) -> i64 {
        match self {
            XiFamily::Bch(f) => f.xi_with_cube(pre.index, pre.cube),
            XiFamily::Poly(f) => f.xi(pre.index),
        }
    }

    /// Evaluates `xi_i` standalone (computes any per-index data itself).
    #[inline]
    pub fn xi(&self, i: u64) -> i64 {
        match self {
            XiFamily::Bch(f) => f.xi(i),
            XiFamily::Poly(f) => f.xi(i),
        }
    }

    /// Sums `xi` over a precomputed index list — the inner loop of sketch
    /// updates (covers are short: O(log n) entries).
    #[inline]
    pub fn sum_pre(&self, pres: &[IndexPre]) -> i64 {
        match self {
            XiFamily::Bch(f) => {
                let mut acc = 0i64;
                for p in pres {
                    acc += f.xi_with_cube(p.index, p.cube);
                }
                acc
            }
            XiFamily::Poly(f) => {
                let mut acc = 0i64;
                for p in pres {
                    acc += f.xi(p.index);
                }
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn context_roundtrip_both_kinds() {
        let mut rng = StdRng::seed_from_u64(21);
        for kind in [XiKind::Bch, XiKind::Poly] {
            let ctx = XiContext::new(kind, 14);
            let seed = ctx.random_seed(&mut rng);
            assert_eq!(seed.kind(), kind);
            let fam = ctx.family(seed);
            for i in [0u64, 1, 77, 16383] {
                let pre = ctx.precompute(i);
                assert_eq!(fam.xi(i), fam.xi_pre(pre));
                assert!(fam.xi(i) == 1 || fam.xi(i) == -1);
            }
        }
    }

    #[test]
    fn sum_pre_matches_loop() {
        let mut rng = StdRng::seed_from_u64(22);
        let ctx = XiContext::new(XiKind::Bch, 10);
        let fam = ctx.family(ctx.random_seed(&mut rng));
        let pres: Vec<IndexPre> = (0..100u64).map(|i| ctx.precompute(i)).collect();
        let expect: i64 = pres.iter().map(|p| fam.xi(p.index)).sum();
        assert_eq!(fam.sum_pre(&pres), expect);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_seed_kind_panics() {
        let mut rng = StdRng::seed_from_u64(23);
        let bch_ctx = XiContext::new(XiKind::Bch, 8);
        let poly_ctx = XiContext::new(XiKind::Poly, 8);
        let seed = poly_ctx.random_seed(&mut rng);
        let _ = bch_ctx.family(seed);
    }

    #[test]
    fn deterministic_given_seed() {
        let ctx = XiContext::new(XiKind::Bch, 12);
        let seed = XiSeed::Bch(crate::bch::BchSeed {
            b0: true,
            s1: 0b1010_1010_1010,
            s3: 0b0110_0110_0110,
        });
        let f1 = ctx.family(seed);
        let f2 = ctx.family(seed);
        for i in 0..4096u64 {
            assert_eq!(f1.xi(i), f2.xi(i));
        }
    }
}

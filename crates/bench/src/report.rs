//! Result reporting: aligned console tables, CSV series files and JSON
//! experiment records under the workspace `results/` directory.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Workspace-level results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Creates a file's parent directory right before writing. `results/` is
/// gitignored, so it is absent on a fresh clone — and it can disappear
/// between a path lookup and the write (a cleanup script, a caller caching
/// the path). Every writer below goes through this instead of trusting an
/// earlier [`results_dir`] call.
fn ensure_parent(path: &Path) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create results directory");
    }
}

/// A rectangular table of experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Convenience: formats a numeric row.
    pub fn push_nums(&mut self, row: &[f64]) {
        self.push_row(row.iter().map(|v| format_num(*v)).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV into `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> PathBuf {
        let path = results_dir().join(format!("{name}.csv"));
        ensure_parent(&path);
        let mut body = self.headers.join(",");
        body.push('\n');
        for row in &self.rows {
            body.push_str(&row.join(","));
            body.push('\n');
        }
        fs::write(&path, body).expect("write csv");
        path
    }
}

/// Human-friendly numeric formatting: integers plain, small reals with
/// four significant decimals.
pub fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Writes a JSON experiment record into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, record: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    ensure_parent(&path);
    let body = serde_json::to_string_pretty(record).expect("serialize record");
    fs::write(&path, body).expect("write json");
    path
}

/// Appends a JSON experiment record to `results/<name>.json`, keeping the
/// file a JSON *array* with one entry per run so successive probe runs are
/// diffable instead of overwriting each other. A pre-existing single-record
/// file (the old `write_json` format) is absorbed as the first entry; an
/// unparseable file is moved aside to `<name>.json.corrupt` (never silently
/// discarded) before a fresh array is started.
pub fn append_json<T: Serialize>(name: &str, record: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let mut records: Vec<serde::Value> = match fs::read_to_string(&path) {
        Ok(text) => match serde_json::parse_value(&text) {
            Ok(serde::Value::Seq(entries)) => entries,
            Ok(single) => vec![single],
            Err(e) => {
                let aside = results_dir().join(format!("{name}.json.corrupt"));
                fs::rename(&path, &aside).expect("preserve unparseable records file");
                eprintln!(
                    "warning: {} was not valid JSON ({e}); moved to {} and starting fresh",
                    path.display(),
                    aside.display()
                );
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };
    records.push(serde::ser::to_value(record).expect("serialize record"));
    let body = serde_json::to_string_pretty(&records).expect("serialize records");
    ensure_parent(&path);
    fs::write(&path, body).expect("write json");
    path
}

/// Relative error of an estimate against the truth (`|est - truth| / truth`);
/// if the truth is zero, returns the absolute estimate (a sensible scale-free
/// fallback for empty joins).
pub fn rel_error(est: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        est.abs()
    } else {
        (est - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["size", "err"]);
        t.push_nums(&[1000.0, 0.123456]);
        t.push_nums(&[50.0, 1.0]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("size"));
        assert!(s.contains("0.1235"));
        assert!(s.contains("1000"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn rel_error_cases() {
        assert_eq!(rel_error(110.0, 100.0), 0.1);
        assert_eq!(rel_error(90.0, 100.0), 0.1);
        assert_eq!(rel_error(5.0, 0.0), 5.0);
    }

    #[test]
    fn format_variants() {
        assert_eq!(format_num(12.0), "12");
        assert_eq!(format_num(0.5), "0.5000");
        assert_eq!(format_num(1234.5), "1234.5");
    }

    #[test]
    fn ensure_parent_creates_missing_dirs() {
        let root =
            std::env::temp_dir().join(format!("spatial_bench_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let path = root.join("nested").join("probe.json");
        assert!(!root.exists());
        ensure_parent(&path);
        std::fs::write(&path, "[]").expect("dir was created, write succeeds");
        // Idempotent on an existing directory.
        ensure_parent(&path);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn append_json_accumulates_records() {
        #[derive(serde::Serialize)]
        struct Rec {
            run: u32,
        }
        let name = "append_json_test";
        let path = results_dir().join(format!("{name}.json"));
        let _ = std::fs::remove_file(&path);
        // Legacy single-record file is absorbed as the first entry.
        write_json(name, &Rec { run: 0 });
        append_json(name, &Rec { run: 1 });
        append_json(name, &Rec { run: 2 });
        let text = std::fs::read_to_string(&path).unwrap();
        let runs: Vec<Rec2> = serde_json::from_str(&text).unwrap();
        assert_eq!(runs.iter().map(|r| r.run).collect::<Vec<_>>(), [0, 1, 2]);

        // A corrupt file is preserved aside, not silently discarded.
        std::fs::write(&path, "{not json").unwrap();
        append_json(name, &Rec { run: 9 });
        let aside = results_dir().join(format!("{name}.json.corrupt"));
        assert_eq!(std::fs::read_to_string(&aside).unwrap(), "{not json");
        let runs: Vec<Rec2> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(runs.iter().map(|r| r.run).collect::<Vec<_>>(), [9]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&aside);

        #[derive(serde::Deserialize)]
        struct Rec2 {
            run: u32,
        }
    }
}

//! The concurrent query router: compile once, select shards, merge
//! exactly, estimate.
//!
//! ## Why the merge happens at the counter level
//!
//! Boosting (mean-then-median) is nonlinear and pair estimators are
//! *bilinear* in the two sides' counters, so per-shard boosted estimates
//! can never be combined correctly, and per-shard pair grids would lose
//! every cross-shard product term. The one merge point that is always
//! correct — and *exact* — is the maintained counters themselves: sketches
//! are linear, counters are `i64`, and integer addition is associative, so
//! the fold of the selected shards' counters is **bit-identical** to the
//! counters of one unsharded sketch over the same objects. Every router
//! answer is therefore bit-identical to a plain [`SketchSet`] estimate over
//! the selected shards' data; with [`RouterMode::Exact`] that is the whole
//! store (the unsharded-oracle property `crates/serve/tests/`
//! `differential_router.rs` pins down). The merged view is cached per
//! worker and epoch, so between ingests the router adds nothing to the
//! single-sketch hot path.
//!
//! Query-side compilation is cached too: the worker's [`QueryContext`]
//! memoizes compiled `XiQueryPlan`s per (schema, query), so a repeated
//! query is compiled once and fanned out from there.
//!
//! [`RouterMode::Pruned`] additionally restricts a range/stab query to the
//! shards whose coverage boxes overlap it — the distance-bounded deployment
//! mode: objects far from the query contribute only sketch noise, so
//! pruning them cuts merge cost *and* variance. Its answers are
//! bit-identical to an unsharded sketch of the selected shards' objects,
//! not of the full store.
//!
//! [`QueryContext`]: sketch::QueryContext

use crate::context::{view_of, WorkerContext};
use crate::store::{ShardedStore, StoreEpoch};
use geometry::{HyperRect, Point};
use sketch::estimators::joins::SpatialJoin;
use sketch::{BatchQuery, Estimate, PartialEstimate, RangeQuery, Result, SketchSet};

/// How the router selects the shards a query merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterMode {
    /// Merge every shard that was ever touched (untouched shards have
    /// all-zero counters and are skipped — an exact no-op). Answers are
    /// bit-identical to a single unsharded sketch of the full store.
    #[default]
    Exact,
    /// Merge only the touched shards whose coverage boxes overlap the
    /// query (closed semantics; sound because coverage is a monotone
    /// over-approximation of every object a shard's counters reference).
    /// Lower-variance (far objects contribute only sketch noise), and
    /// cheaper *when the query footprint is stable*: the worker caches one
    /// merged view per store, so a stream alternating between different
    /// shard selections re-folds the view on every switch — workloads with
    /// a churning footprint should prefer [`RouterMode::Exact`], whose
    /// selection never varies within an epoch. Answers equal an unsharded
    /// sketch of the selected shards' objects.
    Pruned,
}

/// A query router over [`ShardedStore`]s; cheap to construct and `Copy`-
/// light, typically one per service configuration.
#[derive(Debug, Clone, Copy)]
pub struct QueryRouter {
    mode: RouterMode,
    merge_threads: usize,
}

impl Default for QueryRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryRouter {
    /// An [`RouterMode::Exact`] router with single-threaded merges.
    pub fn new() -> Self {
        Self {
            mode: RouterMode::Exact,
            merge_threads: 1,
        }
    }

    /// Sets the shard-selection mode (builder form).
    pub fn with_mode(mut self, mode: RouterMode) -> Self {
        self.mode = mode;
        self
    }

    /// Uses `threads` workers for cross-shard counter merges (worthwhile
    /// for many-instance schemas; merges are integer folds, so the result
    /// is identical at any thread count).
    pub fn with_merge_threads(mut self, threads: usize) -> Self {
        self.merge_threads = threads.max(1);
        self
    }

    /// The shard-selection mode.
    pub fn mode(&self) -> RouterMode {
        self.mode
    }

    /// The shard-selection mask this router would use for a query against
    /// `epoch` (`None` = a query without a spatial footprint, e.g. a join
    /// side). Exposed for tests and diagnostics; the serving paths fill a
    /// worker-owned scratch via `QueryRouter::selection_into` instead.
    pub fn selection<const D: usize>(
        &self,
        epoch: &StoreEpoch<D>,
        q: Option<&HyperRect<D>>,
    ) -> Vec<bool> {
        let mut mask = Vec::new();
        self.selection_into(epoch, q, &mut mask);
        mask
    }

    /// Fills `mask` with the shard selection (cleared first), so warm
    /// serving paths reuse one buffer instead of allocating per query.
    ///
    /// Each selected shard's query tally is bumped here — the read-side
    /// half of [`crate::rebalance::ShardLoadReport`]. Tallies count
    /// selection passes, so an exact-mode batch (one pass for the whole
    /// batch) counts once per selected shard, and diagnostics through
    /// [`QueryRouter::selection`] count too — load telemetry, not an exact
    /// query ledger.
    fn selection_into<const D: usize>(
        &self,
        epoch: &StoreEpoch<D>,
        q: Option<&HyperRect<D>>,
        mask: &mut Vec<bool>,
    ) {
        mask.clear();
        mask.extend(epoch.shards().iter().map(|s| {
            if s.is_untouched() {
                return false;
            }
            let selected = match (self.mode, q) {
                (RouterMode::Exact, _) | (RouterMode::Pruned, None) => true,
                (RouterMode::Pruned, Some(q)) => s.covers(q),
            };
            if selected {
                s.record_query();
            }
            selected
        }));
    }

    /// Brings `store`'s merged view in `ctx` up to date for the selection
    /// of `q`, cycling the worker's mask scratch.
    fn route<const D: usize>(
        &self,
        store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
        q: Option<&HyperRect<D>>,
    ) -> Result<()> {
        let epoch = ctx.epoch_for(store);
        let mut mask = std::mem::take(&mut ctx.mask);
        self.selection_into(&epoch, q, &mut mask);
        let res = ctx.ensure_view(store, &epoch, &mask, self.merge_threads);
        ctx.mask = mask;
        res
    }

    /// Routes a range-selectivity estimate: selects shards, reuses (or
    /// folds) the worker's merged view, and evaluates through the worker's
    /// plan-caching [`sketch::QueryContext`].
    pub fn estimate_range<const D: usize>(
        &self,
        rq: &RangeQuery<D>,
        store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
        q: &HyperRect<D>,
    ) -> Result<Estimate> {
        self.route(store, ctx, Some(q))?;
        let (query, views) = ctx.split();
        rq.estimate_with(query, view_of(views, store.id()), q)
    }

    /// Routes a stabbing-count estimate.
    pub fn estimate_stab<const D: usize>(
        &self,
        rq: &RangeQuery<D>,
        store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
        p: &Point<D>,
    ) -> Result<Estimate> {
        let footprint = HyperRect::from_point(*p);
        self.route(store, ctx, Some(&footprint))?;
        let (query, views) = ctx.split();
        rq.estimate_stab_with(query, view_of(views, store.id()), p)
    }

    /// Routes a whole batch of range/stab estimates against one store,
    /// answering it in as few kernel sweeps as the shard selections allow
    /// (see [`RangeQuery::estimate_batch_with`] — answers are bit-identical
    /// to the corresponding single-query routes).
    ///
    /// With [`RouterMode::Exact`] the shard selection is
    /// footprint-independent, so the whole batch shares one merged view and
    /// one multi-query sweep. With [`RouterMode::Pruned`] queries are
    /// grouped by their shard selection; each group shares a view and a
    /// sweep, preserving per-group pruning exactly.
    pub fn estimate_batch<const D: usize>(
        &self,
        rq: &RangeQuery<D>,
        store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
        queries: &[BatchQuery<D>],
    ) -> Vec<Result<Estimate>> {
        if queries.is_empty() {
            return Vec::new();
        }
        match self.mode {
            RouterMode::Exact => {
                // Exact selection ignores the footprint: one route serves
                // the whole batch.
                if let Err(e) = self.route(store, ctx, None) {
                    return queries.iter().map(|_| Err(e.clone())).collect();
                }
                let (query, views) = ctx.split();
                rq.estimate_batch_with(query, view_of(views, store.id()), queries)
            }
            RouterMode::Pruned => {
                let epoch = ctx.epoch_for(store);
                let mut results: Vec<Option<Result<Estimate>>> =
                    (0..queries.len()).map(|_| None).collect();
                // Group queries by shard selection; batches are small
                // (`max_batch`-bounded upstream), so a linear scan over the
                // distinct masks beats hashing them.
                let mut masks: Vec<Vec<bool>> = Vec::new();
                let mut groups: Vec<Vec<usize>> = Vec::new();
                let mut mask = std::mem::take(&mut ctx.mask);
                for (i, q) in queries.iter().enumerate() {
                    let footprint = match q {
                        BatchQuery::Range(rect) => *rect,
                        BatchQuery::Stab(p) => HyperRect::from_point(*p),
                    };
                    self.selection_into(&epoch, Some(&footprint), &mut mask);
                    match masks.iter().position(|m| *m == mask) {
                        Some(g) => groups[g].push(i),
                        None => {
                            masks.push(mask.clone());
                            groups.push(vec![i]);
                        }
                    }
                }
                ctx.mask = mask;
                let mut sub = std::mem::take(&mut ctx.batch);
                for (m, idxs) in masks.iter().zip(&groups) {
                    if let Err(e) = ctx.ensure_view(store, &epoch, m, self.merge_threads) {
                        for &i in idxs {
                            results[i] = Some(Err(e.clone()));
                        }
                        continue;
                    }
                    sub.clear();
                    sub.extend(idxs.iter().map(|&i| queries[i]));
                    let (query, views) = ctx.split();
                    let answers = rq.estimate_batch_with(query, view_of(views, store.id()), &sub);
                    for (&i, a) in idxs.iter().zip(answers) {
                        results[i] = Some(a);
                    }
                }
                ctx.batch = sub;
                results
                    .into_iter()
                    .map(|r| r.expect("every query grouped"))
                    .collect()
            }
        }
    }

    /// Routes a range-selectivity estimate but stops **before boosting**,
    /// returning the shard-merged partial grid — the mergeable form a
    /// distributed scatter-gather path ships from a store node to its
    /// router (see [`crate::cluster`]). Boosting the result of a single
    /// node's partial is bit-identical to [`QueryRouter::estimate_range`];
    /// merging partials from *several* nodes is deterministic in a fixed
    /// merge order but sums in `f64`, so it is unbiased rather than
    /// bit-identical to a one-node counter merge (see
    /// [`PartialEstimate`]'s merge rules).
    pub fn partial_range<const D: usize>(
        &self,
        rq: &RangeQuery<D>,
        store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
        q: &HyperRect<D>,
    ) -> Result<PartialEstimate> {
        self.route(store, ctx, Some(q))?;
        let (query, views) = ctx.split();
        rq.estimate_partial_with(query, view_of(views, store.id()), q)
    }

    /// Routes a stabbing-count estimate, unboosted — the stabbing
    /// counterpart of [`QueryRouter::partial_range`].
    pub fn partial_stab<const D: usize>(
        &self,
        rq: &RangeQuery<D>,
        store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
        p: &Point<D>,
    ) -> Result<PartialEstimate> {
        let footprint = HyperRect::from_point(*p);
        self.route(store, ctx, Some(&footprint))?;
        let (query, views) = ctx.split();
        rq.estimate_stab_partial_with(query, view_of(views, store.id()), p)
    }

    /// Routes a spatial-join estimate over two sharded stores sharing the
    /// join's schema. Joins are bilinear, so both sides merge *all* touched
    /// shards regardless of mode (there is no sound per-query spatial
    /// pruning without a join predicate region).
    pub fn estimate_join<const D: usize>(
        &self,
        join: &SpatialJoin<D>,
        r_store: &ShardedStore<D>,
        s_store: &ShardedStore<D>,
        ctx: &mut WorkerContext<D>,
    ) -> Result<Estimate> {
        // Both views are ensured before either is looked up: ensuring the
        // second may evict an *older* cache entry and shift positions, so
        // views resolve by store id, never by index.
        self.route(r_store, ctx, None)?;
        self.route(s_store, ctx, None)?;
        let (query, views) = ctx.split();
        join.estimate_with(
            query,
            view_of(views, r_store.id()),
            view_of(views, s_store.id()),
        )
    }

    /// The merged sketch a query against `store` would currently evaluate
    /// over, as a fresh standalone [`SketchSet`] (diagnostics / snapshot
    /// hand-off; serving paths use the pooled cached views instead).
    pub fn collect<const D: usize>(
        &self,
        store: &ShardedStore<D>,
        q: Option<&HyperRect<D>>,
    ) -> Result<SketchSet<D>> {
        let epoch = store.load();
        let mask = self.selection(&epoch, q);
        let mut merged = store.empty_sketch();
        for (shard, selected) in epoch.shards().iter().zip(mask) {
            if selected {
                merged.merge_from(shard.sketch())?;
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardedStore;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use sketch::estimators::SketchConfig;
    use sketch::RangeStrategy;

    fn rects(n: usize, seed: u64, max: u64) -> Vec<HyperRect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0..max - 20);
                let y = rng.gen_range(0..max - 20);
                rect2(
                    x,
                    x + rng.gen_range(1..16u64),
                    y,
                    y + rng.gen_range(1..16u64),
                )
            })
            .collect()
    }

    #[test]
    fn exact_mode_bit_matches_unsharded_oracle() {
        let mut rng = StdRng::seed_from_u64(21);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let store = ShardedStore::like(&rq.new_sketch(), 3);
        let mut oracle = rq.new_sketch();
        let data = rects(80, 22, 255);
        store.insert_slice(&data).unwrap();
        oracle.insert_slice(&data).unwrap();

        let router = QueryRouter::new();
        let mut ctx = WorkerContext::new();
        let mut octx = sketch::QueryContext::new();
        for q in [
            rect2(10, 60, 10, 60),
            rect2(0, 255, 0, 255),
            rect2(200, 210, 5, 9),
        ] {
            let got = router.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
            let want = rq.estimate_with(&mut octx, &oracle, &q).unwrap();
            assert_eq!(got.value.to_bits(), want.value.to_bits());
            assert_eq!(got.row_means, want.row_means);
        }
        let p = [data[5].range(0).lo(), data[5].range(1).lo()];
        let got = router.estimate_stab(&rq, &store, &mut ctx, &p).unwrap();
        let want = rq.estimate_stab_with(&mut octx, &oracle, &p).unwrap();
        assert_eq!(got.value.to_bits(), want.value.to_bits());
    }

    #[test]
    fn pruned_mode_equals_oracle_over_selected_shards() {
        let mut rng = StdRng::seed_from_u64(23);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let store = ShardedStore::like(&rq.new_sketch(), 4);
        // Two well-separated clusters so pruning has something to skip.
        let left = rects(30, 24, 60);
        let right: Vec<HyperRect<2>> = rects(30, 25, 60)
            .into_iter()
            .map(|r| {
                rect2(
                    r.range(0).lo() + 192,
                    r.range(0).hi() + 192,
                    r.range(1).lo(),
                    r.range(1).hi(),
                )
            })
            .collect();
        store.insert_slice(&left).unwrap();
        store.insert_slice(&right).unwrap();

        let router = QueryRouter::new().with_mode(RouterMode::Pruned);
        let q = rect2(200, 250, 0, 60); // only the right cluster's shards
        let epoch = store.load();
        let mask = router.selection(&epoch, Some(&q));
        assert!(mask.iter().any(|&m| m), "selects something");
        assert!(!mask.iter().all(|&m| m), "prunes something");

        // Oracle over exactly the objects owned by the selected shards.
        let mut oracle = rq.new_sketch();
        for r in left.iter().chain(right.iter()) {
            if mask[store.partition().shard_of(r.range(0).lo())] {
                oracle.insert(r).unwrap();
            }
        }
        let mut ctx = WorkerContext::new();
        let got = router.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
        let want = rq.estimate(&oracle, &q).unwrap();
        assert_eq!(got.value.to_bits(), want.value.to_bits());
        assert_eq!(got.row_means, want.row_means);

        // `collect` reproduces the same merged counters.
        let merged = router.collect(&store, Some(&q)).unwrap();
        for inst in 0..rq.schema().instances() {
            assert_eq!(
                merged.instance_counters(inst),
                oracle.instance_counters(inst)
            );
        }
    }

    #[test]
    fn batched_routes_bit_match_single_query_routes() {
        let mut rng = StdRng::seed_from_u64(29);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let store = ShardedStore::like(&rq.new_sketch(), 4);
        store.insert_slice(&rects(80, 30, 255)).unwrap();
        let queries = vec![
            BatchQuery::Range(rect2(10, 60, 10, 60)),
            BatchQuery::Stab([15, 33]),
            BatchQuery::Range(rect2(0, 255, 0, 255)),
            BatchQuery::Range(rect2(10, 60, 10, 60)), // duplicate of slot 0
            BatchQuery::Range(rect2(0, 300, 0, 50)),  // out of domain: fails alone
            BatchQuery::Range(rect2(200, 210, 5, 9)),
        ];
        for mode in [RouterMode::Exact, RouterMode::Pruned] {
            let router = QueryRouter::new().with_mode(mode);
            let mut bctx = WorkerContext::new();
            let mut sctx = WorkerContext::new();
            let got = router.estimate_batch(&rq, &store, &mut bctx, &queries);
            assert_eq!(got.len(), queries.len());
            for (i, (q, g)) in queries.iter().zip(&got).enumerate() {
                let want = match q {
                    BatchQuery::Range(rect) => router.estimate_range(&rq, &store, &mut sctx, rect),
                    BatchQuery::Stab(p) => router.estimate_stab(&rq, &store, &mut sctx, p),
                };
                match (g, want) {
                    (Ok(g), Ok(want)) => {
                        assert_eq!(g.value.to_bits(), want.value.to_bits(), "{mode:?} slot {i}");
                        assert_eq!(g.row_means, want.row_means, "{mode:?} slot {i}");
                    }
                    (Err(g), Err(want)) => assert_eq!(g, &want, "{mode:?} slot {i}"),
                    (g, want) => panic!("{mode:?} slot {i}: batched {g:?} vs single {want:?}"),
                }
            }
        }
    }

    #[test]
    fn boosted_partials_bit_match_direct_estimates() {
        let mut rng = StdRng::seed_from_u64(31);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let store = ShardedStore::like(&rq.new_sketch(), 3);
        store.insert_slice(&rects(60, 32, 255)).unwrap();
        let router = QueryRouter::new();
        let mut ctx = WorkerContext::new();
        let q = rect2(20, 180, 5, 200);
        // One node's partial, boosted, IS the direct estimate: the partial
        // stops just short of the final (deterministic) boosting step.
        let partial = router.partial_range(&rq, &store, &mut ctx, &q).unwrap();
        let direct = router.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
        assert_eq!(partial.boost().value.to_bits(), direct.value.to_bits());
        assert_eq!(partial.boost().row_means, direct.row_means);
        let p = [30u64, 40u64];
        let partial = router.partial_stab(&rq, &store, &mut ctx, &p).unwrap();
        let direct = router.estimate_stab(&rq, &store, &mut ctx, &p).unwrap();
        assert_eq!(partial.boost().value.to_bits(), direct.value.to_bits());
    }

    #[test]
    fn selection_tallies_queries_per_shard() {
        let mut rng = StdRng::seed_from_u64(33);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(5, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let store = ShardedStore::like(&rq.new_sketch(), 2);
        store.insert_slice(&rects(20, 34, 255)).unwrap();
        let router = QueryRouter::new();
        let mut ctx = WorkerContext::new();
        let before: u64 = store.load().shards().iter().map(|s| s.queries()).sum();
        router
            .estimate_range(&rq, &store, &mut ctx, &rect2(0, 255, 0, 255))
            .unwrap();
        let after: u64 = store.load().shards().iter().map(|s| s.queries()).sum();
        assert_eq!(after - before, 2, "both touched shards tallied once");
    }

    #[test]
    fn untouched_and_emptied_stores_answer_zero_like_oracle() {
        let mut rng = StdRng::seed_from_u64(26);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(5, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let store = ShardedStore::like(&rq.new_sketch(), 3);
        let router = QueryRouter::new();
        let mut ctx = WorkerContext::new();
        let q = rect2(10, 50, 10, 50);
        let empty = router.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
        assert_eq!(empty.value, 0.0);
        // Insert then delete everything: counters cancel exactly, and the
        // (touched) shards still merge to the all-zero oracle.
        let data = rects(40, 27, 255);
        store.insert_slice(&data).unwrap();
        store.delete_slice(&data).unwrap();
        let after = router.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
        assert_eq!(after.value, 0.0);
        assert_eq!(store.load().total_len(), 0);
    }
}

//! The batched query kernel: block-evaluated estimation.
//!
//! Every estimator in the paper reduces to the same inner loop: per boosting
//! instance, form an atomic estimate `Z_i` — either a signed sum of counter
//! products (pair estimators: joins, containment, ε-join, self-join sizes)
//! or a sum of *query-side* ξ products against maintained counters (range
//! and stabbing queries) — then boost the grid of `Z_i` by mean-then-median
//! (§4.2). The build side bit-sliced this loop shape in PR 2
//! ([`fourwise::batch`]); this module does the same for estimation.
//!
//! Three interchangeable kernels fill the atomic grid ([`QueryKernel`]); all
//! produce **bit-identical** [`Estimate`]s (enforced by
//! `crates/core/tests/differential_estimators.rs`):
//!
//! * [`QueryKernel::Scalar`] — the reference path: walk instances one at a
//!   time, instantiate each instance's ξ families and evaluate covers
//!   per-instance (the query path), or form counter products with plain
//!   128-bit widening (the pair path). Kept as the differential oracle.
//! * [`QueryKernel::Batched`] — walk whole [`BLOCK_LANES`]-lane instance
//!   blocks: query-side cover node ids and their GF(2^k) cubes are computed
//!   **once per query**, evaluated for 64 instances per pass via the packed
//!   seed planes already stored in [`SketchSchema`] (per-lane sums through
//!   [`fourwise::BlockSums`]), and combined with the block's contiguous
//!   counter rows term-major — independent f64 accumulations across lanes
//!   instead of one serial chain per instance, and counter products take a
//!   64-bit fast path instead of the 128-bit soft-float conversion.
//! * [`QueryKernel::Wide`] — the same blocked kernel instantiated at the
//!   256-lane [`fourwise::WideLane`] width: four-word lane operations LLVM
//!   autovectorizes, and a quarter of the per-block fixed costs.
//! * [`QueryKernel::Wide512`] — the blocked kernel at the 512-lane
//!   [`fourwise::WideLane512`] width, an eighth of the per-block fixed
//!   costs; preferred by the runtime dispatcher only on CPUs reporting
//!   512-bit vector registers.
//!
//! The default ([`QueryKernel::Auto`]) resolves per estimate from the
//! sketch's schema through the shared dispatch chain ([`crate::kernel`]):
//! the `SKETCH_KERNEL` env override if set, otherwise the instance-count
//! width heuristic capped by runtime CPU detection.
//!
//! A [`QueryContext`] owns all the kernel scratch (atomic grid, lane sums,
//! boosting buffers) **plus a compiled-plan cache**: query-side
//! `XiQueryPlan`s are memoized per (schema, query) so a serving loop
//! issuing repeated queries skips cover compilation entirely and allocates
//! only the returned [`Estimate`] per call. One context serves every
//! estimator and every dimensionality.

use crate::atomic::SketchSet;
use crate::boost::{mean_median_with, Estimate};
use crate::estimator::Term;
use crate::kernel::{self, Width};
use crate::schema::{BoostShape, SchemaLanes};
use fourwise::{BlockSums, IndexPre, MultiBlockSums, WideLane, WideLane512};

#[cfg(doc)]
use fourwise::BLOCK_LANES;
use std::any::Any;
use std::sync::Arc;

#[cfg(doc)]
use crate::schema::SketchSchema;

/// Which implementation evaluates estimates over the instance grid.
///
/// All kernels compute bit-identical estimates — the scalar path is
/// retained as the differential-test oracle and the batched path as the
/// oracle for the wide path, mirroring [`crate::atomic::BuildKernel`] on
/// the build side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryKernel {
    /// Resolve per estimate from the sketch's schema: the `SKETCH_KERNEL`
    /// env override if set, otherwise a width heuristic on the instance
    /// count (see [`crate::kernel::WIDE_MIN_INSTANCES`]).
    #[default]
    Auto,
    /// Per-instance evaluation (the original reference path).
    Scalar,
    /// Bit-sliced evaluation of [`BLOCK_LANES`] instances per pass over the
    /// schema's packed seed planes, with block-contiguous counter walks.
    Batched,
    /// Bit-sliced evaluation of 256 instances per pass over the schema's
    /// [`fourwise::WideLane`]-packed seed planes.
    Wide,
    /// Bit-sliced evaluation of 512 instances per pass over the schema's
    /// [`fourwise::WideLane512`]-packed seed planes.
    Wide512,
}

impl QueryKernel {
    /// Resolves `Auto` against a schema's instance count; explicit kernels
    /// pass through unchanged. Never returns [`QueryKernel::Auto`].
    pub(crate) fn resolve(self, instances: usize) -> QueryKernel {
        match self {
            QueryKernel::Auto => match kernel::preferred(instances) {
                Width::Scalar => QueryKernel::Scalar,
                Width::Batched => QueryKernel::Batched,
                Width::Wide => QueryKernel::Wide,
                Width::Wide512 => QueryKernel::Wide512,
            },
            k => k,
        }
    }
}

/// Most compiled plans one [`QueryContext`] retains (least recently used
/// entries are evicted first). Plans are a few hundred bytes each.
const PLAN_CACHE_CAPACITY: usize = 64;

/// Most compiled [`MultiQueryPlan`]s one [`QueryContext`] retains. Merged
/// batch plans are keyed by the whole batch signature and can reach tens of
/// kilobytes each, so the cache is smaller than the single-plan one —
/// serving loops see few distinct batch compositions per worker.
const MULTI_PLAN_CACHE_CAPACITY: usize = 16;

/// Identity of a compiled query plan: the schema (which pins the ξ kind,
/// domain layout and maxLevel), the query class, and the query coordinates
/// the covers were compiled from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    schema_id: u64,
    class: u8,
    coords: Vec<u64>,
}

impl PlanKey {
    pub(crate) fn new(schema_id: u64, class: u8, coords: Vec<u64>) -> Self {
        Self {
            schema_id,
            class,
            coords,
        }
    }
}

/// Plan classes for [`PlanKey`] (disambiguate different covers compiled
/// from the same coordinates).
pub(crate) const PLAN_CLASS_OVERLAP: u8 = 0;
pub(crate) const PLAN_CLASS_STAB: u8 = 1;
/// A merged multi-query plan, keyed by the batch's unique-query signature.
pub(crate) const PLAN_CLASS_MULTI: u8 = 2;

/// Point-in-time counters of one compiled-plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (cover compilation skipped).
    pub hits: u64,
    /// Lookups that compiled a fresh plan.
    pub misses: u64,
    /// Entries dropped to make room (least recently used first).
    pub evictions: u64,
}

/// Counters of both of a [`QueryContext`]'s plan caches, reported next to
/// [`crate::kernel::dispatch_report`] by the bench probes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheReport {
    /// The single-query `XiQueryPlan` LRU.
    pub single: PlanCacheStats,
    /// The merged `MultiQueryPlan` LRU fed by the batch entry points.
    pub multi: PlanCacheStats,
}

/// A bounded LRU of compiled, type-erased query plans.
#[derive(Clone)]
struct PlanCache {
    /// Most recently used last; linear scans are fine at this capacity.
    entries: Vec<(PlanKey, Arc<dyn Any + Send + Sync>)>,
    capacity: usize,
    stats: PlanCacheStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(PLAN_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PlanCache {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
            stats: PlanCacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts a miss (and
    /// drops the stale entry) when the stored plan is of the wrong type —
    /// impossible for well-formed keys, handled defensively rather than
    /// serving a wrong-typed plan.
    fn lookup<T: Any + Send + Sync>(&mut self, key: &PlanKey) -> Option<Arc<T>> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == key) {
            let entry = self.entries.remove(pos);
            if let Ok(plan) = entry.1.clone().downcast::<T>() {
                self.entries.push(entry);
                self.stats.hits += 1;
                return Some(plan);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Caches a freshly compiled plan, evicting the least recently used
    /// entry at capacity.
    fn insert<T: Any + Send + Sync>(&mut self, key: PlanKey, plan: Arc<T>) {
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
        self.entries.push((key, plan as Arc<dyn Any + Send + Sync>));
    }
}

/// Reusable estimation scratch shared by every estimator: the atomic
/// estimate grid, the query-side per-lane sum banks (one per lane width),
/// the boosting buffers, and the compiled-plan cache. Construction-free to
/// share across dimensionalities — one context can serve a 2-d join and a
/// 4-d containment estimator back to back.
#[derive(Debug, Clone)]
pub struct QueryContext {
    kernel: QueryKernel,
    /// Atomic estimates, instance-major (`atomic[row * k1 + col]`).
    atomic: Vec<f64>,
    /// Row means of the last boost (copied into the returned [`Estimate`]).
    rows: Vec<f64>,
    /// Sort scratch for the median step.
    med: Vec<f64>,
    /// Query-side per-lane cover sums, one slot per (dimension, list) pair.
    sums: BlockSums<u64>,
    /// The wide kernel's sum bank.
    sums_wide: BlockSums<WideLane>,
    /// The 512-lane kernel's sum bank.
    sums_wide512: BlockSums<WideLane512>,
    /// The multi-query kernel's slot banks, one per lane width.
    msums: MultiBlockSums<u64>,
    msums_wide: MultiBlockSums<WideLane>,
    msums_wide512: MultiBlockSums<WideLane512>,
    /// Batched atomic grids, query-major (`atomic_multi[q * instances + i]`).
    atomic_multi: Vec<f64>,
    /// Compiled query plans, memoized per (schema, query).
    plans: PlanCache,
    /// Merged multi-query plans, memoized per batch signature.
    mplans: PlanCache,
}

impl Default for QueryContext {
    fn default() -> Self {
        Self {
            kernel: QueryKernel::default(),
            atomic: Vec::new(),
            rows: Vec::new(),
            med: Vec::new(),
            sums: BlockSums::new(),
            sums_wide: BlockSums::new(),
            sums_wide512: BlockSums::new(),
            msums: MultiBlockSums::new(),
            msums_wide: MultiBlockSums::new(),
            msums_wide512: MultiBlockSums::new(),
            atomic_multi: Vec::new(),
            plans: PlanCache::default(),
            mplans: PlanCache::with_capacity(MULTI_PLAN_CACHE_CAPACITY),
        }
    }
}

impl QueryContext {
    /// Fresh context with the default ([`QueryKernel::Auto`]) kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the evaluation kernel (builder form).
    pub fn with_kernel(mut self, kernel: QueryKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the evaluation kernel in place. Kernels are interchangeable
    /// at any point: all compute bit-identical estimates.
    pub fn set_kernel(&mut self, kernel: QueryKernel) {
        self.kernel = kernel;
    }

    /// The configured evaluation kernel ([`QueryKernel::Auto`] resolves per
    /// estimate from the sketch's schema).
    pub fn kernel(&self) -> QueryKernel {
        self.kernel
    }

    /// Compiled-plan cache statistics as `(hits, misses)` since the context
    /// was created. A repeated query hitting the cache skips query-side
    /// cover compilation entirely.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.plans.stats.hits, self.plans.stats.misses)
    }

    /// Hit/miss/eviction counters of both plan caches (the single-query
    /// `XiQueryPlan` LRU and the merged multi-query LRU) since the context
    /// was created.
    pub fn plan_cache_report(&self) -> PlanCacheReport {
        PlanCacheReport {
            single: self.plans.stats,
            multi: self.mplans.stats,
        }
    }

    /// Looks up the compiled plan for `key`, compiling and caching it on a
    /// miss. Hits refresh the entry's recency; the cache holds at most
    /// [`PLAN_CACHE_CAPACITY`] plans.
    pub(crate) fn plan_for<const D: usize>(
        &mut self,
        key: PlanKey,
        compile: impl FnOnce() -> XiQueryPlan<D>,
    ) -> Arc<XiQueryPlan<D>> {
        if let Some(plan) = self.plans.lookup::<XiQueryPlan<D>>(&key) {
            return plan;
        }
        let plan = Arc::new(compile());
        self.plans.insert(key, plan.clone());
        plan
    }

    /// Looks up a merged multi-query plan by its batch signature. Split from
    /// the insert so the miss path can compile the constituent single-query
    /// plans through [`QueryContext::plan_for`] in between.
    pub(crate) fn multi_plan_lookup<const D: usize>(
        &mut self,
        key: &PlanKey,
    ) -> Option<Arc<MultiQueryPlan<D>>> {
        self.mplans.lookup::<MultiQueryPlan<D>>(key)
    }

    /// Caches a freshly merged multi-query plan under its batch signature.
    pub(crate) fn multi_plan_insert<const D: usize>(
        &mut self,
        key: PlanKey,
        plan: Arc<MultiQueryPlan<D>>,
    ) {
        self.mplans.insert(key, plan);
    }

    /// Boosts whatever the fill pass left in `self.atomic`.
    fn boost(&mut self, shape: BoostShape) -> Estimate {
        let value = mean_median_with(
            &self.atomic,
            shape.k1,
            shape.k2,
            &mut self.rows,
            &mut self.med,
        );
        Estimate {
            value,
            row_means: self.rows.clone(),
        }
    }

    /// An all-zero estimate of the right shape (degenerate queries).
    pub(crate) fn zero_estimate(&mut self, shape: BoostShape) -> Estimate {
        self.atomic.clear();
        self.atomic.resize(shape.instances(), 0.0);
        self.boost(shape)
    }

    /// Pair combine: `Z_i = Σ_t coeff_t · R_i[rw_t] · S_i[sw_t]`, boosted.
    ///
    /// Callers must have verified that `r` and `s` share a schema and that
    /// the term word indices are in range.
    pub(crate) fn pair_estimate<const D: usize>(
        &mut self,
        terms: &[Term],
        r: &SketchSet<D>,
        s: &SketchSet<D>,
    ) -> Estimate {
        let shape = r.schema().shape();
        self.atomic.resize(shape.instances(), 0.0);
        match self.kernel.resolve(shape.instances()) {
            QueryKernel::Scalar => pair_fill_scalar(terms, r, s, 0, &mut self.atomic),
            QueryKernel::Batched => pair_fill_blocked::<u64, D>(terms, r, s, 0, &mut self.atomic),
            QueryKernel::Wide => pair_fill_blocked::<WideLane, D>(terms, r, s, 0, &mut self.atomic),
            QueryKernel::Wide512 => {
                pair_fill_blocked::<WideLane512, D>(terms, r, s, 0, &mut self.atomic)
            }
            QueryKernel::Auto => unreachable!("resolve() never returns Auto"),
        }
        self.boost(shape)
    }

    /// Query-side fill: leaves the atomic grid of `Z_i = Σ_t X_i[word_t] ·
    /// Π_dim ξ̄-sum of the term's chosen cover list` in `self.atomic`.
    fn xi_fill<const D: usize>(&mut self, plan: &XiQueryPlan<D>, sketch: &SketchSet<D>) {
        let shape = sketch.schema().shape();
        self.atomic.resize(shape.instances(), 0.0);
        match self.kernel.resolve(shape.instances()) {
            QueryKernel::Scalar => xi_fill_scalar(plan, sketch, 0, &mut self.atomic),
            QueryKernel::Batched => {
                xi_fill_blocked::<u64, D>(plan, sketch, 0, &mut self.atomic, &mut self.sums)
            }
            QueryKernel::Wide => xi_fill_blocked::<WideLane, D>(
                plan,
                sketch,
                0,
                &mut self.atomic,
                &mut self.sums_wide,
            ),
            QueryKernel::Wide512 => xi_fill_blocked::<WideLane512, D>(
                plan,
                sketch,
                0,
                &mut self.atomic,
                &mut self.sums_wide512,
            ),
            QueryKernel::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// Query-side combine, boosted.
    pub(crate) fn xi_estimate<const D: usize>(
        &mut self,
        plan: &XiQueryPlan<D>,
        sketch: &SketchSet<D>,
    ) -> Estimate {
        self.xi_fill(plan, sketch);
        self.boost(sketch.schema().shape())
    }

    /// Multi-query combine: fills every merged query's atomic grid in one
    /// blocked pass over the sketch and boosts each, in merge order. Only
    /// the blocked kernels reach this — the batch entry points answer
    /// [`QueryKernel::Scalar`] batches through the sequential per-query
    /// oracle instead.
    pub(crate) fn multi_xi_estimate<const D: usize>(
        &mut self,
        plan: &MultiQueryPlan<D>,
        sketch: &SketchSet<D>,
    ) -> Vec<Estimate> {
        let shape = sketch.schema().shape();
        let instances = shape.instances();
        let nq = plan.queries.len();
        self.atomic_multi.clear();
        self.atomic_multi.resize(nq * instances, 0.0);
        match self.kernel.resolve(instances) {
            QueryKernel::Batched => multi_xi_fill_blocked::<u64, D>(
                plan,
                sketch,
                &mut self.atomic_multi,
                &mut self.msums,
            ),
            QueryKernel::Wide => multi_xi_fill_blocked::<WideLane, D>(
                plan,
                sketch,
                &mut self.atomic_multi,
                &mut self.msums_wide,
            ),
            QueryKernel::Wide512 => multi_xi_fill_blocked::<WideLane512, D>(
                plan,
                sketch,
                &mut self.atomic_multi,
                &mut self.msums_wide512,
            ),
            QueryKernel::Scalar => unreachable!("scalar batches take the sequential oracle path"),
            QueryKernel::Auto => unreachable!("resolve() never returns Auto"),
        }
        let mut out = Vec::with_capacity(nq);
        for q in 0..nq {
            let grid = &self.atomic_multi[q * instances..(q + 1) * instances];
            let value = mean_median_with(grid, shape.k1, shape.k2, &mut self.rows, &mut self.med);
            out.push(Estimate {
                value,
                row_means: self.rows.clone(),
            });
        }
        out
    }

    /// Query-side combine, returned unboosted as a shard-mergeable
    /// [`PartialEstimate`].
    pub(crate) fn xi_partial<const D: usize>(
        &mut self,
        plan: &XiQueryPlan<D>,
        sketch: &SketchSet<D>,
    ) -> PartialEstimate {
        self.xi_fill(plan, sketch);
        PartialEstimate {
            shape: sketch.schema().shape(),
            atomic: self.atomic.clone(),
        }
    }

    /// An all-zero partial estimate of the right shape (degenerate queries).
    pub(crate) fn zero_partial(&self, shape: BoostShape) -> PartialEstimate {
        PartialEstimate {
            shape,
            atomic: vec![0.0; shape.instances()],
        }
    }
}

/// An **unboosted** atomic-estimate grid: the shard-mergeable partial form
/// of an estimate for the *linear* (single-sketch) query classes — range
/// selectivity and stabbing counts.
///
/// ## Merge rules (what may be combined, and where)
///
/// Boosting (mean-then-median) is nonlinear, so partial results must merge
/// **before** it:
///
/// * **Counters** merge exactly: sketches are linear over `i64` counters,
///   so folding shard counters and then estimating is *bit-identical* to
///   estimating an unsharded sketch of the same objects. This is the merge
///   the serving router uses when bit-reproducibility matters.
/// * **Partial grids** (this type) merge per instance in `f64`: summing the
///   per-shard `Z_i` grids yields an unbiased estimator of the shard union
///   whose expectation equals the counter-merged estimate, but whose
///   floating-point rounding may differ in the last bits (different
///   summation order). Partial grids are what a *distributed* deployment
///   ships — `k1·k2` floats instead of `k1·k2·|words|` counters.
/// * **Boosted [`Estimate`]s never merge**: medians of sums are not sums of
///   medians. Combining finished estimates from two shards is a semantic
///   error, which is why the router only exposes pre-boost merge points.
///
/// Bilinear pair estimators (joins, containment, ε-joins) have no per-shard
/// partial form at all: the atomic estimate multiplies `R`- and `S`-side
/// counters, so cross-shard product terms would be lost. Their only correct
/// merge point is the counter level, on both sides, before any product.
#[derive(Debug, Clone)]
pub struct PartialEstimate {
    shape: BoostShape,
    /// Atomic estimates, instance-major (`atomic[row * k1 + col]`).
    atomic: Vec<f64>,
}

impl PartialEstimate {
    /// The boosting-grid shape this partial was computed over.
    pub fn shape(&self) -> BoostShape {
        self.shape
    }

    /// The unboosted atomic grid, instance-major.
    pub fn atomic(&self) -> &[f64] {
        &self.atomic
    }

    /// Reassembles a partial from its `shape` and instance-major `atomic`
    /// grid — the inverse of reading [`PartialEstimate::shape`] and
    /// [`PartialEstimate::atomic`], for partials that crossed a process
    /// boundary (e.g. the serving layer's wire codec). Fails if the grid
    /// length does not match `shape.instances()`.
    pub fn from_parts(shape: BoostShape, atomic: Vec<f64>) -> crate::error::Result<Self> {
        if atomic.len() != shape.instances() {
            return Err(crate::error::SketchError::InvalidParameter(
                "partial estimate grid length does not match its boosting shape",
            ));
        }
        Ok(Self { shape, atomic })
    }

    /// Accumulates another shard's partial grid (instance-wise `f64` sum).
    /// Both partials must come from sketches over the same boosting shape —
    /// in practice the same schema.
    pub fn merge_from(&mut self, other: &PartialEstimate) -> crate::error::Result<()> {
        if self.shape != other.shape {
            return Err(crate::error::SketchError::InvalidParameter(
                "partial estimates have different boosting shapes",
            ));
        }
        for (a, b) in self.atomic.iter_mut().zip(other.atomic.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Boosts the (merged) grid into the final [`Estimate`].
    pub fn boost(&self) -> Estimate {
        Estimate::from_grid(&self.atomic, self.shape.k1, self.shape.k2)
    }
}

/// One query-side word term: which maintained word the counters come from
/// and, per dimension, which of the plan's cover lists multiplies it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct XiWordTerm<const D: usize> {
    /// Index into the sketch's maintained word list.
    pub word: usize,
    /// Per dimension, an index into [`XiQueryPlan::lists`] of that dimension.
    pub slots: [usize; D],
}

/// A compiled query side: the cover node lists (ids + GF cubes precomputed
/// once per query, shared by every instance) and the word terms combining
/// them with maintained counters.
#[derive(Debug, Clone)]
pub(crate) struct XiQueryPlan<const D: usize> {
    /// `lists[dim]` holds that dimension's cover lists (e.g. the query
    /// interval cover and the upper-endpoint point cover).
    pub lists: [Vec<Vec<IndexPre>>; D],
    /// The word terms, in maintained-word order.
    pub terms: Vec<XiWordTerm<D>>,
}

impl<const D: usize> Default for XiQueryPlan<D> {
    fn default() -> Self {
        Self {
            lists: std::array::from_fn(|_| Vec::new()),
            terms: Vec::new(),
        }
    }
}

impl<const D: usize> XiQueryPlan<D> {
    /// Largest per-dimension list count (the slot stride of the lane bank).
    fn max_slots(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// One dimension's merged cover worklist: every merged query's cover cells
/// in that dimension, deduplicated and sorted by index, with a CSR
/// ownership table fanning each cell back out to the dim-local slots whose
/// lists contain it.
#[derive(Debug, Clone, Default)]
pub(crate) struct MultiDimList {
    /// Unique cover cells, ascending by index.
    pub cells: Vec<IndexPre>,
    /// CSR offsets: cell `i` owns `owners[owner_off[i]..owner_off[i + 1]]`.
    pub owner_off: Vec<u32>,
    /// Dim-local slot ids, multiplicity-preserving (a cell listed twice in
    /// one list appears twice).
    pub owners: Vec<u32>,
    /// Total dim-local slots (Σ over merged plans of their list counts).
    pub slots: usize,
}

/// A batch of compiled single-query plans merged into one deduplicated,
/// sorted worklist per dimension: shared cover cells across the batch are
/// evaluated **once** per instance block by [`MultiBlockSums`], and each
/// query's word terms index its own slots of the shared bank.
#[derive(Debug, Clone)]
pub(crate) struct MultiQueryPlan<const D: usize> {
    /// Per-dimension merged worklists.
    pub dims: [MultiDimList; D],
    /// Per merged query (in merge order), its word terms with slot ids
    /// rebased onto the dim-local slot space.
    pub queries: Vec<Vec<XiWordTerm<D>>>,
}

impl<const D: usize> MultiQueryPlan<D> {
    /// Merges single-query plans (all compiled against the same schema)
    /// into one worklist. Slot assignment is sequential per (plan, list) in
    /// plan order, so term evaluation order inside each query — and hence
    /// its f64 rounding — is unchanged from the single-query path.
    pub(crate) fn merge(plans: &[Arc<XiQueryPlan<D>>]) -> Self {
        let mut dims: [MultiDimList; D] = std::array::from_fn(|_| MultiDimList::default());
        let mut slot_base = vec![[0usize; D]; plans.len()];
        for (p, plan) in plans.iter().enumerate() {
            for (d, dim) in dims.iter_mut().enumerate() {
                slot_base[p][d] = dim.slots;
                dim.slots += plan.lists[d].len();
            }
        }
        for (d, dim) in dims.iter_mut().enumerate() {
            // (index, cube, slot) triples; cube is a pure function of index
            // (per dimension), so sorting by the full triple groups equal
            // cells into runs with identical cubes.
            let mut pairs: Vec<(u64, u64, u32)> = Vec::new();
            for (p, plan) in plans.iter().enumerate() {
                for (l, list) in plan.lists[d].iter().enumerate() {
                    let slot = (slot_base[p][d] + l) as u32;
                    for pre in list {
                        pairs.push((pre.index, pre.cube, slot));
                    }
                }
            }
            pairs.sort_unstable();
            for (index, cube, slot) in pairs {
                if dim.cells.last().map(|c| c.index) != Some(index) {
                    dim.cells.push(IndexPre { index, cube });
                    dim.owner_off.push(dim.owners.len() as u32);
                }
                dim.owners.push(slot);
            }
            dim.owner_off.push(dim.owners.len() as u32);
        }
        let queries = plans
            .iter()
            .enumerate()
            .map(|(p, plan)| {
                plan.terms
                    .iter()
                    .map(|t| XiWordTerm {
                        word: t.word,
                        slots: std::array::from_fn(|d| slot_base[p][d] + t.slots[d]),
                    })
                    .collect()
            })
            .collect();
        Self { dims, queries }
    }

    /// Unique cover cells across all dimensions (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn unique_cells(&self) -> usize {
        self.dims.iter().map(|d| d.cells.len()).sum()
    }
}

/// `a·b` as f64, bit-identical to `(a as i128 * b as i128) as f64` but
/// taking a 64-bit fast path when the product fits (both conversions round
/// the same mathematical value to nearest, so the results coincide exactly).
/// Sketch counters sit far below 2^63 in practice; the 128-bit fallback only
/// guards pathological inputs.
#[inline(always)]
fn prod_f64(a: i64, b: i64) -> f64 {
    match a.checked_mul(b) {
        Some(p) => p as f64,
        None => (a as i128 * b as i128) as f64,
    }
}

/// Fills `out[i]` with the pair atomic estimate of instance
/// `first_instance + i`, per-instance (the scalar reference path — kept
/// verbatim from the pre-kernel estimator).
pub(crate) fn pair_fill_scalar<const D: usize>(
    terms: &[Term],
    r: &SketchSet<D>,
    s: &SketchSet<D>,
    first_instance: usize,
    out: &mut [f64],
) {
    for (i, z_out) in out.iter_mut().enumerate() {
        let inst = first_instance + i;
        let rc = r.instance_counters(inst);
        let sc = s.instance_counters(inst);
        let mut z = 0.0f64;
        for t in terms {
            // Counter products can exceed i64; widen before converting.
            let prod = rc[t.r_word] as i128 * sc[t.s_word] as i128;
            z += t.coeff * prod as f64;
        }
        *z_out = z;
    }
}

/// Fills the pair atomic estimates of whole instance blocks starting at
/// `first_block` (blocks of `L::LANES` lanes); `out` must cover exactly a
/// whole number of blocks' lanes. Terms walk in the outer loop so the f64
/// accumulations of different lanes stay independent (per-lane term order —
/// and thus rounding — matches the scalar path exactly, at every lane
/// width).
pub(crate) fn pair_fill_blocked<L: SchemaLanes, const D: usize>(
    terms: &[Term],
    r: &SketchSet<D>,
    s: &SketchSet<D>,
    first_block: usize,
    out: &mut [f64],
) {
    let schema = r.schema();
    let rw = r.words().len();
    let sw = s.words().len();
    let rc = r.counters();
    let sc = s.counters();
    let mut filled = 0usize;
    let mut b = first_block;
    while filled < out.len() {
        let base = b * L::LANES;
        let lanes = L::seed_blocks(schema, 0)[b].lanes();
        let rb = &rc[base * rw..(base + lanes) * rw];
        let sb = &sc[base * sw..(base + lanes) * sw];
        let z = &mut out[filled..filled + lanes];
        z.fill(0.0);
        for t in terms {
            let (rword, sword, coeff) = (t.r_word, t.s_word, t.coeff);
            for (lane, slot) in z.iter_mut().enumerate() {
                *slot += coeff * prod_f64(rb[lane * rw + rword], sb[lane * sw + sword]);
            }
        }
        filled += lanes;
        b += 1;
    }
}

/// Fills `out[i]` with the query-side atomic estimate of instance
/// `first_instance + i`, instantiating each instance's ξ families and
/// summing every cover list per instance (the scalar reference path).
pub(crate) fn xi_fill_scalar<const D: usize>(
    plan: &XiQueryPlan<D>,
    sketch: &SketchSet<D>,
    first_instance: usize,
    out: &mut [f64],
) {
    let schema = sketch.schema();
    let stride = plan.max_slots();
    let mut sums = vec![0i64; D * stride];
    for (i, z_out) in out.iter_mut().enumerate() {
        let inst = first_instance + i;
        let seeds = schema.instance_seeds(inst);
        for (dim, lists) in plan.lists.iter().enumerate() {
            let fam = schema.xi_ctx()[dim].family(seeds[dim]);
            for (slot, list) in lists.iter().enumerate() {
                sums[dim * stride + slot] = fam.sum_pre(list);
            }
        }
        let counters = sketch.instance_counters(inst);
        let mut z = 0.0f64;
        for t in &plan.terms {
            let mut qprod: i64 = 1;
            for (dim, &slot) in t.slots.iter().enumerate() {
                qprod *= sums[dim * stride + slot];
            }
            z += (qprod as i128 * counters[t.word] as i128) as f64;
        }
        *z_out = z;
    }
}

/// Fills the query-side atomic estimates of whole instance blocks starting
/// at `first_block` (blocks of `L::LANES` lanes): every cover list is
/// evaluated for all lanes in one bit-sliced pass over the schema's packed
/// seed planes, then word terms combine the per-lane sums with the block's
/// contiguous counter rows.
pub(crate) fn xi_fill_blocked<L: SchemaLanes, const D: usize>(
    plan: &XiQueryPlan<D>,
    sketch: &SketchSet<D>,
    first_block: usize,
    out: &mut [f64],
    sums: &mut BlockSums<L>,
) {
    let schema = sketch.schema();
    let w = sketch.words().len();
    let counters = sketch.counters();
    let stride = plan.max_slots();
    sums.reserve_slots(D * stride);
    let mut filled = 0usize;
    let mut b = first_block;
    while filled < out.len() {
        let base = b * L::LANES;
        let lanes = L::seed_blocks(schema, 0)[b].lanes();
        for (dim, lists) in plan.lists.iter().enumerate() {
            let xb = &L::seed_blocks(schema, dim)[b];
            for (slot, list) in lists.iter().enumerate() {
                sums.eval_into(dim * stride + slot, xb, list);
            }
        }
        let cb = &counters[base * w..(base + lanes) * w];
        let z = &mut out[filled..filled + lanes];
        z.fill(0.0);
        for t in &plan.terms {
            let word = t.word;
            // The per-lane query product is folded once per term across all
            // lanes ([`BlockSums::slot_products`]) instead of re-walking the
            // dimension slots inside the lane loop: the inner loop below is
            // then a single multiply-accumulate per lane, which LLVM
            // autovectorizes. Fold order matches the scalar path's dimension
            // order, so the (exact) i64 products are bit-identical.
            let ids: [usize; D] = std::array::from_fn(|d| d * stride + t.slots[d]);
            let q = sums.slot_products(&ids, lanes);
            for (lane, slot) in z.iter_mut().enumerate() {
                *slot += prod_f64(q[lane], cb[lane * w + word]);
            }
        }
        filled += lanes;
        b += 1;
    }
}

/// Fills every merged query's atomic grid in one blocked pass: per instance
/// block, each dimension's merged worklist is evaluated once into the shared
/// slot bank (one `eval_mask` per unique cell, carry-save fan-out per
/// owner), then each query's word terms combine its slots' per-lane sums
/// with the block's contiguous counter rows. `out` is query-major
/// (`out[q * instances + inst]`).
///
/// Bit-identity: per-lane sums are exact `i64`s, so sharing cell
/// evaluations cannot change them; per query, terms accumulate in plan
/// order and slot products fold in dimension order — the same f64 operation
/// sequence as [`xi_fill_blocked`], hence as the scalar oracle.
pub(crate) fn multi_xi_fill_blocked<L: SchemaLanes, const D: usize>(
    plan: &MultiQueryPlan<D>,
    sketch: &SketchSet<D>,
    out: &mut [f64],
    sums: &mut MultiBlockSums<L>,
) {
    let schema = sketch.schema();
    let instances = schema.instances();
    let w = sketch.words().len();
    let counters = sketch.counters();
    let mut base = [0usize; D];
    let mut total = 0usize;
    for (d, dim) in plan.dims.iter().enumerate() {
        base[d] = total;
        total += dim.slots;
    }
    sums.reserve_slots(total);
    let mut filled = 0usize;
    let mut b = 0usize;
    while filled < instances {
        let inst0 = b * L::LANES;
        let lanes = L::seed_blocks(schema, 0)[b].lanes();
        for (d, dim) in plan.dims.iter().enumerate() {
            let xb = &L::seed_blocks(schema, d)[b];
            sums.eval_worklist(
                xb,
                &dim.cells,
                &dim.owner_off,
                &dim.owners,
                base[d],
                dim.slots,
            );
        }
        let cb = &counters[inst0 * w..(inst0 + lanes) * w];
        for (q, terms) in plan.queries.iter().enumerate() {
            let z = &mut out[q * instances + filled..q * instances + filled + lanes];
            z.fill(0.0);
            for t in terms {
                let word = t.word;
                let ids: [usize; D] = std::array::from_fn(|d| base[d] + t.slots[d]);
                let qv = sums.slot_products(&ids, lanes);
                for (lane, slot) in z.iter_mut().enumerate() {
                    *slot += prod_f64(qv[lane], cb[lane * w + word]);
                }
            }
        }
        filled += lanes;
        b += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::EndpointPolicy;
    use crate::comp::ie_words;
    use crate::schema::{DimSpec, SketchSchema};
    use fourwise::XiKind;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use std::sync::Arc;

    #[test]
    fn prod_f64_matches_widening_conversion() {
        let cases = [
            (0i64, 0i64),
            (3, -7),
            (i64::MAX, 1),
            (i64::MAX, -1),
            (i64::MAX, i64::MAX), // overflows i64: 128-bit fallback
            (i64::MIN, i64::MIN), // likewise
            (i64::MIN, -1),       // checked_mul fails, product = 2^63
            (1 << 40, 1 << 30),   // overflow by a hair over the boundary
            (987654321, -123456789),
        ];
        for (a, b) in cases {
            let want = (a as i128 * b as i128) as f64;
            assert_eq!(prod_f64(a, b).to_bits(), want.to_bits(), "{a} * {b}");
        }
    }

    #[test]
    fn auto_resolves_by_width_and_explicit_kernels_pass_through() {
        use crate::kernel::{cpu_vector, CpuVector, WIDE512_MIN_INSTANCES, WIDE_MIN_INSTANCES};
        if crate::kernel::env_override().is_none() {
            assert_eq!(
                QueryKernel::Auto.resolve(WIDE_MIN_INSTANCES - 1),
                QueryKernel::Batched
            );
            assert_eq!(
                QueryKernel::Auto.resolve(WIDE_MIN_INSTANCES),
                QueryKernel::Wide
            );
            let top = if cpu_vector() == CpuVector::Avx512 {
                QueryKernel::Wide512
            } else {
                QueryKernel::Wide
            };
            assert_eq!(QueryKernel::Auto.resolve(WIDE512_MIN_INSTANCES), top);
        }
        for k in [
            QueryKernel::Scalar,
            QueryKernel::Batched,
            QueryKernel::Wide,
            QueryKernel::Wide512,
        ] {
            assert_eq!(k.resolve(1), k);
            assert_eq!(k.resolve(10_000), k);
        }
    }

    #[test]
    fn pair_kernels_agree_on_built_sketches() {
        let mut rng = StdRng::seed_from_u64(200);
        // 70 instances: one full block plus a 6-lane tail.
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            crate::schema::BoostShape::new(35, 2),
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let mut r = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw);
        let mut s = SketchSet::new(schema.clone(), words, EndpointPolicy::Raw);
        for _ in 0..40 {
            let x = rng.gen_range(0..200u64);
            let y = rng.gen_range(0..200u64);
            r.insert(&rect2(x, x + 9, y, y + 5)).unwrap();
            s.insert(&rect2(y, y + 3, x, x + 11)).unwrap();
        }
        let terms = [
            Term {
                r_word: 0,
                s_word: 3,
                coeff: 0.25,
            },
            Term {
                r_word: 1,
                s_word: 2,
                coeff: 0.25,
            },
            Term {
                r_word: 2,
                s_word: 1,
                coeff: -0.5,
            },
        ];
        let mut scalar_out = vec![0.0; schema.instances()];
        let mut batched_out = vec![0.0; schema.instances()];
        let mut wide_out = vec![0.0; schema.instances()];
        let mut wide512_out = vec![0.0; schema.instances()];
        pair_fill_scalar(&terms, &r, &s, 0, &mut scalar_out);
        pair_fill_blocked::<u64, 2>(&terms, &r, &s, 0, &mut batched_out);
        pair_fill_blocked::<fourwise::WideLane, 2>(&terms, &r, &s, 0, &mut wide_out);
        pair_fill_blocked::<fourwise::WideLane512, 2>(&terms, &r, &s, 0, &mut wide512_out);
        for (i, (a, b)) in scalar_out.iter().zip(batched_out.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "batched instance {i}");
        }
        for (i, (a, b)) in scalar_out.iter().zip(wide_out.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "wide instance {i}");
        }
        for (i, (a, b)) in scalar_out.iter().zip(wide512_out.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "wide512 instance {i}");
        }
        // Context dispatch returns the boosted estimate of the same grid,
        // whichever kernel is selected.
        let mut ctx = QueryContext::new().with_kernel(QueryKernel::Scalar);
        let es = ctx.pair_estimate(&terms, &r, &s);
        assert_eq!(es.row_means.len(), 2);
        for kernel in [
            QueryKernel::Batched,
            QueryKernel::Wide,
            QueryKernel::Wide512,
            QueryKernel::Auto,
        ] {
            ctx.set_kernel(kernel);
            let eb = ctx.pair_estimate(&terms, &r, &s);
            assert_eq!(es.value.to_bits(), eb.value.to_bits(), "{kernel:?}");
            assert_eq!(es.row_means, eb.row_means, "{kernel:?}");
        }
    }

    #[test]
    fn multi_plan_merge_bit_matches_single_plans() {
        let mut rng = StdRng::seed_from_u64(210);
        // 70 instances: one full 64-lane block plus a 6-lane tail.
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            crate::schema::BoostShape::new(35, 2),
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema.clone(), words, EndpointPolicy::Raw);
        for _ in 0..40 {
            let x = rng.gen_range(0..200u64);
            let y = rng.gen_range(0..200u64);
            sk.insert(&rect2(x, x + 9, y, y + 5)).unwrap();
        }
        // Three synthetic plans with overlapping cover cells (shared ids
        // across plans and a duplicate inside one list).
        let plans: Vec<Arc<XiQueryPlan<2>>> = (0..3usize)
            .map(|p| {
                let mut plan = XiQueryPlan::<2>::default();
                for (dim, lists) in plan.lists.iter_mut().enumerate() {
                    let ctx = &schema.xi_ctx()[dim];
                    for l in 0..2usize {
                        let mut list: Vec<IndexPre> = (0..6 + 3 * l)
                            .map(|_| ctx.precompute(rng.gen_range(0..64u64)))
                            .collect();
                        if p == 1 && l == 0 {
                            let dup = list[0];
                            list.push(dup);
                        }
                        lists.push(list);
                    }
                }
                plan.terms = (0..4usize)
                    .map(|mask| XiWordTerm {
                        word: mask,
                        slots: std::array::from_fn(|d| (mask >> d ^ p) & 1),
                    })
                    .collect();
                Arc::new(plan)
            })
            .collect();
        let merged = MultiQueryPlan::merge(&plans);
        assert_eq!(merged.queries.len(), 3);
        // Dedup really happened: unique cells < total list entries.
        let total: usize = plans
            .iter()
            .flat_map(|p| p.lists.iter().flatten())
            .map(Vec::len)
            .sum();
        assert!(merged.unique_cells() < total, "{} cells", total);

        let instances = schema.instances();
        check::<u64>(&plans, &merged, &sk, instances);
        check::<fourwise::WideLane>(&plans, &merged, &sk, instances);
        check::<fourwise::WideLane512>(&plans, &merged, &sk, instances);

        fn check<L: SchemaLanes>(
            plans: &[Arc<XiQueryPlan<2>>],
            merged: &MultiQueryPlan<2>,
            sk: &SketchSet<2>,
            instances: usize,
        ) {
            let mut multi_out = vec![0.0f64; plans.len() * instances];
            let mut msums = MultiBlockSums::<L>::new();
            multi_xi_fill_blocked::<L, 2>(merged, sk, &mut multi_out, &mut msums);
            let mut sums = BlockSums::<L>::new();
            for (q, plan) in plans.iter().enumerate() {
                let mut single = vec![0.0f64; instances];
                xi_fill_blocked::<L, 2>(plan, sk, 0, &mut single, &mut sums);
                for (i, (a, b)) in single
                    .iter()
                    .zip(&multi_out[q * instances..(q + 1) * instances])
                    .enumerate()
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "query {q} instance {i}");
                }
            }
        }
    }

    #[test]
    fn zero_estimate_has_grid_shape() {
        let mut ctx = QueryContext::new();
        let est = ctx.zero_estimate(crate::schema::BoostShape::new(4, 3));
        assert_eq!(est.value, 0.0);
        assert_eq!(est.row_means, vec![0.0; 3]);
    }

    #[test]
    fn plan_cache_hits_refresh_and_evict_lru() {
        let mut ctx = QueryContext::new();
        let key = |i: u64| PlanKey::new(i, PLAN_CLASS_OVERLAP, vec![i, i + 1]);
        // Fill past capacity; every insert is a miss.
        for i in 0..(PLAN_CACHE_CAPACITY as u64 + 4) {
            let _ = ctx.plan_for::<1>(key(i), XiQueryPlan::default);
        }
        assert_eq!(ctx.plan_cache_stats(), (0, PLAN_CACHE_CAPACITY as u64 + 4));
        // The oldest entries were evicted, the newest survive.
        let _ = ctx.plan_for::<1>(key(0), XiQueryPlan::default);
        assert_eq!(ctx.plan_cache_stats().1, PLAN_CACHE_CAPACITY as u64 + 5);
        let _ = ctx.plan_for::<1>(key(PLAN_CACHE_CAPACITY as u64 + 3), XiQueryPlan::default);
        assert_eq!(ctx.plan_cache_stats().0, 1);
        // Same coords under a different class or schema are distinct plans.
        let _ = ctx.plan_for::<1>(
            PlanKey::new(7, PLAN_CLASS_STAB, vec![7, 8]),
            XiQueryPlan::default,
        );
        let (hits, misses) = ctx.plan_cache_stats();
        assert_eq!((hits, misses), (1, PLAN_CACHE_CAPACITY as u64 + 6));
    }
}

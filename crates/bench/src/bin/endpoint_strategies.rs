//! Ablation A4: handling common endpoints — Assumption 1 raw estimator vs
//! the Section 5.2 transform vs the Appendix C corrective sketches.
//!
//! The workload deliberately violates Assumption 1: a fraction of `S` is
//! copied verbatim from `R` (identical rectangles, Figure 3 case (6)) and
//! the rest is snapped to a coarse lattice so endpoint collisions abound.
//! Expected shape: the raw estimator carries a visible bias; Transform and
//! Appendix C agree with the truth, with Appendix C needing more atomic
//! sketches (4^d words vs 2^d) for the same instance count.
//!
//! Usage: cargo run --release -p spatial-bench --bin endpoint_strategies
//!   [-- --size 10000] [--trials 5] [--threads N]

use geometry::{HyperRect, Interval};
use rand::Rng as _;
use rand::SeedableRng;
use serde::Serialize;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, BoostShape};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::{default_threads, mean_sketch_extent};

#[derive(Serialize)]
struct Record {
    size: usize,
    truth: u64,
    strategies: Vec<String>,
    mean_estimate: Vec<f64>,
    rel_err: Vec<f64>,
    words_per_instance: Vec<usize>,
}

fn lattice_rects(n: usize, bits: u32, grid: u64, seed: u64) -> Vec<HyperRect<2>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cells = (1u64 << bits) / grid;
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0..cells - 3) * grid;
            let y = rng.gen_range(0..cells - 3) * grid;
            let w = rng.gen_range(1..=3u64) * grid;
            let h = rng.gen_range(1..=3u64) * grid;
            HyperRect::new([Interval::new(x, x + w), Interval::new(y, y + h)])
        })
        .collect()
}

fn main() {
    let args = Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let size: usize = args.get_or("size", 10_000).expect("--size");
    let trials: u32 = args.get_or("trials", 5).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");

    let bits = 12u32;
    let r = lattice_rects(size, bits, 64, 91);
    let mut s = lattice_rects(size * 7 / 10, bits, 64, 92);
    s.extend_from_slice(&r[..size * 3 / 10]); // verbatim copies: case (6) pairs
    let truth = exact::rect_join_count(&r, &s);
    let truth_f = truth as f64;
    let shape = BoostShape::new(300, 5);
    let max_level = plan::adaptive_max_level(mean_sketch_extent(&[&r, &s]), bits + 2);

    println!(
        "# A4 — endpoint strategies on a lattice workload (size {size}, truth {truth}, {} identical pairs forced)",
        size * 3 / 10
    );
    let mut table = Table::new(
        "endpoint strategies: bias under shared endpoints",
        &[
            "strategy",
            "mean estimate",
            "truth",
            "rel err",
            "words/inst (R)",
        ],
    );
    let mut rec = Record {
        size,
        truth,
        strategies: vec![],
        mean_estimate: vec![],
        rel_err: vec![],
        words_per_instance: vec![],
    };

    for (name, strategy) in [
        ("AssumeDistinct", EndpointStrategy::AssumeDistinct),
        ("Transform (5.2)", EndpointStrategy::Transform),
        ("Appendix C", EndpointStrategy::CorrectCommon),
    ] {
        let mut est_sum = 0.0;
        let mut words = 0usize;
        for t in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9000 + 31 * t as u64);
            let config = SketchConfig {
                kind: fourwise::XiKind::Bch,
                shape,
                max_level: Some(max_level),
            };
            let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], strategy);
            let mut sk_r = join.new_sketch_r();
            let mut sk_s = join.new_sketch_s();
            par_insert_batch(&mut sk_r, &r, threads).expect("R");
            par_insert_batch(&mut sk_s, &s, threads).expect("S");
            words = sk_r.words().len();
            est_sum += join.estimate(&sk_r, &sk_s).expect("estimate").value;
        }
        let mean_est = est_sum / trials as f64;
        let err = rel_error(mean_est, truth_f);
        table.push_row(vec![
            name.to_string(),
            format_num(mean_est),
            truth.to_string(),
            format_num(err),
            words.to_string(),
        ]);
        rec.strategies.push(name.to_string());
        rec.mean_estimate.push(mean_est);
        rec.rel_err.push(err);
        rec.words_per_instance.push(words);
        eprintln!("  {name}: mean estimate {mean_est:.0} vs truth {truth} (err {err:.4})");
    }

    table.print();
    table.write_csv("endpoint_strategies");
    let json = write_json("endpoint_strategies", &rec);
    println!("wrote {}", json.display());
}

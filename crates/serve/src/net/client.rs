//! A blocking client with frame pipelining: submit many request frames,
//! collect their replies in any order — the frame id re-associates them
//! even when the server completes frames out of request order.
//!
//! The synchronous [`SketchClient::query_batch`] round-trip remains the
//! simple path (one `submit` + `collect`); the differential suites and the
//! latency probe drive the pipelined form directly. Timeouts are
//! first-class: a stalled server surfaces as [`WireError::Timeout`] and a
//! dead one as [`WireError::Disconnected`] instead of blocking forever,
//! and [`SketchClient::reconnect`] replaces the broken connection in
//! place.

use super::codec::{decode_replies, encode_queries, Opcode, WireError, WireQuery, WireReply};
use super::io::{read_frame, wire_error_of, write_frame};
use geometry::{HyperRect, Point};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection knobs of a [`SketchClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on any single blocking read; `None` waits forever. When it
    /// elapses the stream may be mid-frame, so the error is terminal for
    /// the connection — recover with [`SketchClient::reconnect`].
    pub read_timeout: Option<Duration>,
    /// Bound on any single blocking write; `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// `TCP_NODELAY` — on by default, frames are small and
    /// latency-sensitive.
    pub nodelay: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
        }
    }
}

/// A claim on one in-flight request frame, returned by
/// [`SketchClient::submit`] and redeemed by [`SketchClient::collect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    id: u32,
    queries: usize,
}

impl Ticket {
    /// The frame id this ticket's replies will arrive under.
    pub fn frame_id(&self) -> u32 {
        self.id
    }

    /// How many replies [`SketchClient::collect`] will return for it.
    pub fn queries(&self) -> usize {
        self.queries
    }
}

/// What an in-flight frame id is owed.
enum Expect {
    Replies(usize),
    Pong,
}

/// A blocking connection to a sketch server, with frame pipelining.
#[derive(Debug)]
pub struct SketchClient {
    addr: SocketAddr,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u32,
    inflight: HashMap<u32, Expect>,
    ready: HashMap<u32, Vec<WireReply>>,
}

impl std::fmt::Debug for Expect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expect::Replies(n) => write!(f, "Replies({n})"),
            Expect::Pong => write!(f, "Pong"),
        }
    }
}

impl SketchClient {
    /// Connects with the default [`ClientConfig`] (30 s read/write
    /// timeouts, `TCP_NODELAY`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit connection knobs.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, WireError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(wire_error_of)?
            .next()
            .ok_or_else(|| {
                wire_error_of(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "address resolved to nothing",
                ))
            })?;
        Self::open(addr, config)
    }

    fn open(addr: SocketAddr, config: ClientConfig) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(wire_error_of)?;
        stream.set_nodelay(config.nodelay).map_err(wire_error_of)?;
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(wire_error_of)?;
        stream
            .set_write_timeout(config.write_timeout)
            .map_err(wire_error_of)?;
        let read_half = stream.try_clone().map_err(wire_error_of)?;
        Ok(Self {
            addr,
            config,
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 0,
            inflight: HashMap::new(),
            ready: HashMap::new(),
        })
    }

    /// Replaces a broken connection with a fresh one to the same address,
    /// keeping the configuration. Every outstanding [`Ticket`] is
    /// invalidated: whatever the old connection still owed is gone, and
    /// collecting an old ticket on the new connection reports
    /// [`WireError::UnknownFrame`].
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        *self = Self::open(self.addr, self.config.clone())?;
        Ok(())
    }

    /// Request frames submitted but not yet collected.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn take_frame_id(&mut self) -> u32 {
        // Skip ids still owed a reply (or already holding one): an id on
        // the wire twice would make the server's answers ambiguous.
        loop {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1);
            if !self.inflight.contains_key(&id) && !self.ready.contains_key(&id) {
                return id;
            }
        }
    }

    /// Sends one query batch **without waiting for its replies**: the
    /// frame goes out, the returned [`Ticket`] redeems the replies later
    /// via [`SketchClient::collect`]. Submitting repeatedly pipelines
    /// frames — the server evaluates them concurrently and replies in
    /// completion order.
    pub fn submit(&mut self, queries: &[WireQuery]) -> Result<Ticket, WireError> {
        let id = self.take_frame_id();
        write_frame(
            &mut self.writer,
            Opcode::QueryBatch,
            id,
            &encode_queries(queries),
        )?;
        self.inflight.insert(id, Expect::Replies(queries.len()));
        Ok(Ticket {
            id,
            queries: queries.len(),
        })
    }

    /// Blocks for `ticket`'s replies, which arrive in request order within
    /// the frame, exactly one per query ([`WireError::ReplyArity`]
    /// otherwise — a server that drops entries is broken, not slow).
    /// Reply frames for *other* tickets that arrive first are stashed and
    /// redeemed instantly when their tickets are collected, so collection
    /// order is the caller's choice even though the wire order is the
    /// server's. A [`WireError::Timeout`] or [`WireError::Disconnected`]
    /// here is terminal for the connection (the stream may be mid-frame);
    /// recover with [`SketchClient::reconnect`].
    pub fn collect(&mut self, ticket: Ticket) -> Result<Vec<WireReply>, WireError> {
        loop {
            if let Some(replies) = self.ready.remove(&ticket.id) {
                return Ok(replies);
            }
            if !self.inflight.contains_key(&ticket.id) {
                return Err(WireError::UnknownFrame(ticket.id));
            }
            let frame = read_frame(&mut self.reader)?;
            let Some(expect) = self.inflight.remove(&frame.frame_id) else {
                return Err(WireError::UnknownFrame(frame.frame_id));
            };
            let replies = match (frame.opcode, expect) {
                (Opcode::ReplyBatch, Expect::Replies(sent)) => {
                    let replies = decode_replies(&frame.payload)?;
                    if replies.len() != sent {
                        return Err(WireError::ReplyArity {
                            sent,
                            got: replies.len(),
                        });
                    }
                    replies
                }
                (Opcode::Pong, Expect::Pong) => {
                    if !frame.payload.is_empty() {
                        return Err(WireError::TrailingBytes(frame.payload.len()));
                    }
                    Vec::new()
                }
                (opcode, _) => return Err(WireError::BadOpcode(opcode as u8)),
            };
            self.ready.insert(frame.frame_id, replies);
        }
    }

    /// Sends one query batch and blocks for its replies — `submit` +
    /// `collect` in one call, for callers that don't pipeline.
    pub fn query_batch(&mut self, queries: &[WireQuery]) -> Result<Vec<WireReply>, WireError> {
        let ticket = self.submit(queries)?;
        self.collect(ticket)
    }

    /// Like [`SketchClient::query_batch`], but splits an oversized query
    /// list into **pipelined** frames of at most `max_batch` queries each
    /// instead of failing (or letting the codec's batch-size assertion
    /// abort) the whole request: every chunk is submitted before any reply
    /// is collected, so the chunks overlap on the server. Use the server's
    /// [`ServeConfig::max_batch`] as the chunk size so each frame fits one
    /// worker pass — the shape the batched kernel answers in a single
    /// sweep. Replies concatenate in request order, exactly one per query;
    /// an empty query list performs no round-trip at all.
    ///
    /// [`ServeConfig::max_batch`]: crate::net::ServeConfig::max_batch
    pub fn query_batch_chunked(
        &mut self,
        queries: &[WireQuery],
        max_batch: usize,
    ) -> Result<Vec<WireReply>, WireError> {
        let tickets: Vec<Ticket> = queries
            .chunks(max_batch.max(1))
            .map(|chunk| self.submit(chunk))
            .collect::<Result<_, _>>()?;
        let mut replies = Vec::with_capacity(queries.len());
        for ticket in tickets {
            replies.extend(self.collect(ticket)?);
        }
        Ok(replies)
    }

    /// Liveness round-trip (its `Pong` pipelines like any other frame).
    pub fn ping(&mut self) -> Result<(), WireError> {
        let id = self.take_frame_id();
        write_frame(&mut self.writer, Opcode::Ping, id, &[])?;
        self.inflight.insert(id, Expect::Pong);
        let replies = self.collect(Ticket { id, queries: 0 })?;
        debug_assert!(replies.is_empty());
        Ok(())
    }
}

/// The wire form of a range query against store `store`.
pub fn range_query<const D: usize>(store: u32, q: &HyperRect<D>) -> WireQuery {
    WireQuery::Range {
        store,
        ranges: (0..D).map(|d| (q.range(d).lo(), q.range(d).hi())).collect(),
    }
}

/// The wire form of a stabbing query at `p` against store `store`.
pub fn stab_query<const D: usize>(store: u32, p: &Point<D>) -> WireQuery {
    WireQuery::Stab {
        store,
        point: p.to_vec(),
    }
}

/// The wire form of a partial-estimate range query against store `store` —
/// answered with an unboosted [`super::codec::WireReply::Partial`] grid for
/// a gatherer to merge (see [`crate::cluster`]).
pub fn range_partial_query<const D: usize>(store: u32, q: &HyperRect<D>) -> WireQuery {
    WireQuery::RangePartial {
        store,
        ranges: (0..D).map(|d| (q.range(d).lo(), q.range(d).hi())).collect(),
    }
}

/// The wire form of a partial-estimate stabbing query at `p` against store
/// `store`.
pub fn stab_partial_query<const D: usize>(store: u32, p: &Point<D>) -> WireQuery {
    WireQuery::StabPartial {
        store,
        point: p.to_vec(),
    }
}

//! Quickstart: estimate a spatial join from single-pass sketches and compare
//! with the exact answer.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use spatial_sketch::datagen::SyntheticSpec;
use spatial_sketch::exact;
use spatial_sketch::geometry::HyperRect;
use spatial_sketch::sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use spatial_sketch::sketch::estimators::SketchConfig;
use spatial_sketch::sketch::{par_insert_batch, plan};

fn main() {
    // Two synthetic relations of 20K rectangles over a 2^12 x 2^12 domain.
    let bits = 12u32;
    let r: Vec<HyperRect<2>> = SyntheticSpec::paper(20_000, bits, 0.0, 1).generate();
    let s: Vec<HyperRect<2>> = SyntheticSpec::paper(20_000, bits, 0.5, 2).generate();

    // Ground truth, for comparison only — the estimator only ever does one
    // pass over each relation.
    let truth = exact::rect_join_count(&r, &s);
    println!("exact |R jn S|   = {truth}");

    // Configure the estimator: a 200x5 boosting grid (1000 atomic sketch
    // instances), the Section 5.2 endpoint transform (no assumptions on the
    // input), and the Section 6.5 adaptive maxLevel picked from the mean
    // object extent.
    let mean_extent: f64 = r
        .iter()
        .chain(s.iter())
        .map(|x| 3.0 * (x.range(0).length() + x.range(1).length()) as f64 / 2.0)
        .sum::<f64>()
        / (r.len() + s.len()) as f64;
    let max_level = plan::adaptive_max_level(mean_extent, bits + 2);
    let config = SketchConfig::new(200, 5).with_max_level(max_level);

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);

    // One pass over each relation (parallel across sketch instances).
    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_r, &r, 8).expect("build R sketch");
    par_insert_batch(&mut sk_s, &s, 8).expect("build S sketch");

    let est = join.estimate(&sk_r, &sk_s).expect("combinable sketches");
    let rel = (est.value - truth as f64).abs() / truth as f64;
    println!(
        "sketch estimate  = {:.0}  (relative error {rel:.3})",
        est.value
    );
    println!(
        "selectivity      = {:.3e}",
        join.estimate_selectivity(&sk_r, &sk_s).unwrap()
    );

    // Space accounting, the paper's way (Section 4.1.5).
    let shape = join.inner().schema().shape();
    println!(
        "sketch footprint = {} instances x {} words = {:.0} words for the pair \
         (vs {} words to store both inputs)",
        shape.instances(),
        plan::pair_words_per_instance(2),
        shape.instances() as f64 * plan::pair_words_per_instance(2) as f64,
        4 * (r.len() + s.len()),
    );

    // Sketches are linear: deleting everything returns them to zero.
    for x in &r {
        sk_r.delete(x).unwrap();
    }
    assert!(sk_r.is_empty());
    println!("deleted all of R — sketch drained back to empty");
}

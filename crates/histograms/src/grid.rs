//! Regular grid partitioning shared by both histogram baselines.
//!
//! A grid of *level* `L` partitions each dimension of a `2^bits`-sized
//! domain into `2^L` equi-width cells (the paper's Section 7 terminology).
//! Cells are coordinate sets: cell `c` along a dimension holds coordinates
//! `[c·w, (c+1)·w - 1]` with `w = 2^(bits - L)`, so every coordinate belongs
//! to exactly one cell and "object intersects cell" is unambiguous.

use geometry::{Coord, HyperRect, Interval};

/// A level-`L` grid over a square `2^bits × 2^bits` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Domain bits per dimension.
    pub domain_bits: u32,
    /// Grid level: `2^level` cells per dimension.
    pub level: u32,
}

impl GridSpec {
    /// Creates a grid spec.
    ///
    /// # Panics
    ///
    /// Panics if `level > domain_bits` (cells would be sub-coordinate).
    pub fn new(domain_bits: u32, level: u32) -> Self {
        assert!(
            level <= domain_bits,
            "grid level {level} exceeds domain bits {domain_bits}"
        );
        Self { domain_bits, level }
    }

    /// Cells per dimension, `2^level`.
    #[inline]
    pub fn cells_per_dim(&self) -> u64 {
        1u64 << self.level
    }

    /// Cell width in coordinates, `2^(bits - level)`.
    #[inline]
    pub fn cell_width(&self) -> u64 {
        1u64 << (self.domain_bits - self.level)
    }

    /// Cell index of a coordinate.
    #[inline]
    pub fn cell_of(&self, x: Coord) -> u64 {
        debug_assert!(x < (1u64 << self.domain_bits));
        x >> (self.domain_bits - self.level)
    }

    /// Coordinate range of cell `c` along one dimension.
    #[inline]
    pub fn cell_range(&self, c: u64) -> Interval {
        let w = self.cell_width();
        Interval::new(c * w, (c + 1) * w - 1)
    }

    /// Inclusive cell-index span of an interval.
    #[inline]
    pub fn cell_span(&self, iv: &Interval) -> (u64, u64) {
        (self.cell_of(iv.lo()), self.cell_of(iv.hi()))
    }

    /// Flat index of 2-d cell `(cx, cy)` (row-major by y).
    #[inline]
    pub fn cell_index(&self, cx: u64, cy: u64) -> usize {
        (cy * self.cells_per_dim() + cx) as usize
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        let g = self.cells_per_dim() as usize;
        g * g
    }

    /// The rectangle of coordinates covered by cell `(cx, cy)`.
    pub fn cell_rect(&self, cx: u64, cy: u64) -> HyperRect<2> {
        HyperRect::new([self.cell_range(cx), self.cell_range(cy)])
    }

    /// Checks that an object fits the domain.
    pub fn fits(&self, rect: &HyperRect<2>) -> bool {
        let max = (1u64 << self.domain_bits) - 1;
        rect.range(0).hi() <= max && rect.range(1).hi() <= max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;

    #[test]
    fn cell_geometry() {
        let g = GridSpec::new(8, 3); // domain 256, 8 cells of width 32
        assert_eq!(g.cells_per_dim(), 8);
        assert_eq!(g.cell_width(), 32);
        assert_eq!(g.cell_of(0), 0);
        assert_eq!(g.cell_of(31), 0);
        assert_eq!(g.cell_of(32), 1);
        assert_eq!(g.cell_of(255), 7);
        assert_eq!(g.cell_range(2), Interval::new(64, 95));
        assert_eq!(g.cell_count(), 64);
    }

    #[test]
    fn spans_and_indices() {
        let g = GridSpec::new(8, 3);
        assert_eq!(g.cell_span(&Interval::new(10, 40)), (0, 1));
        assert_eq!(g.cell_span(&Interval::new(32, 63)), (1, 1));
        assert_eq!(g.cell_index(3, 2), 19);
        let r = g.cell_rect(1, 0);
        assert_eq!(r, rect2(32, 63, 0, 31));
    }

    #[test]
    fn every_coordinate_in_exactly_one_cell() {
        let g = GridSpec::new(6, 2);
        for x in 0..64u64 {
            let c = g.cell_of(x);
            assert!(g.cell_range(c).contains(x));
            // neighbors don't contain it
            if c > 0 {
                assert!(!g.cell_range(c - 1).contains(x));
            }
            if c + 1 < g.cells_per_dim() {
                assert!(!g.cell_range(c + 1).contains(x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds domain bits")]
    fn oversized_level_rejected() {
        let _ = GridSpec::new(4, 5);
    }

    #[test]
    fn fits_checks_domain() {
        let g = GridSpec::new(8, 2);
        assert!(g.fits(&rect2(0, 255, 0, 255)));
        assert!(!g.fits(&rect2(0, 256, 0, 10)));
    }
}

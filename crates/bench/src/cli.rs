//! Minimal command-line parsing for the experiment binaries.
//!
//! Flags take the forms `--key value` and `--switch`; anything unparsed is
//! an error so typos fail loudly. The dependency policy excludes argument-
//! parsing crates, and the harness needs only a handful of options.

use std::collections::BTreeMap;

/// Parsed `--key value` / `--switch` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process arguments (after the binary name).
    ///
    /// `switch_names` lists the valueless flags; every other `--key` consumes
    /// the following token as its value.
    pub fn parse(switch_names: &[&str]) -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1), switch_names)
    }

    /// Parses from an explicit token stream (testable).
    pub fn parse_from(
        tokens: impl IntoIterator<Item = String>,
        switch_names: &[&str],
    ) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{tok}` (flags start with --)"))?
                .to_string();
            if switch_names.contains(&key.as_str()) {
                out.switches.push(key);
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                out.values.insert(key, value);
            }
        }
        Ok(out)
    }

    /// Whether a switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a =
            Args::parse_from(toks("--zipf 1 --paper-scale --trials 5"), &["paper-scale"]).unwrap();
        assert_eq!(a.get("zipf"), Some("1"));
        assert!(a.has("paper-scale"));
        assert_eq!(a.get_or("trials", 3u32).unwrap(), 5);
        assert_eq!(a.get_or("threads", 8u32).unwrap(), 8);
    }

    #[test]
    fn rejects_stray_tokens_and_missing_values() {
        assert!(Args::parse_from(toks("positional"), &[]).is_err());
        assert!(Args::parse_from(toks("--trials"), &[]).is_err());
        let a = Args::parse_from(toks("--trials x"), &[]).unwrap();
        assert!(a.get_or("trials", 3u32).is_err());
    }
}

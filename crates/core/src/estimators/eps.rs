//! ε-join estimation for point sets under L∞ (Section 6.3).
//!
//! Each point `b ∈ B` is replaced by the hyper-cube of side `2ε` centered at
//! `b`; then `dist_∞(a, b) ≤ ε ⇔ a ∈ cube(b)`, and the join cardinality is
//! the number of (point, cube) containment events. Containment is *closed*,
//! so — unlike the overlap join — no endpoint assumption or transform is
//! needed: Lemma 8 gives `E[X_E Y_I] = |A ⋈_ε B|` unconditionally, with
//! `Var ≤ (3^d - 1)·SJ(X_E)·SJ(Y_I)`.

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::Comp;
use crate::error::Result;
use crate::estimator::{DimTerm, PairEstimator, PairTerms};
use crate::estimators::SketchConfig;
use crate::query::QueryContext;
use crate::schema::{DimSpec, SketchSchema};
use geometry::distance::linf_cube;
use geometry::{HyperRect, Point};
use rand::Rng;

/// Estimator for `|A ⋈_ε B|` over d-dimensional point sets.
#[derive(Debug, Clone)]
pub struct EpsJoin<const D: usize> {
    inner: PairEstimator<D>,
    eps: u64,
    domain_max: u64,
}

impl<const D: usize> EpsJoin<D> {
    /// Creates the estimator for points over `{0, .., 2^data_bits - 1}^D`
    /// and distance threshold `eps`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        config: SketchConfig,
        data_bits: u32,
        eps: u64,
    ) -> Self {
        let dims: [DimSpec; D] = std::array::from_fn(|_| match config.max_level {
            Some(ml) => DimSpec::with_max_level(data_bits, ml),
            None => DimSpec::dyadic(data_bits),
        });
        let schema = SketchSchema::new(rng, config.kind, config.shape, dims);
        // Per-dimension factor: point cover of a_i  ×  interval cover of the
        // cube's range — one term, coefficient 1 (Lemma 8).
        let per_dim: [Vec<DimTerm>; D] =
            std::array::from_fn(|_| vec![DimTerm::new(Comp::LowerPoint, Comp::Interval, 1.0)]);
        let terms = PairTerms::from_dim_terms(&per_dim);
        let inner = PairEstimator::new(schema, terms, EndpointPolicy::Raw, EndpointPolicy::Raw);
        Self {
            inner,
            eps,
            domain_max: (1u64 << data_bits) - 1,
        }
    }

    /// The distance threshold.
    pub fn eps(&self) -> u64 {
        self.eps
    }

    /// The underlying generic estimator.
    pub fn inner(&self) -> &PairEstimator<D> {
        &self.inner
    }

    /// Creates an empty sketch for the point set `A`.
    pub fn new_sketch_a(&self) -> SketchSet<D> {
        self.inner.new_sketch_r()
    }

    /// Creates an empty sketch for the point set `B`.
    pub fn new_sketch_b(&self) -> SketchSet<D> {
        self.inner.new_sketch_s()
    }

    /// Inserts a point into the `A`-side sketch.
    pub fn insert_a(&self, sketch: &mut SketchSet<D>, p: &Point<D>) -> Result<()> {
        sketch.insert(&HyperRect::from_point(*p))
    }

    /// Deletes a point from the `A`-side sketch.
    pub fn delete_a(&self, sketch: &mut SketchSet<D>, p: &Point<D>) -> Result<()> {
        sketch.delete(&HyperRect::from_point(*p))
    }

    /// Inserts a point into the `B`-side sketch (expanded to its ε-cube).
    pub fn insert_b(&self, sketch: &mut SketchSet<D>, p: &Point<D>) -> Result<()> {
        sketch.insert(&linf_cube(p, self.eps, self.domain_max))
    }

    /// Deletes a point from the `B`-side sketch.
    pub fn delete_b(&self, sketch: &mut SketchSet<D>, p: &Point<D>) -> Result<()> {
        sketch.delete(&linf_cube(p, self.eps, self.domain_max))
    }

    /// Combines the two sketches into the boosted cardinality estimate.
    pub fn estimate(&self, a: &SketchSet<D>, b: &SketchSet<D>) -> Result<Estimate> {
        self.inner.estimate(a, b)
    }

    /// Like [`EpsJoin::estimate`] but with the caller's [`QueryContext`]
    /// (kernel choice + reused scratch for serving loops).
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        a: &SketchSet<D>,
        b: &SketchSet<D>,
    ) -> Result<Estimate> {
        self.inner.estimate_with(ctx, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_se<const D: usize>(
        join: &PairEstimator<D>,
        a: &SketchSet<D>,
        b: &SketchSet<D>,
    ) -> (f64, f64) {
        let shape = join.schema().shape();
        let mut vals = Vec::new();
        for inst in 0..shape.instances() {
            let ac = a.instance_counters(inst);
            let bc = b.instance_counters(inst);
            let mut z = 0.0;
            for t in join.terms().terms() {
                z += t.coeff * (ac[t.r_word] as i128 * bc[t.s_word] as i128) as f64;
            }
            vals.push(z);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    #[test]
    fn eps_join_unbiased_2d() {
        let mut rng = StdRng::seed_from_u64(60);
        let est = EpsJoin::<2>::new(&mut rng, SketchConfig::new(300, 5), 8, 6);
        let gen = |seed: u64, n: usize| -> Vec<Point<2>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| [rng.gen_range(0..256u64), rng.gen_range(0..256u64)])
                .collect()
        };
        let a_pts = gen(1, 60);
        let b_pts = gen(2, 60);
        let truth = exact::eps_join_count(&a_pts, &b_pts, 6) as f64;
        assert!(truth > 0.0, "pick eps so the truth is nonzero");
        let mut a = est.new_sketch_a();
        let mut b = est.new_sketch_b();
        for p in &a_pts {
            est.insert_a(&mut a, p).unwrap();
        }
        for p in &b_pts {
            est.insert_b(&mut b, p).unwrap();
        }
        let (mean, se) = mean_se(est.inner(), &a, &b);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn eps_join_exact_on_identical_points() {
        // Shared coordinates are fine for the ε-join (closed containment):
        // a single identical point pair with eps=0 must give E[Z] = 1.
        let mut rng = StdRng::seed_from_u64(61);
        let est = EpsJoin::<1>::new(&mut rng, SketchConfig::new(2000, 3), 5, 0);
        let mut a = est.new_sketch_a();
        let mut b = est.new_sketch_b();
        est.insert_a(&mut a, &[17]).unwrap();
        est.insert_b(&mut b, &[17]).unwrap();
        let (mean, se) = mean_se(est.inner(), &a, &b);
        assert!(
            (mean - 1.0).abs() <= 6.0 * se + 1e-9,
            "mean {mean}, se {se}"
        );
    }

    #[test]
    fn deletion_removes_contribution() {
        let mut rng = StdRng::seed_from_u64(62);
        let est = EpsJoin::<2>::new(&mut rng, SketchConfig::new(8, 3), 8, 4);
        let mut a = est.new_sketch_a();
        est.insert_a(&mut a, &[5, 9]).unwrap();
        est.insert_a(&mut a, &[100, 200]).unwrap();
        est.delete_a(&mut a, &[5, 9]).unwrap();
        est.delete_a(&mut a, &[100, 200]).unwrap();
        assert!(a.is_empty());
        assert!((0..a.schema().instances()).all(|i| a.instance_counters(i).iter().all(|&c| c == 0)));
    }

    #[test]
    fn cube_clamping_at_domain_edge() {
        let mut rng = StdRng::seed_from_u64(63);
        let est = EpsJoin::<2>::new(&mut rng, SketchConfig::new(400, 5), 6, 5);
        // Points hugging the domain boundary.
        let a_pts: Vec<Point<2>> = vec![[0, 0], [63, 63], [0, 63]];
        let b_pts: Vec<Point<2>> = vec![[2, 3], [60, 61], [1, 60], [30, 30]];
        let truth = exact::eps_join_count(&a_pts, &b_pts, 5) as f64;
        let mut a = est.new_sketch_a();
        let mut b = est.new_sketch_b();
        for p in &a_pts {
            est.insert_a(&mut a, p).unwrap();
        }
        for p in &b_pts {
            est.insert_b(&mut b, p).unwrap();
        }
        let (mean, se) = mean_se(est.inner(), &a, &b);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }
}

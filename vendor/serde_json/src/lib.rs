//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! [`to_string`], [`to_string_pretty`] and [`from_str`] over the vendored
//! `serde` stand-in's [`Value`] data model.
//!
//! The emitted text is plain standard JSON (RFC 8259); documents written by
//! this module parse identically under the real `serde_json`, so snapshots
//! and experiment records survive a later switch back to the registry
//! crates.

#![forbid(unsafe_code)]

mod parse;
mod write;

use serde::{DeserializeOwned, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::ser::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    write::render(&tree, None).map_err(Error::msg)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::ser::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    write::render(&tree, Some(2)).map_err(Error::msg)
}

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let tree = parse_value(s)?;
    serde::de::from_value(tree).map_err(|e| Error::msg(e.to_string()))
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    parse::parse(s).map_err(Error::msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(
            to_string(&18446744073709551615u64).unwrap(),
            "18446744073709551615"
        );
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
        assert_eq!(to_string("a \"quote\"\n").unwrap(), r#""a \"quote\"\n""#);
        assert_eq!(
            from_str::<String>(r#""a \"quote\"\n""#).unwrap(),
            "a \"quote\"\n"
        );
    }

    #[test]
    fn float_roundtrips() {
        let v = 0.1234567890123_f64;
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), v);
        // Integral floats come back as integers, which f64 slots accept.
        assert_eq!(from_str::<f64>(&to_string(&2.0f64).unwrap()).unwrap(), 2.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<i64>> = vec![vec![1, -2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,-2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<i64>>>(&s).unwrap(), v);
        let t: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        assert_eq!(
            from_str::<Vec<(u32, u32)>>(&to_string(&t).unwrap()).unwrap(),
            t
        );
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \u{1F600} \t\\";
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
        // \uXXXX escapes, including surrogate pairs.
        assert_eq!(
            from_str::<String>(r#""\u0041\uD83D\uDE00""#).unwrap(),
            "A\u{1F600}"
        );
    }

    #[test]
    fn pretty_is_parseable_and_indented() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&p).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("{\"a\":}").is_err());
        assert!(from_str::<f64>("nan").is_err());
    }
}

//! Ablation A1: the Section 6.5 `maxLevel` tradeoff.
//!
//! Sweeps the dyadic truncation level for a fixed word budget on a
//! short-interval workload and reports self-join sizes, relative error and
//! update cost. Expected shape: error is minimized near
//! `maxLevel ≈ log2(mean extent)`; the untruncated sketch (maxLevel =
//! domain bits) suffers from the endpoint sketches' `Θ(N²)` self-join mass;
//! maxLevel = 0 (the paper's "standard sketch") pays `O(length)` updates.
//!
//! Usage: cargo run --release -p spatial-bench --bin ablation_maxlevel
//!   [-- --size 20000] [--trials 3] [--threads N]

use datagen::SyntheticSpec;
use geometry::HyperRect;
use rand::SeedableRng;
use serde::Serialize;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, selfjoin, BoostShape, DimSpec, EndpointPolicy};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::{default_threads, mean_sketch_extent, shape_for_words};
use std::time::Instant;

#[derive(Serialize)]
struct Record {
    size: usize,
    adaptive_level: u32,
    levels: Vec<u32>,
    rel_err: Vec<f64>,
    sj_r: Vec<f64>,
    build_ms: Vec<f64>,
}

fn main() {
    let args = Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let size: usize = args.get_or("size", 20_000).expect("--size");
    let trials: u32 = args.get_or("trials", 3).expect("--trials");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");

    let bits = 14u32;
    let sketch_bits = bits + 2;
    let r: Vec<HyperRect<2>> = SyntheticSpec::paper(size, bits, 0.0, 61).generate();
    let s: Vec<HyperRect<2>> = SyntheticSpec::paper(size, bits, 0.0, 62).generate();
    let truth = exact::rect_join_count(&r, &s) as f64;
    let shape: BoostShape = shape_for_words(2, 2209.0);
    let adaptive = plan::adaptive_max_level(mean_sketch_extent(&[&r, &s]), sketch_bits);

    println!("# A1 — maxLevel ablation (size {size}, truth {truth}, adaptive level {adaptive})");
    let mut table = Table::new(
        "maxLevel ablation: relative error, SJ(R), build time",
        &["maxLevel", "rel err", "SJ(R)", "build ms"],
    );
    let mut rec = Record {
        size,
        adaptive_level: adaptive,
        levels: vec![],
        rel_err: vec![],
        sj_r: vec![],
        build_ms: vec![],
    };

    // Level 0 is the standard sketch: per-coordinate updates over extents of
    // ~sqrt(domain)*3 coordinates — measurably slow, which is the point.
    let levels: Vec<u32> = (2..=sketch_bits).step_by(2).collect();
    for &ml in &levels {
        let dims = [DimSpec::with_max_level(sketch_bits, ml); 2];
        let sj_r =
            selfjoin::exact_self_join(&r, &dims, EndpointPolicy::Tripled, &sketch::ie_words::<2>())
                as f64;
        let mut err_sum = 0.0;
        let mut build_ms = 0.0;
        for t in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(70 + 13 * t as u64);
            let config = SketchConfig {
                kind: fourwise::XiKind::Bch,
                shape,
                max_level: Some(ml),
            };
            let join =
                SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);
            let mut sk_r = join.new_sketch_r();
            let mut sk_s = join.new_sketch_s();
            let t0 = Instant::now();
            par_insert_batch(&mut sk_r, &r, threads).expect("build R");
            par_insert_batch(&mut sk_s, &s, threads).expect("build S");
            build_ms += t0.elapsed().as_secs_f64() * 1000.0;
            err_sum += rel_error(join.estimate(&sk_r, &sk_s).expect("estimate").value, truth);
        }
        let err = err_sum / trials as f64;
        let build = build_ms / trials as f64;
        table.push_row(vec![
            ml.to_string(),
            format_num(err),
            format!("{sj_r:.3e}"),
            format_num(build),
        ]);
        rec.levels.push(ml);
        rec.rel_err.push(err);
        rec.sj_r.push(sj_r);
        rec.build_ms.push(build);
        eprintln!("  maxLevel {ml}: err {err:.4}, SJ(R) {sj_r:.3e}, build {build:.0} ms");
    }

    table.print();
    table.write_csv("ablation_maxlevel");
    let json = write_json("ablation_maxlevel", &rec);
    println!(
        "adaptive choice would be maxLevel = {adaptive}; wrote {}",
        json.display()
    );
}

//! Four-wise independent family from a random cubic polynomial over the
//! Mersenne prime field Z_p, p = 2^61 - 1.
//!
//! `h(i) = a3*i^3 + a2*i^2 + a1*i + a0 mod p` is a uniformly random degree-3
//! polynomial, which is an exactly four-wise independent hash into Z_p. We
//! map it to {-1, +1} by the low bit of `h(i)`.
//!
//! Because `p` is odd, the low bit of a uniform element of Z_p is not
//! perfectly balanced: the bias is `1/(2p) < 2^-61`, utterly negligible for
//! estimation but *not* exactly zero. The BCH family ([`crate::bch`]) is
//! exactly unbiased and is the library default; this family exists as an
//! alternative generator with a different cost profile (three modular
//! multiplications per evaluation, no field cube sharing), exercised by the
//! ablation benches.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Mersenne prime 2^61 - 1.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Multiplies two residues mod 2^61-1 using 128-bit intermediate arithmetic
/// and Mersenne folding.
#[inline]
pub fn mul_mod_p(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod & MERSENNE_P as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// Adds two residues mod 2^61-1.
#[inline]
pub fn add_mod_p(a: u64, b: u64) -> u64 {
    let mut s = a + b; // both < 2^61, no overflow in u64
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// Seed of the cubic-polynomial family: four uniform coefficients in Z_p.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolySeed {
    /// Coefficients `[a0, a1, a2, a3]`.
    pub a: [u64; 4],
}

impl PolySeed {
    /// Draws a uniformly random seed.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut a = [0u64; 4];
        for c in &mut a {
            // Rejection sampling for uniformity over [0, p).
            loop {
                let v = rng.gen::<u64>() & ((1u64 << 61) - 1);
                if v < MERSENNE_P {
                    *c = v;
                    break;
                }
            }
        }
        Self { a }
    }
}

/// A four-wise independent (up to O(2^-61) parity bias) {-1,+1} family.
#[derive(Debug, Clone, Copy)]
pub struct PolyFamily {
    seed: PolySeed,
}

impl PolyFamily {
    /// Builds the family from a seed.
    pub fn new(seed: PolySeed) -> Self {
        Self { seed }
    }

    /// The seed of this family.
    pub fn seed(&self) -> PolySeed {
        self.seed
    }

    /// Evaluates `xi_i` as +1 or -1.
    #[inline]
    pub fn xi(&self, i: u64) -> i64 {
        debug_assert!(i < MERSENNE_P, "index must be below 2^61-1");
        let [a0, a1, a2, a3] = self.seed.a;
        // Horner evaluation: ((a3*i + a2)*i + a1)*i + a0
        let mut h = a3;
        h = add_mod_p(mul_mod_p(h, i), a2);
        h = add_mod_p(mul_mod_p(h, i), a1);
        h = add_mod_p(mul_mod_p(h, i), a0);
        1 - 2 * ((h & 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modular_arithmetic_basics() {
        assert_eq!(mul_mod_p(0, 12345), 0);
        assert_eq!(mul_mod_p(1, MERSENNE_P - 1), MERSENNE_P - 1);
        assert_eq!(add_mod_p(MERSENNE_P - 1, 1), 0);
        // (p-1)^2 mod p = 1
        assert_eq!(mul_mod_p(MERSENNE_P - 1, MERSENNE_P - 1), 1);
        // Fermat: 2^(p-1) mod p = 1, check via repeated squaring
        let mut acc = 1u64;
        let mut base = 2u64;
        let mut e = MERSENNE_P - 1;
        while e > 0 {
            if e & 1 == 1 {
                acc = mul_mod_p(acc, base);
            }
            base = mul_mod_p(base, base);
            e >>= 1;
        }
        assert_eq!(acc, 1);
    }

    #[test]
    fn values_are_signs() {
        let mut rng = StdRng::seed_from_u64(5);
        let fam = PolyFamily::new(PolySeed::random(&mut rng));
        for i in 0..2000u64 {
            let v = fam.xi(i);
            assert!(v == 1 || v == -1);
        }
    }

    #[test]
    fn empirical_pairwise_orthogonality() {
        // Monte-Carlo over seeds: E[xi_i * xi_j] should be ~0 for i != j and
        // 1 for i == j.
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let pairs = [(3u64, 3u64), (3, 4), (100, 7_000_000), (0, 1)];
        for (i, j) in pairs {
            let mut sum = 0i64;
            for _ in 0..trials {
                let fam = PolyFamily::new(PolySeed::random(&mut rng));
                sum += fam.xi(i) * fam.xi(j);
            }
            let mean = sum as f64 / trials as f64;
            if i == j {
                assert_eq!(sum, trials);
            } else {
                // Standard error ~ 1/sqrt(trials) ~ 0.007; allow 6 sigma.
                assert!(mean.abs() < 0.045, "E[xi_{i} xi_{j}] = {mean}");
            }
        }
    }

    #[test]
    fn empirical_fourwise_orthogonality() {
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 20_000;
        let tuple = [2u64, 3, 5, 8];
        let mut sum = 0i64;
        for _ in 0..trials {
            let fam = PolyFamily::new(PolySeed::random(&mut rng));
            let mut p = 1i64;
            for &i in &tuple {
                p *= fam.xi(i);
            }
            sum += p;
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.045, "E[prod] = {mean}");
    }
}

//! Range-query scenario: approximate range aggregates from one maintained
//! sketch (Section 6.4), plus exact aligned counts from an Euler histogram.
//!
//! A dashboard over a large parcel table wants fast approximate answers to
//! "how many parcels intersect this viewport?" and "how many parcels cover
//! this point?" without scanning the table. The sketch answers arbitrary
//! ranges with probabilistic guarantees; the Euler histogram answers
//! *cell-aligned* ranges exactly — a nice illustration of the two designs'
//! tradeoffs.
//!
//! Run with: `cargo run --release --example range_query_aggregates`

use rand::{Rng as _, SeedableRng};
use spatial_sketch::datagen::SyntheticSpec;
use spatial_sketch::exact;
use spatial_sketch::geometry::{HyperRect, Interval};
use spatial_sketch::histograms::{EulerHistogram, GridSpec};
use spatial_sketch::sketch::estimators::SketchConfig;
use spatial_sketch::sketch::{par_insert_batch, plan, RangeQuery, RangeStrategy};

fn main() {
    let bits = 12u32;
    // Denser-than-default coverage (mean extent ~500 cells) so point/range
    // result sizes are large enough for sharp estimates: like every
    // probabilistic estimator with guarantees, accuracy is relative to the
    // result size (paper Section 7.4).
    let data: Vec<HyperRect<2>> = SyntheticSpec {
        count: 25_000,
        domain_bits: bits,
        zipf_z: 0.3,
        mean_length: 500.0,
        scatter_ranks: true,
        seed: 21,
    }
    .generate();
    println!(
        "dataset: {} rectangles over a {}x{} domain\n",
        data.len(),
        1 << bits,
        1 << bits
    );

    // One maintained sketch serves every future range query.
    let mean_extent: f64 = data
        .iter()
        .map(|x| 3.0 * (x.range(0).length() + x.range(1).length()) as f64 / 2.0)
        .sum::<f64>()
        / data.len() as f64;
    let max_level = plan::adaptive_max_level(mean_extent, bits + 2);
    let config = SketchConfig::new(800, 5).with_max_level(max_level);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let rq = RangeQuery::<2>::new(&mut rng, config, [bits, bits], RangeStrategy::Transform);
    let mut sk = rq.new_sketch();
    par_insert_batch(&mut sk, &data, 8).expect("build sketch");

    // Arbitrary viewport queries.
    println!(
        "{:<28} {:>8} {:>10} {:>8}",
        "viewport", "exact", "estimate", "rel err"
    );
    let mut qrng = rand::rngs::StdRng::seed_from_u64(6);
    for i in 0..6 {
        let side = 1500 + 500 * i as u64;
        let x = qrng.gen_range(0..(1u64 << bits) - side - 1);
        let y = qrng.gen_range(0..(1u64 << bits) - side - 1);
        let q = HyperRect::new([Interval::new(x, x + side), Interval::new(y, y + side)]);
        let truth = exact::naive::range_count(&data, &q) as f64;
        let est = rq.estimate(&sk, &q).expect("estimate").value;
        let rel = if truth > 0.0 {
            (est - truth).abs() / truth
        } else {
            est.abs()
        };
        println!(
            "[{x:>4},{:>4}]x[{y:>4},{:>4}]   {truth:>8.0} {est:>10.0} {rel:>8.3}",
            x + side,
            y + side
        );
    }

    // Stabbing counts: "how many parcels cover this point?" — closed
    // containment, exact in expectation with no endpoint caveats. Note the
    // noise: a point-sized result is tiny relative to the dataset's
    // self-join size, and (paper Section 7.4) every guarantees-bearing
    // probabilistic estimator degrades as the result size shrinks. The
    // estimates are unbiased, so averaging queries recovers accuracy.
    println!("\n{:<28} {:>8} {:>10}", "stab point", "exact", "estimate");
    for _ in 0..4 {
        let p = [qrng.gen_range(0..1 << bits), qrng.gen_range(0..1 << bits)];
        let truth = data.iter().filter(|r| r.contains_point(&p)).count();
        let est = rq.estimate_stab(&sk, &p).expect("stab").value;
        println!(
            "({:>5}, {:>5})               {truth:>8} {est:>10.1}",
            p[0], p[1]
        );
    }
    println!(
        "(point-sized results sit near this budget's noise floor — Lemma 9's variance\n\
         bound says how many more instances a target stabbing accuracy would need)"
    );

    // Euler histograms answer *aligned* ranges exactly (their classical
    // guarantee) — at the cost of a fixed grid and overlap+ semantics.
    let spec = GridSpec::new(bits, 4);
    let mut eh = EulerHistogram::new(spec);
    for r in &data {
        eh.insert(r);
    }
    let exact_aligned = eh.aligned_range_count(2, 3, 9, 11);
    let region = HyperRect::new([
        Interval::new(spec.cell_range(2).lo(), spec.cell_range(9).hi()),
        Interval::new(spec.cell_range(3).lo(), spec.cell_range(11).hi()),
    ]);
    let truth = data.iter().filter(|r| r.overlaps_plus(&region)).count();
    println!(
        "\nEuler histogram, aligned region cells (2,3)-(9,11): {exact_aligned} (truth {truth}) — exact by construction"
    );
}

//! Naive `O(N·M)` reference implementations of every query the workspace
//! estimates. These are the specification: every optimized processor and
//! every sketch estimator is tested against them.

use geometry::distance::within_linf;
use geometry::{HyperRect, Point};

/// Exact spatial join cardinality `|R ⋈_o S|` (Definition 1; full-dimensional
/// intersection required).
pub fn join_count<const D: usize>(r: &[HyperRect<D>], s: &[HyperRect<D>]) -> u64 {
    let mut count = 0;
    for a in r {
        for b in s {
            if a.overlaps(b) {
                count += 1;
            }
        }
    }
    count
}

/// Exact extended join cardinality `|R ⋈+_o S|` (Definition 4; touching
/// boundaries count).
pub fn join_plus_count<const D: usize>(r: &[HyperRect<D>], s: &[HyperRect<D>]) -> u64 {
    let mut count = 0;
    for a in r {
        for b in s {
            if a.overlaps_plus(b) {
                count += 1;
            }
        }
    }
    count
}

/// Exact containment join cardinality: pairs `(r, s)` with `s ⊆ r` (closed,
/// Appendix B.2's `c <= a <= b <= d` per dimension).
pub fn containment_count<const D: usize>(r: &[HyperRect<D>], s: &[HyperRect<D>]) -> u64 {
    let mut count = 0;
    for a in r {
        for b in s {
            if a.contains_rect(b) {
                count += 1;
            }
        }
    }
    count
}

/// Exact ε-join cardinality under L∞ (Definition 2).
pub fn eps_join_count<const D: usize>(a: &[Point<D>], b: &[Point<D>], eps: u64) -> u64 {
    let mut count = 0;
    for p in a {
        for q in b {
            if within_linf(p, q, eps) {
                count += 1;
            }
        }
    }
    count
}

/// Exact range-query cardinality `|Q(q, R)|` (Definition 3): objects whose
/// intersection with the query is full-dimensional.
pub fn range_count<const D: usize>(r: &[HyperRect<D>], q: &HyperRect<D>) -> u64 {
    r.iter().filter(|a| a.overlaps(q)).count() as u64
}

/// Exact extended range-query cardinality (touching counts).
pub fn range_plus_count<const D: usize>(r: &[HyperRect<D>], q: &HyperRect<D>) -> u64 {
    r.iter().filter(|a| a.overlaps_plus(q)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;

    #[test]
    fn small_join_by_hand() {
        let r = vec![rect2(0, 10, 0, 10), rect2(20, 30, 20, 30)];
        let s = vec![
            rect2(5, 15, 5, 15),   // overlaps r[0]
            rect2(10, 20, 10, 20), // touches r[0] at a corner, touches s? overlap+ only
            rect2(25, 28, 22, 26), // inside r[1]
        ];
        assert_eq!(join_count(&r, &s), 2);
        assert_eq!(join_plus_count(&r, &s), 4); // + corner touch with r[0], edge touch s[1]-r[1]? no: s[1]=[10,20]^2 vs r[1]=[20,30]^2 touch at (20,20)
        assert_eq!(containment_count(&r, &s), 1);
    }

    #[test]
    fn eps_join_by_hand() {
        let a = vec![[0u64, 0], [10, 10]];
        let b = vec![[2u64, 2], [10, 13], [100, 100]];
        assert_eq!(eps_join_count(&a, &b, 2), 1);
        assert_eq!(eps_join_count(&a, &b, 3), 2);
        assert_eq!(eps_join_count(&a, &b, 0), 0);
        assert_eq!(eps_join_count(&a, &b, 1000), 6);
    }

    #[test]
    fn range_counts() {
        let r = vec![
            rect2(0, 10, 0, 10),
            rect2(5, 25, 5, 25),
            rect2(40, 50, 40, 50),
        ];
        let q = rect2(8, 12, 8, 12);
        assert_eq!(range_count(&r, &q), 2);
        let touching = rect2(10, 12, 0, 10);
        assert_eq!(range_count(&r, &touching), 1); // r[1] only; touches r[0]
        assert_eq!(range_plus_count(&r, &touching), 2);
    }
}

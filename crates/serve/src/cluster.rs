//! Cluster-level scatter-gather: a router node fronting **remote** store
//! nodes over [`crate::net`].
//!
//! A [`ClusterRouter`] owns one connection per data node. A range or stab
//! query *scatters* as a partial-estimate wire query
//! ([`WireQuery::RangePartial`] / [`WireQuery::StabPartial`]) to every
//! node, *gathers* the unboosted [`WireReply::Partial`] grids, merges them
//! instance-wise in **fixed node order**, and boosts once. Shipping the
//! `k1·k2` partial grid instead of raw counters is what makes the hop
//! cheap: a few hundred floats rather than `k1·k2·|words|` counters.
//!
//! ## Determinism
//!
//! The partial-grid merge is an `f64` sum, so the cluster answer is
//! *deterministic* (same nodes, same order ⇒ same bits — the gather always
//! merges in node-index order regardless of reply arrival) and *unbiased*,
//! but not bit-identical to an unsharded sketch of the union: summation
//! order differs. Within one node the partial is computed from the node's
//! counter-merged view, so a single-node cluster boosts to exactly the
//! direct estimate. See `DESIGN.md` § "Elastic sharding" for the merge-rule
//! table.
//!
//! ## Joins
//!
//! Pair estimators are bilinear — their only correct merge point is the
//! counter level on both sides, before any product — so there is no
//! per-node partial form to gather. The cluster router deliberately has no
//! join method; joins run where both stores' counters live.
//!
//! ## Failover
//!
//! Each [`ClusterNode`] lists its primary address first, then replica
//! addresses (kept caught-up via [`crate::replica`] snapshots + log
//! tailing). A transport failure ([`WireError::Disconnected`] /
//! [`WireError::Timeout`] / [`WireError::Io`]) advances the node's active
//! address and retries, wrapping through every address once before giving
//! up; [`ClusterRouter::health`] exposes the resulting view and
//! [`ClusterRouter::fail_back`] forces a node back to its primary.

use crate::net::codec::{WireError, WireErrorCode, WireQuery, WireReply};
use crate::net::{range_partial_query, stab_partial_query, ClientConfig, SketchClient, Ticket};
use geometry::{HyperRect, Point};
use sketch::schema::BoostShape;
use sketch::{Estimate, PartialEstimate, SketchError};
use std::net::SocketAddr;

/// Everything that can go wrong answering a cluster query.
#[derive(Debug)]
pub enum ClusterError {
    /// A cluster with no nodes (or a node with no addresses) was asked to
    /// answer a query.
    Empty,
    /// Every address of the named node failed at the transport level; the
    /// last failure is attached.
    NodeDown {
        /// Index of the node in the cluster's node list.
        node: usize,
        /// The transport error from the final address attempt.
        last: WireError,
    },
    /// A node answered the query with a per-query wire error.
    Remote {
        /// Index of the node in the cluster's node list.
        node: usize,
        /// Machine-readable failure class from the wire.
        code: WireErrorCode,
        /// Human-readable detail from the wire.
        message: String,
    },
    /// A node answered with a structurally invalid reply (wrong reply kind
    /// or an impossible boosting shape).
    Protocol(&'static str),
    /// Merging or boosting the gathered partials failed (e.g. the nodes
    /// disagree on the boosting shape — mixed schemas).
    Sketch(SketchError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Empty => write!(f, "cluster has no nodes to query"),
            ClusterError::NodeDown { node, last } => {
                write!(f, "node {node}: every address failed (last: {last})")
            }
            ClusterError::Remote {
                node,
                code,
                message,
            } => write!(f, "node {node} answered {code:?}: {message}"),
            ClusterError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClusterError::Sketch(e) => write!(f, "gather failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SketchError> for ClusterError {
    fn from(e: SketchError) -> Self {
        ClusterError::Sketch(e)
    }
}

/// One data node: a primary address plus replica addresses to fail over
/// to, in preference order.
#[derive(Debug, Clone)]
pub struct ClusterNode {
    addrs: Vec<SocketAddr>,
}

impl ClusterNode {
    /// A node with only a primary address.
    pub fn new(primary: SocketAddr) -> Self {
        Self {
            addrs: vec![primary],
        }
    }

    /// Adds a replica address to fail over to (builder form; replicas are
    /// tried in the order added).
    pub fn with_replica(mut self, replica: SocketAddr) -> Self {
        self.addrs.push(replica);
        self
    }

    /// The node's addresses, primary first.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

/// A router-side view of one node's serving state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHealth {
    /// The address the node is currently served from.
    pub active: SocketAddr,
    /// Whether the active address is the node's primary.
    pub primary: bool,
    /// Whether a connection to the active address is currently open.
    pub connected: bool,
    /// How many times this node has failed over to another address.
    pub failovers: u64,
}

/// One node's connection state: the address list, which address is
/// active, and the (lazily opened) client.
struct NodeConn {
    addrs: Vec<SocketAddr>,
    active: usize,
    client: Option<SketchClient>,
    failovers: u64,
}

impl NodeConn {
    fn health(&self) -> NodeHealth {
        NodeHealth {
            active: self.addrs[self.active],
            primary: self.active == 0,
            connected: self.client.is_some(),
            failovers: self.failovers,
        }
    }
}

/// Scatter-gather router over remote store nodes (see the module docs).
///
/// Every node must serve the same store table (same schema, same store
/// indices); each node holds its own disjoint slice of the objects, and a
/// query's answer is the boosted merge of every node's partial grid.
pub struct ClusterRouter {
    nodes: Vec<NodeConn>,
    config: ClientConfig,
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("nodes", &self.health())
            .finish()
    }
}

impl ClusterRouter {
    /// A router over `nodes` with the default [`ClientConfig`].
    /// Connections open lazily on the first query.
    pub fn new(nodes: Vec<ClusterNode>) -> Self {
        Self::with_config(nodes, ClientConfig::default())
    }

    /// A router over `nodes` with explicit connection knobs.
    pub fn with_config(nodes: Vec<ClusterNode>, config: ClientConfig) -> Self {
        Self {
            nodes: nodes
                .into_iter()
                .map(|n| NodeConn {
                    addrs: n.addrs,
                    active: 0,
                    client: None,
                    failovers: 0,
                })
                .collect(),
            config,
        }
    }

    /// How many data nodes this router fronts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the router fronts no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The router-side health view, one entry per node.
    pub fn health(&self) -> Vec<NodeHealth> {
        self.nodes.iter().map(NodeConn::health).collect()
    }

    /// Forces `node` back to its primary address (e.g. after the primary
    /// recovered); the next query reconnects.
    pub fn fail_back(&mut self, node: usize) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.active = 0;
            n.client = None;
        }
    }

    /// Estimates range selectivity of `q` against store `store` across the
    /// whole cluster: scatter partials, merge in node order, boost once.
    pub fn estimate_range<const D: usize>(
        &mut self,
        store: u32,
        q: &HyperRect<D>,
    ) -> Result<Estimate, ClusterError> {
        self.scatter_gather(|_| range_partial_query(store, q))
    }

    /// Estimates the stabbing count at `p` against store `store` across
    /// the whole cluster.
    pub fn estimate_stab<const D: usize>(
        &mut self,
        store: u32,
        p: &Point<D>,
    ) -> Result<Estimate, ClusterError> {
        self.scatter_gather(|_| stab_partial_query(store, p))
    }

    /// The scatter-gather core: submit the query to every node (pipelined
    /// — all frames are on the wire before any reply is read), gather the
    /// partial grids, merge in **node-index order** and boost once.
    fn scatter_gather(
        &mut self,
        query_for: impl Fn(usize) -> WireQuery,
    ) -> Result<Estimate, ClusterError> {
        if self.nodes.is_empty() {
            return Err(ClusterError::Empty);
        }
        // Scatter: best-effort pipelined submit to every node. A node
        // whose submit fails is retried synchronously during the gather
        // (with address failover), so a dead primary costs one node's
        // round-trip, not the scatter.
        let mut tickets: Vec<Option<Ticket>> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            tickets.push(submit_once(node, &self.config, &query_for(i)));
        }
        // Gather in fixed node order; arrival order does not matter
        // because each node has a dedicated connection and merge order is
        // ours to choose.
        let mut merged: Option<PartialEstimate> = None;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let reply = match tickets[i].take() {
                Some(ticket) => match collect_one(node, ticket) {
                    Ok(reply) => Ok(reply),
                    // The connection died between submit and collect:
                    // fall back to the synchronous failover round-trip.
                    Err(e) if transport(&e) => roundtrip(node, &self.config, &query_for(i), i),
                    Err(e) => Err(ClusterError::NodeDown { node: i, last: e }),
                },
                None => roundtrip(node, &self.config, &query_for(i), i),
            }?;
            let partial = partial_of(reply, i)?;
            match merged.as_mut() {
                None => merged = Some(partial),
                Some(m) => m.merge_from(&partial)?,
            }
        }
        Ok(merged.expect("at least one node gathered").boost())
    }
}

/// Whether a wire error means the *connection* failed (fail over) rather
/// than the query (report).
fn transport(e: &WireError) -> bool {
    matches!(
        e,
        WireError::Io(_) | WireError::Disconnected | WireError::Timeout
    )
}

/// One submit attempt on the node's current connection (opening it if
/// needed). `None` means the attempt failed; the gather retries with
/// failover.
fn submit_once(node: &mut NodeConn, config: &ClientConfig, query: &WireQuery) -> Option<Ticket> {
    if node.client.is_none() {
        node.client = SketchClient::connect_with(node.addrs[node.active], config.clone()).ok();
    }
    let client = node.client.as_mut()?;
    match client.submit(std::slice::from_ref(query)) {
        Ok(ticket) => Some(ticket),
        Err(_) => {
            node.client = None;
            None
        }
    }
}

/// Collects exactly one reply for `ticket`; drops the connection on
/// transport failure so the caller's retry reconnects.
fn collect_one(node: &mut NodeConn, ticket: Ticket) -> Result<WireReply, WireError> {
    let client = node.client.as_mut().ok_or(WireError::Disconnected)?;
    match client.collect(ticket) {
        Ok(mut replies) if replies.len() == 1 => Ok(replies.pop().expect("len checked")),
        Ok(replies) => Err(WireError::ReplyArity {
            sent: 1,
            got: replies.len(),
        }),
        Err(e) => {
            if transport(&e) {
                node.client = None;
            }
            Err(e)
        }
    }
}

/// Synchronous single-query round-trip with address failover: try the
/// active address, advance past transport failures, wrap through every
/// address once.
fn roundtrip(
    node: &mut NodeConn,
    config: &ClientConfig,
    query: &WireQuery,
    index: usize,
) -> Result<WireReply, ClusterError> {
    let mut last = WireError::Disconnected;
    for _ in 0..node.addrs.len() {
        let attempt = submit_once(node, config, query)
            .ok_or(WireError::Disconnected)
            .and_then(|ticket| collect_one(node, ticket));
        match attempt {
            Ok(reply) => return Ok(reply),
            Err(e) if transport(&e) => {
                last = e;
                node.client = None;
                node.active = (node.active + 1) % node.addrs.len();
                node.failovers += 1;
            }
            Err(e) => {
                return Err(ClusterError::NodeDown {
                    node: index,
                    last: e,
                })
            }
        }
    }
    Err(ClusterError::NodeDown { node: index, last })
}

/// Validates and converts one gathered reply into a [`PartialEstimate`].
fn partial_of(reply: WireReply, node: usize) -> Result<PartialEstimate, ClusterError> {
    match reply {
        WireReply::Partial { k1, k2, atomic } => {
            if k1 == 0 || k2 == 0 {
                return Err(ClusterError::Protocol(
                    "partial reply declares a zero boosting-shape factor",
                ));
            }
            PartialEstimate::from_parts(BoostShape::new(k1 as usize, k2 as usize), atomic)
                .map_err(ClusterError::from)
        }
        WireReply::Error { code, message } => Err(ClusterError::Remote {
            node,
            code,
            message,
        }),
        WireReply::Estimate { .. } => Err(ClusterError::Protocol(
            "expected a partial reply, got a boosted estimate",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextPool;
    use crate::net::{serve, ServeConfig, SketchService};
    use crate::router::QueryRouter;
    use crate::store::ShardedStore;
    use geometry::rect2;
    use rand::SeedableRng;
    use sketch::estimators::SketchConfig;
    use sketch::{RangeQuery, RangeStrategy};
    use std::sync::Arc;

    fn serving_node(
        rq: &RangeQuery<2>,
        rects: &[geometry::HyperRect<2>],
    ) -> (crate::net::ServerHandle, Arc<ShardedStore<2>>) {
        let store = Arc::new(ShardedStore::like(&rq.new_sketch(), 2));
        store.insert_slice(rects).unwrap();
        let service = Arc::new(SketchService::new(rq.clone(), vec![Arc::clone(&store)]));
        let pool = Arc::new(ContextPool::new(2));
        let handle = serve(service, pool, &ServeConfig::default(), 0).unwrap();
        (handle, store)
    }

    fn test_query() -> RangeQuery<2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        RangeQuery::new(
            &mut rng,
            SketchConfig::new(16, 5),
            [8, 8],
            RangeStrategy::Transform,
        )
    }

    /// The wire scatter-gather answer is bit-identical to an in-process
    /// gather over the same nodes in the same order: partials per node,
    /// merged node 0 → node 1, boosted once.
    #[test]
    fn scatter_gather_matches_in_process_partial_merge() {
        let rq = test_query();
        let left: Vec<_> = (0..8).map(|i| rect2(i * 8, i * 8 + 6, 4, 90)).collect();
        let right: Vec<_> = (0..8)
            .map(|i| rect2(128 + i * 8, 128 + i * 8 + 6, 40, 200))
            .collect();
        let (h0, s0) = serving_node(&rq, &left);
        let (h1, s1) = serving_node(&rq, &right);

        let router = QueryRouter::new();
        let pool = ContextPool::new(1);
        let q = rect2(0, 255, 0, 255);
        let stab = [66u64, 66u64];
        let oracle_range = pool
            .with(|ctx| {
                let mut m = router.partial_range(&rq, &s0, ctx, &q)?;
                m.merge_from(&router.partial_range(&rq, &s1, ctx, &q)?)?;
                Ok::<_, sketch::SketchError>(m.boost())
            })
            .unwrap();
        let oracle_stab = pool
            .with(|ctx| {
                let mut m = router.partial_stab(&rq, &s0, ctx, &stab)?;
                m.merge_from(&router.partial_stab(&rq, &s1, ctx, &stab)?)?;
                Ok::<_, sketch::SketchError>(m.boost())
            })
            .unwrap();

        let mut cluster = ClusterRouter::new(vec![
            ClusterNode::new(h0.local_addr()),
            ClusterNode::new(h1.local_addr()),
        ]);
        let got_range = cluster.estimate_range(0, &q).unwrap();
        let got_stab = cluster.estimate_stab(0, &stab).unwrap();
        assert_eq!(got_range.value.to_bits(), oracle_range.value.to_bits());
        assert_eq!(got_stab.value.to_bits(), oracle_stab.value.to_bits());
        assert!(cluster
            .health()
            .iter()
            .all(|h| h.primary && h.failovers == 0));

        h0.shutdown();
        h1.shutdown();
    }

    /// A dead primary address fails over to the replica address and the
    /// query still answers; health reflects the failover, and `fail_back`
    /// returns to the primary.
    #[test]
    fn dead_primary_fails_over_to_replica_address() {
        let rq = test_query();
        let rects: Vec<_> = (0..6)
            .map(|i| rect2(i * 30, i * 30 + 20, 10, 120))
            .collect();
        let (handle, store) = serving_node(&rq, &rects);

        // A bound-then-dropped listener yields an address that refuses
        // connections — a deterministic "dead primary".
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };

        let router = QueryRouter::new();
        let pool = ContextPool::new(1);
        let q = rect2(0, 200, 0, 200);
        let oracle = pool
            .with(|ctx| {
                router
                    .partial_range(&rq, &store, ctx, &q)
                    .map(|p| p.boost())
            })
            .unwrap();

        let mut cluster = ClusterRouter::new(vec![
            ClusterNode::new(dead).with_replica(handle.local_addr())
        ]);
        let got = cluster.estimate_range(0, &q).unwrap();
        assert_eq!(got.value.to_bits(), oracle.value.to_bits());
        let health = &cluster.health()[0];
        assert!(!health.primary);
        assert_eq!(health.active, handle.local_addr());
        assert!(health.failovers >= 1);

        cluster.fail_back(0);
        assert!(cluster.health()[0].primary);
        // The primary is still dead, so the next query fails over again.
        let again = cluster.estimate_range(0, &q).unwrap();
        assert_eq!(again.value.to_bits(), oracle.value.to_bits());

        handle.shutdown();
    }

    /// With every address dead the query reports `NodeDown` instead of
    /// hanging or panicking.
    #[test]
    fn all_addresses_dead_reports_node_down() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut cluster = ClusterRouter::new(vec![ClusterNode::new(dead)]);
        let err = cluster.estimate_range(0, &rect2(0, 10, 0, 10)).unwrap_err();
        assert!(
            matches!(err, ClusterError::NodeDown { node: 0, .. }),
            "{err}"
        );
    }
}

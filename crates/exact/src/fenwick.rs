//! A Fenwick (binary indexed) tree over `i64` counts.
//!
//! Used by the sweep-line join processors to count active intervals below /
//! above a coordinate in `O(log n)`.

/// Fenwick tree supporting point updates and prefix sums over `0..len`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    /// Creates a tree over indices `0..len`, all zero.
    pub fn new(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
        }
    }

    /// Number of indexable slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at `index`.
    pub fn add(&mut self, index: usize, delta: i64) {
        debug_assert!(index < self.len());
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `0..=index` (inclusive prefix sum).
    pub fn prefix_sum(&self, index: usize) -> i64 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut acc = 0;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Sum over `0..index` (exclusive prefix sum); zero for `index == 0`.
    pub fn prefix_sum_exclusive(&self, index: usize) -> i64 {
        if index == 0 {
            0
        } else {
            self.prefix_sum(index - 1)
        }
    }

    /// Total of all slots.
    pub fn total(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn basic_operations() {
        let mut f = Fenwick::new(10);
        f.add(0, 5);
        f.add(3, 2);
        f.add(9, 1);
        assert_eq!(f.prefix_sum(0), 5);
        assert_eq!(f.prefix_sum(2), 5);
        assert_eq!(f.prefix_sum(3), 7);
        assert_eq!(f.prefix_sum(9), 8);
        assert_eq!(f.prefix_sum_exclusive(0), 0);
        assert_eq!(f.prefix_sum_exclusive(4), 7);
        assert_eq!(f.total(), 8);
        f.add(3, -2);
        assert_eq!(f.prefix_sum(5), 5);
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn randomized_against_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200;
        let mut f = Fenwick::new(n);
        let mut reference = vec![0i64; n];
        for _ in 0..2000 {
            let i = rng.gen_range(0..n);
            let delta = rng.gen_range(-3i64..=3);
            f.add(i, delta);
            reference[i] += delta;
            let q = rng.gen_range(0..n);
            let want: i64 = reference[..=q].iter().sum();
            assert_eq!(f.prefix_sum(q), want);
            assert_eq!(f.prefix_sum_exclusive(q), want - reference[q]);
        }
    }
}

//! Exact containment-join counting (Appendix B.2 semantics: pairs `(r, s)`
//! with `s ⊆ r` under closed inequalities).

use crate::fenwick::Fenwick;
use geometry::{HyperRect, Interval};

/// Exact 1-d containment join: `#{(r, s) : lo_r <= lo_s and hi_s <= hi_r}`
/// in `O((N + M) log M)` via a sweep over descending lower endpoints with a
/// Fenwick tree over compressed upper endpoints.
pub fn interval_containment_count(r: &[Interval], s: &[Interval]) -> u64 {
    if r.is_empty() || s.is_empty() {
        return 0;
    }
    // Compress S upper endpoints.
    let mut his: Vec<u64> = s.iter().map(Interval::hi).collect();
    his.sort_unstable();
    his.dedup();
    let rank = |v: u64| his.partition_point(|&h| h < v);

    let mut s_by_lo: Vec<&Interval> = s.iter().collect();
    s_by_lo.sort_unstable_by_key(|iv| std::cmp::Reverse(iv.lo())); // descending lo
    let mut r_by_lo: Vec<&Interval> = r.iter().collect();
    r_by_lo.sort_unstable_by_key(|iv| std::cmp::Reverse(iv.lo())); // descending lo

    let mut bit = Fenwick::new(his.len());
    let mut si = 0usize;
    let mut count = 0u64;
    for rv in r_by_lo {
        // Activate all s with lo_s >= lo_r.
        while si < s_by_lo.len() && s_by_lo[si].lo() >= rv.lo() {
            bit.add(rank(s_by_lo[si].hi()), 1);
            si += 1;
        }
        // Among the active, count hi_s <= hi_r.
        let idx = his.partition_point(|&h| h <= rv.hi());
        if idx > 0 {
            count += bit.prefix_sum(idx - 1) as u64;
        }
    }
    count
}

/// Exact d-dimensional containment join by pairwise check (adequate for the
/// dataset sizes the containment experiments use; the 1-d fast path covers
/// the streaming benchmarks).
pub fn containment_count<const D: usize>(r: &[HyperRect<D>], s: &[HyperRect<D>]) -> u64 {
    crate::naive::containment_count(r, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_1d(r: &[Interval], s: &[Interval]) -> u64 {
        let mut c = 0;
        for a in r {
            for b in s {
                if a.contains_interval(b) {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn hand_cases() {
        let r = vec![Interval::new(0, 10), Interval::new(5, 8)];
        let s = vec![
            Interval::new(2, 9),  // inside r[0]
            Interval::new(5, 8),  // inside both (closed containment)
            Interval::new(6, 12), // inside neither
            Interval::point(7),   // a point: inside both
        ];
        assert_eq!(interval_containment_count(&r, &s), 5);
        assert_eq!(interval_containment_count(&r, &s), naive_1d(&r, &s));
    }

    #[test]
    fn boundary_equality_counts() {
        // Closed semantics: identical intervals contain each other.
        let r = vec![Interval::new(3, 7)];
        let s = vec![Interval::new(3, 7)];
        assert_eq!(interval_containment_count(&r, &s), 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(interval_containment_count(&[], &[Interval::new(0, 1)]), 0);
        assert_eq!(interval_containment_count(&[Interval::new(0, 1)], &[]), 0);
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..40 {
            let gen = |rng: &mut StdRng, n: usize| -> Vec<Interval> {
                (0..n)
                    .map(|_| {
                        let a = rng.gen_range(0u64..100);
                        let b = rng.gen_range(0u64..100);
                        Interval::new(a.min(b), a.max(b))
                    })
                    .collect()
            };
            let r = gen(&mut rng, 70);
            let s = gen(&mut rng, 50);
            assert_eq!(interval_containment_count(&r, &s), naive_1d(&r, &s));
        }
    }
}

//! Kernel-width selection shared by the build and query dispatches.
//!
//! Both kernel enums ([`crate::atomic::BuildKernel`],
//! [`crate::query::QueryKernel`]) offer the same four implementations —
//! scalar oracle, 64-lane batched, 256-lane wide, 512-lane wide — and pick
//! the same default the same way, in dispatch order:
//!
//! 1. the `SKETCH_KERNEL` environment variable, when set to `scalar`,
//!    `batched`, `wide` or `wide512`, pins every default-kernel code path in
//!    the process (the tests-release CI lane uses this to run the whole
//!    suite under each kernel of the matrix); otherwise
//! 2. runtime CPU detection caps the lane width: the 512-lane kernel is
//!    only preferred where the CPU reports 512-bit vector registers
//!    (`avx512f`), since an eight-word lane on a 256-bit machine doubles
//!    register pressure for no extra lane-op throughput — detection runs
//!    once per process via [`std::arch::is_x86_feature_detected`] on
//!    x86_64 and falls back to the portable 256-lane cap elsewhere; then
//! 3. a width heuristic on the schema's instance count: wider lanes
//!    amortize their fixed per-block costs only once the boosting grid
//!    fills most of one block ([`WIDE_MIN_INSTANCES`],
//!    [`WIDE512_MIN_INSTANCES`]); below the thresholds the narrower blocks
//!    waste fewer tail lanes.
//!
//! Explicit kernel choices (`with_kernel`/`set_kernel`) always win over all
//! three; all kernels are bit-identical, so selection is purely about speed.
//! [`dispatch_report`] exposes the resolved decision inputs for probes and
//! tests.

use std::sync::OnceLock;

/// Instance count at which schemas default to the 256-lane wide kernels: at
/// three 64-lane blocks a single wide block is ≥75% occupied, the point
/// where fewer, fatter passes beat smaller tails.
pub const WIDE_MIN_INSTANCES: usize = 3 * fourwise::BLOCK_LANES;

/// Instance count at which schemas default to the 512-lane kernels (where
/// the CPU cap allows them): six 64-lane blocks fill one 512-lane block to
/// ≥75%, the same occupancy bar the 256-lane threshold clears.
pub const WIDE512_MIN_INSTANCES: usize = 6 * fourwise::BLOCK_LANES;

/// A resolved kernel width (no `Auto`): what the dispatches branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Width {
    Scalar,
    Batched,
    Wide,
    Wide512,
}

impl Width {
    /// Instance lanes per block at this width.
    pub(crate) fn lanes(self) -> usize {
        match self {
            Width::Scalar => 1,
            Width::Batched => fourwise::BLOCK_LANES,
            Width::Wide => fourwise::WIDE_LANES,
            Width::Wide512 => fourwise::WIDE512_LANES,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Width::Scalar => "scalar",
            Width::Batched => "batched",
            Width::Wide => "wide",
            Width::Wide512 => "wide512",
        }
    }
}

/// The CPU's vector capability class, detected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuVector {
    /// 512-bit vector registers (`avx512f`): the 512-lane width is native.
    Avx512,
    /// 256-bit vector registers (`avx2`): cap at the 256-lane width.
    Avx2,
    /// No detected wide vectors (or a non-x86_64 target): the 256-lane
    /// width still wins on fixed costs, so the cap stays at 256 lanes.
    Portable,
}

impl CpuVector {
    /// Short name for probe records and logs.
    pub fn name(self) -> &'static str {
        match self {
            CpuVector::Avx512 => "avx512",
            CpuVector::Avx2 => "avx2",
            CpuVector::Portable => "portable",
        }
    }

    /// The widest lane width (in instance lanes) this capability prefers.
    pub fn max_lane_width(self) -> usize {
        match self {
            CpuVector::Avx512 => fourwise::WIDE512_LANES,
            CpuVector::Avx2 | CpuVector::Portable => fourwise::WIDE_LANES,
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_cpu() -> CpuVector {
    if std::arch::is_x86_feature_detected!("avx512f") {
        CpuVector::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        CpuVector::Avx2
    } else {
        CpuVector::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_cpu() -> CpuVector {
    CpuVector::Portable
}

/// The process-wide CPU vector capability, detected on first use.
pub fn cpu_vector() -> CpuVector {
    static CPU: OnceLock<CpuVector> = OnceLock::new();
    *CPU.get_or_init(detect_cpu)
}

/// Parses a `SKETCH_KERNEL` value. Empty strings mean "no override" so CI
/// matrices can pass the variable unconditionally.
pub(crate) fn parse_override(value: &str) -> Result<Option<Width>, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "" => Ok(None),
        "scalar" => Ok(Some(Width::Scalar)),
        "batched" => Ok(Some(Width::Batched)),
        "wide" => Ok(Some(Width::Wide)),
        "wide512" => Ok(Some(Width::Wide512)),
        other => Err(format!(
            "SKETCH_KERNEL must be `scalar`, `batched`, `wide` or `wide512` (got `{other}`)"
        )),
    }
}

/// The process-wide `SKETCH_KERNEL` override, read once.
///
/// # Panics
///
/// Panics on an unrecognized value — a silently ignored override would make
/// a pinned test lane quietly measure the wrong kernel.
pub(crate) fn env_override() -> Option<Width> {
    static OVERRIDE: OnceLock<Option<Width>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("SKETCH_KERNEL") {
        Ok(value) => parse_override(&value).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => None,
    })
}

/// The default kernel width for a schema with `instances` boosting
/// instances: the env override when present; otherwise the instance-count
/// heuristic capped by the detected CPU vector width.
pub(crate) fn preferred(instances: usize) -> Width {
    if let Some(width) = env_override() {
        return width;
    }
    if instances >= WIDE512_MIN_INSTANCES && cpu_vector() == CpuVector::Avx512 {
        Width::Wide512
    } else if instances >= WIDE_MIN_INSTANCES {
        Width::Wide
    } else {
        Width::Batched
    }
}

/// The lane width (instances per block) the default dispatch picks for a
/// schema with `instances` boosting instances — the public, resolved view
/// of the dispatch chain for probes and dispatch-aware tests.
pub fn preferred_lane_width(instances: usize) -> usize {
    preferred(instances).lanes()
}

/// The inputs and caps of the kernel dispatch decision, resolved once at
/// runtime: what probes record next to every measurement and what
/// dispatch-aware tests branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchReport {
    /// The pinned `SKETCH_KERNEL` kernel name, if the variable is set.
    pub env_override: Option<&'static str>,
    /// Detected CPU vector capability class.
    pub cpu: CpuVector,
    /// Widest lane width the capability allows the heuristic to pick.
    pub max_lane_width: usize,
    /// Instance threshold for the 256-lane width.
    pub wide_min_instances: usize,
    /// Instance threshold for the 512-lane width (subject to the CPU cap).
    pub wide512_min_instances: usize,
}

/// The process-wide dispatch decision: env override → CPU capability →
/// instance thresholds. Stable for the life of the process.
pub fn dispatch_report() -> DispatchReport {
    DispatchReport {
        env_override: env_override().map(Width::name),
        cpu: cpu_vector(),
        max_lane_width: cpu_vector().max_lane_width(),
        wide_min_instances: WIDE_MIN_INSTANCES,
        wide512_min_instances: WIDE512_MIN_INSTANCES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(""), Ok(None));
        assert_eq!(parse_override("  "), Ok(None));
        assert_eq!(parse_override("scalar"), Ok(Some(Width::Scalar)));
        assert_eq!(parse_override("Batched"), Ok(Some(Width::Batched)));
        assert_eq!(parse_override("WIDE"), Ok(Some(Width::Wide)));
        assert_eq!(parse_override("wide512"), Ok(Some(Width::Wide512)));
        assert!(parse_override("simd").is_err());
    }

    #[test]
    fn heuristic_switches_at_threshold() {
        // Dispatch-aware: under a SKETCH_KERNEL override every instance
        // count resolves to the pinned width; without one, the thresholds
        // apply up to the CPU capability cap.
        if let Some(width) = env_override() {
            for instances in [1, WIDE_MIN_INSTANCES, WIDE512_MIN_INSTANCES, 4100] {
                assert_eq!(preferred(instances), width);
            }
            return;
        }
        assert_eq!(preferred(1), Width::Batched);
        assert_eq!(preferred(WIDE_MIN_INSTANCES - 1), Width::Batched);
        assert_eq!(preferred(WIDE_MIN_INSTANCES), Width::Wide);
        assert_eq!(preferred(WIDE512_MIN_INSTANCES - 1), Width::Wide);
        let top = if cpu_vector() == CpuVector::Avx512 {
            Width::Wide512
        } else {
            Width::Wide
        };
        assert_eq!(preferred(WIDE512_MIN_INSTANCES), top);
        assert_eq!(preferred(4100), top);
    }

    #[test]
    fn report_is_consistent_with_dispatch() {
        let report = dispatch_report();
        assert_eq!(report.cpu, cpu_vector());
        assert_eq!(report.max_lane_width, cpu_vector().max_lane_width());
        assert!(report.max_lane_width >= fourwise::WIDE_LANES);
        assert_eq!(report.wide_min_instances, WIDE_MIN_INSTANCES);
        assert_eq!(report.wide512_min_instances, WIDE512_MIN_INSTANCES);
        match report.env_override {
            Some(name) => {
                assert!(["scalar", "batched", "wide", "wide512"].contains(&name));
                assert_eq!(
                    preferred_lane_width(WIDE512_MIN_INSTANCES),
                    env_override().unwrap().lanes()
                );
            }
            None => {
                // The resolved lane width never exceeds the CPU cap.
                for instances in [1, 200, 400, 4100] {
                    assert!(preferred_lane_width(instances) <= report.max_lane_width);
                }
            }
        }
    }
}

//! Microbench: four-wise independent variable generation — the innermost
//! operation of every sketch update. Compares the BCH construction (with
//! and without shared cube precomputation) against the cubic-polynomial
//! family, the bit-sliced block evaluation behind the batched (64-lane),
//! wide (256-lane) and wide512 (512-lane) build kernels, plus the GF(2^k)
//! cube itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fourwise::{
    Lane, LaneCounter, WideLane, WideLane512, XiBlock, XiContext, XiFamily, XiKind, XiSeed,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_xi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let bits = 17u32; // node space of a 2^16 dyadic domain
    let indices: Vec<u64> = (0..1024u64)
        .map(|i| (i * 2654435761) % (1 << bits))
        .collect();

    let mut group = c.benchmark_group("xi_generation");
    group.throughput(Throughput::Elements(indices.len() as u64));

    for kind in [XiKind::Bch, XiKind::Poly] {
        let ctx = XiContext::new(kind, bits);
        let fam = ctx.family(ctx.random_seed(&mut rng));
        let pres: Vec<_> = indices.iter().map(|&i| ctx.precompute(i)).collect();

        group.bench_function(format!("{kind:?}/precomputed"), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for p in &pres {
                    acc += fam.xi_pre(black_box(*p));
                }
                acc
            })
        });
        group.bench_function(format!("{kind:?}/standalone"), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for &i in &indices {
                    acc += fam.xi(black_box(i));
                }
                acc
            })
        });
    }
    group.finish();

    // Block evaluation: a whole lane word of instances per pass (the
    // blocked build kernels' inner operation) against the equivalent scalar
    // evaluations, at every lane width.
    fn bench_blocks<L: Lane>(c: &mut Criterion, rng: &mut StdRng, bits: u32, indices: &[u64]) {
        let mut group = c.benchmark_group(format!("xi_block_{}lanes", L::LANES));
        group.throughput(Throughput::Elements(indices.len() as u64 * L::LANES as u64));
        for kind in [XiKind::Bch, XiKind::Poly] {
            let ctx = XiContext::new(kind, bits);
            let seeds: Vec<XiSeed> = (0..L::LANES).map(|_| ctx.random_seed(rng)).collect();
            let fams: Vec<XiFamily> = seeds.iter().map(|&s| ctx.family(s)).collect();
            let block = XiBlock::<L>::pack(&ctx, &seeds);
            let pres: Vec<_> = indices.iter().map(|&i| ctx.precompute(i)).collect();

            group.bench_function(format!("{kind:?}/bitsliced"), |b| {
                let mut counter = LaneCounter::<L>::new();
                let mut sums = vec![0i64; L::LANES];
                b.iter(|| {
                    block.sum_pre_into(black_box(&pres), &mut counter, &mut sums);
                    sums[0]
                })
            });
            group.bench_function(format!("{kind:?}/scalar_lanes"), |b| {
                b.iter(|| {
                    let mut acc = 0i64;
                    for fam in &fams {
                        acc += fam.sum_pre(black_box(&pres));
                    }
                    acc
                })
            });
        }
        group.finish();
    }
    bench_blocks::<u64>(c, &mut rng, bits, &indices);
    bench_blocks::<WideLane>(c, &mut rng, bits, &indices);
    bench_blocks::<WideLane512>(c, &mut rng, bits, &indices);

    // The shared per-index precomputation itself (table-hit path).
    let ctx = XiContext::new(XiKind::Bch, bits);
    let mut group = c.benchmark_group("cube_precompute");
    group.throughput(Throughput::Elements(indices.len() as u64));
    group.bench_function("tabulated", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &indices {
                acc ^= ctx.precompute(black_box(i)).cube;
            }
            acc
        })
    });
    // And the raw field arithmetic (what large domains pay).
    let gf = fourwise::GfContext::new(40);
    group.bench_function("gf_cube_40bit", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &i in &indices {
                acc ^= gf.cube(black_box(i));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_xi);
criterion_main!(benches);

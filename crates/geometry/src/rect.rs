//! Points and axis-aligned hyper-rectangles in `d` dimensions.

use crate::interval::{Coord, Interval};
use crate::relation::IntervalRelation;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A point in d-dimensional discrete space.
pub type Point<const D: usize> = [Coord; D];

/// An axis-aligned hyper-rectangle: the cross product of one closed interval
/// per dimension (Definition 1's `r = r(1) × r(2) × ... × r(d)`).
///
/// `D = 1` models intervals-with-rectangle-API, `D = 2` rectangles, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HyperRect<const D: usize> {
    ranges: [Interval; D],
}

// serde cannot derive for const-generic arrays; encode as a length-D sequence.
impl<const D: usize> Serialize for HyperRect<D> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.ranges.as_slice().serialize(serializer)
    }
}

impl<'de, const D: usize> Deserialize<'de> for HyperRect<D> {
    fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
        let v: Vec<Interval> = Vec::deserialize(deserializer)?;
        if v.len() != D {
            return Err(De::Error::invalid_length(
                v.len(),
                &"one interval per dimension",
            ));
        }
        let mut ranges = [Interval::point(0); D];
        ranges.copy_from_slice(&v);
        Ok(HyperRect { ranges })
    }
}

impl<const D: usize> HyperRect<D> {
    /// Creates a hyper-rectangle from per-dimension ranges.
    #[inline]
    pub fn new(ranges: [Interval; D]) -> Self {
        Self { ranges }
    }

    /// Creates a hyper-rectangle from corner points `lo` and `hi`
    /// (componentwise `lo[i] <= hi[i]`).
    ///
    /// # Panics
    ///
    /// Panics if any `lo[i] > hi[i]`.
    pub fn from_corners(lo: Point<D>, hi: Point<D>) -> Self {
        let mut ranges = [Interval::point(0); D];
        for i in 0..D {
            ranges[i] = Interval::new(lo[i], hi[i]);
        }
        Self { ranges }
    }

    /// The degenerate hyper-rectangle containing exactly one point.
    pub fn from_point(p: Point<D>) -> Self {
        let mut ranges = [Interval::point(0); D];
        for i in 0..D {
            ranges[i] = Interval::point(p[i]);
        }
        Self { ranges }
    }

    /// Range in dimension `i` (`r(i)` in the paper).
    #[inline]
    pub fn range(&self, i: usize) -> Interval {
        self.ranges[i]
    }

    /// All per-dimension ranges.
    #[inline]
    pub fn ranges(&self) -> &[Interval; D] {
        &self.ranges
    }

    /// Lower corner.
    pub fn lo(&self) -> Point<D> {
        let mut p = [0; D];
        for i in 0..D {
            p[i] = self.ranges[i].lo();
        }
        p
    }

    /// Upper corner.
    pub fn hi(&self) -> Point<D> {
        let mut p = [0; D];
        for i in 0..D {
            p[i] = self.ranges[i].hi();
        }
        p
    }

    /// Whether the rectangle is degenerate in *some* dimension (zero extent).
    /// Degenerate objects cannot contribute to the paper's spatial join.
    pub fn is_degenerate(&self) -> bool {
        self.ranges.iter().any(Interval::is_degenerate)
    }

    /// d-dimensional volume (product of lengths); zero iff degenerate.
    pub fn volume(&self) -> u128 {
        self.ranges.iter().map(|r| r.length() as u128).product()
    }

    /// Closed containment of a point.
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.ranges[i].contains(p[i]))
    }

    /// Closed containment of another hyper-rectangle.
    pub fn contains_rect(&self, other: &HyperRect<D>) -> bool {
        (0..D).all(|i| self.ranges[i].contains_interval(&other.ranges[i]))
    }

    /// The paper's spatial-join predicate: the rectangles overlap iff their
    /// projections overlap (Figure 3 cases 3-6) in **every** dimension, i.e.
    /// the intersection has full dimensionality.
    pub fn overlaps(&self, other: &HyperRect<D>) -> bool {
        (0..D).all(|i| self.ranges[i].overlaps(&other.ranges[i]))
    }

    /// Extended overlap `overlap+` (Definition 4): non-empty intersection of
    /// any dimensionality (admits touching at faces/edges/corners).
    pub fn overlaps_plus(&self, other: &HyperRect<D>) -> bool {
        (0..D).all(|i| self.ranges[i].overlaps_plus(&other.ranges[i]))
    }

    /// The intersection hyper-rectangle, if non-empty.
    pub fn intersection(&self, other: &HyperRect<D>) -> Option<HyperRect<D>> {
        let mut ranges = [Interval::point(0); D];
        for i in 0..D {
            ranges[i] = self.ranges[i].intersection(&other.ranges[i])?;
        }
        Some(HyperRect::new(ranges))
    }

    /// Per-dimension spatial relationship tuple (Figure 4's `(i_1, .., i_d)`).
    pub fn relation(&self, other: &HyperRect<D>) -> [IntervalRelation; D] {
        let mut out = [IntervalRelation::Disjoint; D];
        for i in 0..D {
            out[i] = IntervalRelation::of(&self.ranges[i], &other.ranges[i]);
        }
        out
    }

    /// Whether some endpoint coordinate is shared with `other` in some
    /// dimension (violating Assumption 1 for that dimension).
    pub fn shares_endpoint(&self, other: &HyperRect<D>) -> bool {
        (0..D).any(|i| self.ranges[i].shares_endpoint(&other.ranges[i]))
    }
}

/// An interval treated as a 1-dimensional hyper-rectangle.
impl From<Interval> for HyperRect<1> {
    fn from(iv: Interval) -> Self {
        HyperRect::new([iv])
    }
}

/// Convenience constructor for 2-d rectangles `[x_lo, x_hi] × [y_lo, y_hi]`.
pub fn rect2(x_lo: Coord, x_hi: Coord, y_lo: Coord, y_hi: Coord) -> HyperRect<2> {
    HyperRect::new([Interval::new(x_lo, x_hi), Interval::new(y_lo, y_hi)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_roundtrip() {
        let r = HyperRect::from_corners([1, 2, 3], [4, 5, 6]);
        assert_eq!(r.lo(), [1, 2, 3]);
        assert_eq!(r.hi(), [4, 5, 6]);
        assert_eq!(r.range(1), Interval::new(2, 5));
        assert_eq!(r.volume(), 27);
    }

    #[test]
    fn figure4_examples() {
        // Figure 4 shows rectangle pairs with per-dimension relationship
        // tuples; overlap iff every component is in {3,4,5,6}.
        let r = rect2(10, 20, 10, 20);

        // (2, 3): meet in x, overlap in y -> no overlap (only overlap+)
        let s = rect2(20, 30, 15, 25);
        assert!(!r.overlaps(&s));
        assert!(r.overlaps_plus(&s));
        let rel = r.relation(&s);
        assert_eq!(rel[0].paper_case(), 2);
        assert_eq!(rel[1].paper_case(), 3);

        // (3, 3): overlap in both -> overlap
        let s = rect2(15, 25, 15, 25);
        assert!(r.overlaps(&s));
        assert_eq!(r.relation(&s).map(|c| c.paper_case()), [3, 3]);

        // (4, 5): contained in x, contained-with-shared-endpoint in y
        let s = rect2(12, 18, 10, 15);
        assert!(r.overlaps(&s));
        assert_eq!(r.relation(&s).map(|c| c.paper_case()), [4, 5]);

        // (3, 4) overlap
        let s = rect2(15, 25, 12, 18);
        assert!(r.overlaps(&s));
        assert_eq!(r.relation(&s).map(|c| c.paper_case()), [3, 4]);
    }

    #[test]
    fn corner_touch_is_overlap_plus_only() {
        let r = rect2(0, 10, 0, 10);
        let s = rect2(10, 20, 10, 20);
        assert!(!r.overlaps(&s));
        assert!(r.overlaps_plus(&s));
        assert_eq!(r.intersection(&s), Some(HyperRect::from_point([10, 10])));
    }

    #[test]
    fn point_and_rect_containment() {
        let r = rect2(2, 8, 3, 9);
        assert!(r.contains_point(&[2, 3]));
        assert!(r.contains_point(&[8, 9]));
        assert!(!r.contains_point(&[9, 5]));
        assert!(r.contains_rect(&rect2(2, 8, 3, 9)));
        assert!(r.contains_rect(&rect2(3, 7, 4, 8)));
        assert!(!r.contains_rect(&rect2(3, 7, 4, 10)));
    }

    #[test]
    fn degenerate_detection() {
        assert!(rect2(5, 5, 0, 9).is_degenerate());
        assert!(HyperRect::from_point([1, 2]).is_degenerate());
        assert!(!rect2(5, 6, 0, 9).is_degenerate());
        assert_eq!(rect2(5, 5, 0, 9).volume(), 0);
    }

    #[test]
    fn one_dimensional_compatibility() {
        let iv = Interval::new(4, 9);
        let r: HyperRect<1> = iv.into();
        assert!(r.overlaps(&Interval::new(7, 12).into()));
        assert!(!r.overlaps(&Interval::new(9, 12).into()));
    }

    // Seeded stand-ins for the original proptest properties (the offline
    // build has no proptest).
    fn random_rect_pair(rng: &mut rand::rngs::StdRng) -> (HyperRect<2>, HyperRect<2>) {
        use rand::Rng as _;
        let mut coord = || rng.gen_range(0u64..100);
        let (a, b, c, d) = (coord(), coord(), coord(), coord());
        let (e, f, g, h) = (coord(), coord(), coord(), coord());
        (
            rect2(a.min(b), a.max(b), c.min(d), c.max(d)),
            rect2(e.min(f), e.max(f), g.min(h), g.max(h)),
        )
    }

    #[test]
    fn overlap_symmetric_2d() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        for _ in 0..1024 {
            let (r, s) = random_rect_pair(&mut rng);
            assert_eq!(r.overlaps(&s), s.overlaps(&r));
            assert_eq!(r.overlaps_plus(&s), s.overlaps_plus(&r));
        }
    }

    #[test]
    fn overlap_iff_positive_intersection_volume() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        for _ in 0..1024 {
            let (r, s) = random_rect_pair(&mut rng);
            let vol_pos = r.intersection(&s).map(|i| i.volume() > 0).unwrap_or(false);
            assert_eq!(r.overlaps(&s), vol_pos);
            assert_eq!(r.overlaps_plus(&s), r.intersection(&s).is_some());
        }
    }

    #[test]
    fn containment_implies_overlap_for_nondegenerate() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        for _ in 0..1024 {
            let (a, b) = (rng.gen_range(0u64..50), rng.gen_range(51u64..100));
            let (c, d) = (rng.gen_range(0u64..50), rng.gen_range(51u64..100));
            let outer = rect2(a, b, c, d);
            let inner = rect2(a + 1, b.max(a + 2), c + 1, d.max(c + 2));
            if outer.contains_rect(&inner) && !inner.is_degenerate() {
                assert!(outer.overlaps(&inner));
            }
        }
    }
}

//! Containment-join estimation (Appendix B.2).
//!
//! "Assume we want to estimate how many intervals `[c, d] ∈ S` are contained
//! in intervals `[a, b] ∈ R`. We count how many squares `[a, b] × [a, b]`
//! contain the point `(c, d)`" — the d-dimensional containment problem
//! becomes a 2d-dimensional point-in-hyper-rectangle problem, estimated with
//! the same machinery as the ε-join. Containment is closed
//! (`a ≤ c ≤ d ≤ b`), so — like the ε-join — the estimator is unbiased with
//! no endpoint assumption.

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::Comp;
use crate::error::Result;
use crate::estimator::{DimTerm, PairEstimator, PairTerms};
use crate::estimators::SketchConfig;
use crate::query::QueryContext;
use crate::schema::{DimSpec, SketchSchema};
use geometry::{HyperRect, Interval};
use rand::Rng;

fn containment_pair<const SD: usize, R: Rng + ?Sized>(
    rng: &mut R,
    config: SketchConfig,
    data_bits: u32,
) -> PairEstimator<SD> {
    let dims: [DimSpec; SD] = std::array::from_fn(|_| match config.max_level {
        Some(ml) => DimSpec::with_max_level(data_bits, ml),
        None => DimSpec::dyadic(data_bits),
    });
    let schema = SketchSchema::new(rng, config.kind, config.shape, dims);
    // Outer side: interval cover of [a, b] in every sketch dimension.
    // Inner side: the point (c, d, ...) — one point cover per dimension.
    let per_dim: [Vec<DimTerm>; SD] =
        std::array::from_fn(|_| vec![DimTerm::new(Comp::Interval, Comp::LowerPoint, 1.0)]);
    let terms = PairTerms::from_dim_terms(&per_dim);
    PairEstimator::new(schema, terms, EndpointPolicy::Raw, EndpointPolicy::Raw)
}

/// Estimator for the 1-d containment join `#{(r, s) ∈ R × S : s ⊆ r}`.
///
/// Internally a 2-dimensional sketch: each outer interval `[a, b]` is the
/// square `[a, b]²`, each inner interval the point `(c, d)`.
#[derive(Debug, Clone)]
pub struct IntervalContainment {
    inner: PairEstimator<2>,
}

impl IntervalContainment {
    /// Creates the estimator for intervals over `{0, .., 2^data_bits - 1}`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: SketchConfig, data_bits: u32) -> Self {
        Self {
            inner: containment_pair::<2, R>(rng, config, data_bits),
        }
    }

    /// The underlying generic estimator.
    pub fn inner(&self) -> &PairEstimator<2> {
        &self.inner
    }

    /// Creates an empty sketch for the outer ("container") relation.
    pub fn new_sketch_outer(&self) -> SketchSet<2> {
        self.inner.new_sketch_r()
    }

    /// Creates an empty sketch for the inner ("contained") relation.
    pub fn new_sketch_inner(&self) -> SketchSet<2> {
        self.inner.new_sketch_s()
    }

    /// Inserts an outer interval.
    pub fn insert_outer(&self, sketch: &mut SketchSet<2>, iv: &Interval) -> Result<()> {
        sketch.insert(&HyperRect::new([*iv, *iv]))
    }

    /// Deletes an outer interval.
    pub fn delete_outer(&self, sketch: &mut SketchSet<2>, iv: &Interval) -> Result<()> {
        sketch.delete(&HyperRect::new([*iv, *iv]))
    }

    /// Inserts an inner interval.
    pub fn insert_inner(&self, sketch: &mut SketchSet<2>, iv: &Interval) -> Result<()> {
        sketch.insert(&HyperRect::new([
            Interval::point(iv.lo()),
            Interval::point(iv.hi()),
        ]))
    }

    /// Deletes an inner interval.
    pub fn delete_inner(&self, sketch: &mut SketchSet<2>, iv: &Interval) -> Result<()> {
        sketch.delete(&HyperRect::new([
            Interval::point(iv.lo()),
            Interval::point(iv.hi()),
        ]))
    }

    /// Combines the sketches into the boosted estimate of
    /// `#{(r, s) : s ⊆ r}`.
    pub fn estimate(&self, outer: &SketchSet<2>, inner: &SketchSet<2>) -> Result<Estimate> {
        self.inner.estimate(outer, inner)
    }

    /// Like [`IntervalContainment::estimate`] but with the caller's
    /// [`QueryContext`].
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        outer: &SketchSet<2>,
        inner: &SketchSet<2>,
    ) -> Result<Estimate> {
        self.inner.estimate_with(ctx, outer, inner)
    }
}

/// Estimator for the 2-d containment join (rectangles containing
/// rectangles), a 4-dimensional sketch.
#[derive(Debug, Clone)]
pub struct RectContainment {
    inner: PairEstimator<4>,
}

impl RectContainment {
    /// Creates the estimator for rectangles over a `2^data_bits`-sided
    /// domain.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: SketchConfig, data_bits: u32) -> Self {
        Self {
            inner: containment_pair::<4, R>(rng, config, data_bits),
        }
    }

    /// The underlying generic estimator.
    pub fn inner(&self) -> &PairEstimator<4> {
        &self.inner
    }

    /// Creates an empty sketch for the outer relation.
    pub fn new_sketch_outer(&self) -> SketchSet<4> {
        self.inner.new_sketch_r()
    }

    /// Creates an empty sketch for the inner relation.
    pub fn new_sketch_inner(&self) -> SketchSet<4> {
        self.inner.new_sketch_s()
    }

    fn outer_rect(r: &HyperRect<2>) -> HyperRect<4> {
        HyperRect::new([r.range(0), r.range(0), r.range(1), r.range(1)])
    }

    fn inner_rect(r: &HyperRect<2>) -> HyperRect<4> {
        HyperRect::new([
            Interval::point(r.range(0).lo()),
            Interval::point(r.range(0).hi()),
            Interval::point(r.range(1).lo()),
            Interval::point(r.range(1).hi()),
        ])
    }

    /// Inserts an outer rectangle.
    pub fn insert_outer(&self, sketch: &mut SketchSet<4>, r: &HyperRect<2>) -> Result<()> {
        sketch.insert(&Self::outer_rect(r))
    }

    /// Deletes an outer rectangle.
    pub fn delete_outer(&self, sketch: &mut SketchSet<4>, r: &HyperRect<2>) -> Result<()> {
        sketch.delete(&Self::outer_rect(r))
    }

    /// Inserts an inner rectangle.
    pub fn insert_inner(&self, sketch: &mut SketchSet<4>, r: &HyperRect<2>) -> Result<()> {
        sketch.insert(&Self::inner_rect(r))
    }

    /// Deletes an inner rectangle.
    pub fn delete_inner(&self, sketch: &mut SketchSet<4>, r: &HyperRect<2>) -> Result<()> {
        sketch.delete(&Self::inner_rect(r))
    }

    /// Combines the sketches into the boosted estimate of
    /// `#{(r, s) : s ⊆ r}`.
    pub fn estimate(&self, outer: &SketchSet<4>, inner: &SketchSet<4>) -> Result<Estimate> {
        self.inner.estimate(outer, inner)
    }

    /// Like [`RectContainment::estimate`] but with the caller's
    /// [`QueryContext`].
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        outer: &SketchSet<4>,
        inner: &SketchSet<4>,
    ) -> Result<Estimate> {
        self.inner.estimate_with(ctx, outer, inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_se<const SD: usize>(
        pair: &PairEstimator<SD>,
        r: &SketchSet<SD>,
        s: &SketchSet<SD>,
    ) -> (f64, f64) {
        let shape = pair.schema().shape();
        let mut vals = Vec::new();
        for inst in 0..shape.instances() {
            let rc = r.instance_counters(inst);
            let sc = s.instance_counters(inst);
            let mut z = 0.0;
            for t in pair.terms().terms() {
                z += t.coeff * (rc[t.r_word] as i128 * sc[t.s_word] as i128) as f64;
            }
            vals.push(z);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    #[test]
    fn interval_containment_unbiased() {
        let mut rng = StdRng::seed_from_u64(80);
        let est = IntervalContainment::new(&mut rng, SketchConfig::new(400, 5), 8);
        let mut grng = StdRng::seed_from_u64(4);
        let outer: Vec<Interval> = (0..30)
            .map(|_| {
                let lo = grng.gen_range(0..200u64);
                Interval::new(lo, lo + grng.gen_range(10..50u64).min(255 - lo))
            })
            .collect();
        let inner: Vec<Interval> = (0..30)
            .map(|_| {
                let lo = grng.gen_range(0..240u64);
                Interval::new(lo, lo + grng.gen_range(1..14u64).min(255 - lo))
            })
            .collect();
        let truth = exact::interval_containment_count(&outer, &inner) as f64;
        assert!(truth > 0.0);
        let mut osk = est.new_sketch_outer();
        let mut isk = est.new_sketch_inner();
        for iv in &outer {
            est.insert_outer(&mut osk, iv).unwrap();
        }
        for iv in &inner {
            est.insert_inner(&mut isk, iv).unwrap();
        }
        let (mean, se) = mean_se(est.inner(), &osk, &isk);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn closed_boundaries_count() {
        // Identical interval pairs are containment pairs; expectation must
        // reflect that exactly (closed semantics, no transform needed).
        let mut rng = StdRng::seed_from_u64(81);
        let est = IntervalContainment::new(&mut rng, SketchConfig::new(2000, 3), 5);
        let iv = Interval::new(7, 19);
        let mut osk = est.new_sketch_outer();
        let mut isk = est.new_sketch_inner();
        est.insert_outer(&mut osk, &iv).unwrap();
        est.insert_inner(&mut isk, &iv).unwrap();
        let (mean, se) = mean_se(est.inner(), &osk, &isk);
        assert!((mean - 1.0).abs() <= 6.0 * se + 1e-9, "mean {mean} se {se}");
    }

    #[test]
    fn rect_containment_unbiased() {
        let mut rng = StdRng::seed_from_u64(82);
        let est = RectContainment::new(&mut rng, SketchConfig::new(500, 5), 6);
        let mut grng = StdRng::seed_from_u64(5);
        let outer: Vec<HyperRect<2>> = (0..20)
            .map(|_| {
                let x = grng.gen_range(0..30u64);
                let y = grng.gen_range(0..30u64);
                rect2(
                    x,
                    x + grng.gen_range(8..30u64),
                    y,
                    y + grng.gen_range(8..30u64),
                )
            })
            .collect();
        let inner: Vec<HyperRect<2>> = (0..20)
            .map(|_| {
                let x = grng.gen_range(0..50u64);
                let y = grng.gen_range(0..50u64);
                rect2(
                    x,
                    x + grng.gen_range(1..8u64),
                    y,
                    y + grng.gen_range(1..8u64),
                )
            })
            .collect();
        let truth = exact::containment_count(&outer, &inner) as f64;
        assert!(truth > 0.0);
        let mut osk = est.new_sketch_outer();
        let mut isk = est.new_sketch_inner();
        for r in &outer {
            est.insert_outer(&mut osk, r).unwrap();
        }
        for r in &inner {
            est.insert_inner(&mut isk, r).unwrap();
        }
        let (mean, se) = mean_se(est.inner(), &osk, &isk);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn deletions_work() {
        let mut rng = StdRng::seed_from_u64(83);
        let est = IntervalContainment::new(&mut rng, SketchConfig::new(8, 3), 8);
        let mut osk = est.new_sketch_outer();
        est.insert_outer(&mut osk, &Interval::new(5, 100)).unwrap();
        est.delete_outer(&mut osk, &Interval::new(5, 100)).unwrap();
        assert!(osk.is_empty());
        assert!(
            (0..osk.schema().instances()).all(|i| osk.instance_counters(i).iter().all(|&c| c == 0))
        );
    }
}

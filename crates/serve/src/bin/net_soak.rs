//! Network-layer soak test: a real TCP server under concurrent ingest,
//! batched queries, one injected handler panic and a deterministic
//! overload phase — the binary the CI `serve-net` lane runs under each
//! blocked kernel (`SKETCH_KERNEL=batched|wide|wide512`).
//!
//! Usage: cargo run --release -p spatial-serve --bin net_soak --
//!          [--iters N] [--shards N] [--seed N] [--clients N] [--batch N]
//!
//! Five phases:
//!
//! 1. **Quiescent differential** — each round ingests into the sharded
//!    stores *and* unsharded oracles, then sends a mixed range/stab/join
//!    batch over TCP and asserts every reply is **bit-identical** to the
//!    oracle estimate.
//! 2. **Fault injection + recovery** — a wire `FaultPanic` must come back
//!    `Internal`, the server must record the panic, and the very next
//!    batches must bit-match again (the poisoned pool slot was recovered,
//!    not abandoned).
//! 3. **Concurrency smoke** — client threads stream batches while the
//!    main thread swaps epochs in; replies must stay well-formed, and at
//!    quiescence every connection must bit-match the oracle.
//! 4. **Deterministic overload** — a zero-capacity server sheds every
//!    query with `Overloaded`, never dropping or blocking.
//! 5. **Slow-reader write-backpressure** — a client pipelines dozens of
//!    frames into a server with a tiny reply write buffer and collects
//!    nothing until the end; the reactor must stop *reading* that
//!    connection instead of buffering replies without bound, resume when
//!    the client drains, and every reply must still bit-match the oracle.
//!
//! The server honors the `SKETCH_NET_REACTORS` / `SKETCH_NET_COALESCE_US`
//! env knobs, which the CI `serve-net` lane sweeps (coalescing on/off).
//! Everything is seeded; a nonzero exit (assert) means a real bug in the
//! codec, the reactor, the batch queue, the pool recovery or the router.

use geometry::{HyperRect, Interval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::net::{range_query, stab_query, SketchClient, WireErrorCode, WireQuery, WireReply};
use serve::{ContextPool, ServeConfig, SketchService};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{Estimate, QueryContext, RangeQuery};
use std::sync::Arc;

const BITS: u32 = 8;
/// Store-table indices the wire queries address.
const RANGE_STORE: u32 = 0;
const R_STORE: u32 = 1;
const S_STORE: u32 = 2;

struct Args {
    iters: usize,
    shards: usize,
    seed: u64,
    clients: usize,
    batch: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 20,
        shards: 3,
        seed: 17,
        clients: 2,
        batch: 7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .unwrap_or_else(|| die(&format!("flag {flag} needs a value")));
        let parsed: u64 = value
            .parse()
            .unwrap_or_else(|_| die(&format!("cannot parse `{value}` for {flag}")));
        match flag.as_str() {
            "--iters" => args.iters = parsed as usize,
            "--shards" => args.shards = (parsed as usize).max(1),
            "--seed" => args.seed = parsed,
            "--clients" => args.clients = (parsed as usize).max(1),
            "--batch" => args.batch = (parsed as usize).max(1),
            other => die(&format!(
                "unknown flag `{other}` (supported: --iters --shards --seed --clients --batch)"
            )),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("net_soak: {msg}");
    std::process::exit(2);
}

fn rand_rects(rng: &mut StdRng, n: usize) -> Vec<HyperRect<2>> {
    let max = (1u64 << BITS) - 1;
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..max - 17);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

fn assert_wire_matches(want: &Estimate, got: &WireReply, label: &str) {
    match got {
        WireReply::Estimate { value, row_means } => {
            assert_eq!(
                want.value.to_bits(),
                value.to_bits(),
                "{label}: networked total diverged from the oracle ({value} vs {})",
                want.value
            );
            assert_eq!(&want.row_means, row_means, "{label}: row means diverged");
        }
        WireReply::Error { code, message } => {
            panic!("{label}: expected an estimate, got {code:?}: {message}")
        }
        WireReply::Partial { .. } => {
            panic!("{label}: expected a boosted estimate, got a partial grid")
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let report = sketch::dispatch_report();
    println!(
        "net-soak dispatch: cpu={} max_lane_width={} override={}",
        report.cpu.name(),
        report.max_lane_width,
        report.env_override.unwrap_or("none"),
    );
    let mut rng = StdRng::seed_from_u64(args.seed);

    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [BITS, BITS],
        sketch::RangeStrategy::Transform,
    );
    let join = SpatialJoin::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [BITS, BITS],
        EndpointStrategy::Transform,
    );
    let range_store = Arc::new(serve::ShardedStore::like(&rq.new_sketch(), args.shards));
    let r_store = Arc::new(serve::ShardedStore::like(&join.new_sketch_r(), args.shards));
    let s_store = Arc::new(serve::ShardedStore::like(&join.new_sketch_s(), args.shards));
    let mut range_oracle = rq.new_sketch();
    let mut r_oracle = join.new_sketch_r();
    let mut s_oracle = join.new_sketch_s();

    let service = Arc::new(
        SketchService::new(
            rq.clone(),
            vec![
                Arc::clone(&range_store),
                Arc::clone(&r_store),
                Arc::clone(&s_store),
            ],
        )
        .with_join(join.clone()),
    );
    let pool = Arc::new(ContextPool::new(2));
    // The remaining knobs (reactors, coalesce_us, write-backpressure
    // bounds) come from `Default`, which consults the `SKETCH_NET_*` env
    // vars — the CI lane matrix sweeps coalescing on/off through them.
    let config = ServeConfig {
        workers: 2,
        max_batch: args.batch.max(4),
        queue_capacity: 256,
        fault_injection: true,
        ..ServeConfig::default()
    };
    println!(
        "net-soak multiplexer: reactors={} coalesce_us={}",
        config.reactors, config.coalesce_us
    );
    let server = serve::net::serve(Arc::clone(&service), Arc::clone(&pool), &config, 0)
        .unwrap_or_else(|e| die(&format!("cannot bind: {e}")));
    let addr = server.local_addr();
    let mut client =
        SketchClient::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect: {e}")));
    client.ping().expect("ping");

    let mut octx = QueryContext::new();
    let mut live: Vec<HyperRect<2>> = Vec::new();
    let mut checks = 0u64;

    // Phase 1: quiescent differential rounds.
    for round in 0..args.iters {
        let batch = rand_rects(&mut rng, 30);
        range_store.insert_slice(&batch).unwrap();
        range_oracle.insert_slice(&batch).unwrap();
        r_store.insert_slice(&batch).unwrap();
        r_oracle.insert_slice(&batch).unwrap();
        let other = rand_rects(&mut rng, 30);
        s_store.insert_slice(&other).unwrap();
        s_oracle.insert_slice(&other).unwrap();
        live.extend_from_slice(&batch);
        if live.len() > 90 {
            let dels: Vec<HyperRect<2>> = live.drain(..20).collect();
            range_store.delete_slice(&dels).unwrap();
            range_oracle.delete_slice(&dels).unwrap();
            r_store.delete_slice(&dels).unwrap();
            r_oracle.delete_slice(&dels).unwrap();
        }

        // One mixed wire batch per round: ranges, stabs, one join.
        let rects = rand_rects(&mut rng, args.batch.saturating_sub(3).max(1));
        let mut queries: Vec<WireQuery> =
            rects.iter().map(|q| range_query(RANGE_STORE, q)).collect();
        let anchor = live[rng.gen_range(0..live.len())];
        let p = [anchor.range(0).lo(), anchor.range(1).lo()];
        queries.push(stab_query(RANGE_STORE, &p));
        queries.push(WireQuery::Join {
            r_store: R_STORE,
            s_store: S_STORE,
        });
        let replies = client.query_batch(&queries).expect("query batch");
        for (i, q) in rects.iter().enumerate() {
            let want = rq.estimate_with(&mut octx, &range_oracle, q).unwrap();
            assert_wire_matches(&want, &replies[i], &format!("round {round} range {i}"));
            checks += 1;
        }
        let want = rq.estimate_stab_with(&mut octx, &range_oracle, &p).unwrap();
        assert_wire_matches(&want, &replies[rects.len()], &format!("round {round} stab"));
        let want = join.estimate_with(&mut octx, &r_oracle, &s_oracle).unwrap();
        assert_wire_matches(
            &want,
            &replies[rects.len() + 1],
            &format!("round {round} join"),
        );
        checks += 2;
    }

    // Phase 2: injected handler panic over the wire, then recovery.
    let replies = client
        .query_batch(&[WireQuery::FaultPanic])
        .expect("fault batch");
    assert!(
        matches!(
            replies[0],
            WireReply::Error {
                code: WireErrorCode::Internal,
                ..
            }
        ),
        "injected panic should answer Internal, got {:?}",
        replies[0]
    );
    assert!(
        server.stats().panics >= 1,
        "server did not record the injected panic"
    );
    for round in 0..3 {
        let q = rand_rects(&mut rng, 1)[0];
        let replies = client
            .query_batch(&[range_query(RANGE_STORE, &q)])
            .expect("post-panic batch");
        let want = rq.estimate_with(&mut octx, &range_oracle, &q).unwrap();
        assert_wire_matches(&want, &replies[0], &format!("post-panic round {round}"));
        checks += 1;
    }

    // Phase 3: concurrent clients race epoch swaps, then quiesce.
    let queries = rand_rects(&mut rng, 8);
    let churn = rand_rects(&mut rng, 60);
    std::thread::scope(|scope| {
        for t in 0..args.clients {
            let queries = &queries;
            scope.spawn(move || {
                let mut c = SketchClient::connect(addr).expect("client connect");
                for i in 0..15usize {
                    let batch: Vec<WireQuery> = (0..3)
                        .map(|j| range_query(RANGE_STORE, &queries[(t + i + j) % queries.len()]))
                        .collect();
                    let replies = c.query_batch(&batch).expect("concurrent batch");
                    for reply in replies {
                        match reply {
                            WireReply::Estimate { value, .. } => {
                                assert!(value.is_finite(), "client {t} non-finite estimate")
                            }
                            WireReply::Error { code, message } => {
                                panic!("client {t} mid-churn error {code:?}: {message}")
                            }
                            WireReply::Partial { .. } => {
                                panic!("client {t} got a partial grid for a boosted query")
                            }
                        }
                    }
                }
            });
        }
        for chunk in churn.chunks(12) {
            range_store.insert_slice(chunk).unwrap();
        }
    });
    range_oracle.insert_slice(&churn).unwrap();
    let batch: Vec<WireQuery> = queries
        .iter()
        .map(|q| range_query(RANGE_STORE, q))
        .collect();
    let replies = client.query_batch(&batch).expect("quiescent batch");
    for (q, reply) in queries.iter().zip(&replies) {
        let want = rq.estimate_with(&mut octx, &range_oracle, q).unwrap();
        assert_wire_matches(&want, reply, "post-churn quiescence");
        checks += 1;
    }

    let stats = server.shutdown();

    // Phase 4: a zero-capacity server sheds deterministically.
    let shed_server = serve::net::serve(
        Arc::clone(&service),
        Arc::clone(&pool),
        &ServeConfig {
            queue_capacity: 0,
            ..config.clone()
        },
        0,
    )
    .unwrap_or_else(|e| die(&format!("cannot bind shed server: {e}")));
    let mut shed_client = SketchClient::connect(shed_server.local_addr()).expect("shed connect");
    let replies = shed_client
        .query_batch(&batch)
        .expect("shed batch round-trips");
    assert!(
        replies.iter().all(|r| matches!(
            r,
            WireReply::Error {
                code: WireErrorCode::Overloaded,
                ..
            }
        )),
        "zero-capacity server must shed every query"
    );
    let shed_stats = shed_server.shutdown();
    assert_eq!(shed_stats.shed, batch.len() as u64);

    // Phase 5: slow-reader write-backpressure. A tiny reply write buffer
    // plus a client that pipelines every frame before collecting any
    // forces the reactor past `write_buf_cap`; it must park the reads for
    // that connection (bounding memory), keep the rest of the server
    // live, and deliver every bit-identical reply once the client drains.
    let bp_server = serve::net::serve(
        Arc::clone(&service),
        Arc::clone(&pool),
        &ServeConfig {
            write_buf_cap: 1024,
            max_pipeline: 64,
            fault_injection: false,
            ..config.clone()
        },
        0,
    )
    .unwrap_or_else(|e| die(&format!("cannot bind backpressure server: {e}")));
    let mut slow = SketchClient::connect(bp_server.local_addr()).expect("slow-reader connect");
    let bp_rects = rand_rects(&mut rng, 24);
    let tickets: Vec<_> = bp_rects
        .iter()
        .map(|q| {
            let frame: Vec<WireQuery> = (0..3).map(|_| range_query(RANGE_STORE, q)).collect();
            slow.submit(&frame).expect("pipelined submit")
        })
        .collect();
    assert_eq!(slow.in_flight(), tickets.len());
    // Give the server time to answer what it admitted and hit the write
    // cap; a healthy reactor keeps serving *other* connections meanwhile.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut other = SketchClient::connect(bp_server.local_addr()).expect("second connect");
    other.ping().expect("server responsive under backpressure");
    // Drain in reverse submission order: completion order is the
    // server's, association is by frame id.
    for (i, ticket) in tickets.iter().enumerate().rev() {
        let replies = slow.collect(*ticket).expect("backpressured collect");
        assert_eq!(replies.len(), 3, "backpressure frame {i} arity");
        let want = rq
            .estimate_with(&mut octx, &range_oracle, &bp_rects[i])
            .unwrap();
        for reply in &replies {
            assert_wire_matches(&want, reply, &format!("backpressure frame {i}"));
            checks += 1;
        }
    }
    let bp_stats = bp_server.shutdown();
    assert_eq!(
        bp_stats.served,
        3 * bp_rects.len() as u64,
        "every pipelined query must be served, none dropped under backpressure"
    );

    println!(
        "net-soak OK: {} rounds, {checks} bit-match checks, {} served / {} batches, {} panic(s) recovered, {} shed, backpressure drained {}",
        args.iters, stats.served, stats.batches, stats.panics, shed_stats.shed, bp_stats.served
    );
}

//! GIS scenario: size a spatial-join plan for map overlays without touching
//! the data twice.
//!
//! A query optimizer deciding between join strategies for
//! `LANDO ⋈ SOIL`-style map overlays needs the join cardinality *before*
//! running the join. This example maintains sketches over the two (simulated
//! Wyoming) map relations and compares the sketch estimate against the
//! histogram baselines and the exact answer, at equal memory.
//!
//! Run with: `cargo run --release --example gis_join_estimation`

use rand::SeedableRng;
use spatial_sketch::datagen;
use spatial_sketch::exact;
use spatial_sketch::histograms::{EulerHistogram, GeometricHistogram, GridSpec};
use spatial_sketch::sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use spatial_sketch::sketch::estimators::SketchConfig;
use spatial_sketch::sketch::{par_insert_batch, plan, BoostShape};

fn main() {
    let bits = datagen::GIS_DOMAIN_BITS;
    let lando = datagen::lando(1);
    let soil = datagen::soil(1);
    println!(
        "datasets: LANDO = {} objects, SOIL = {} objects (simulated; see DESIGN.md)",
        lando.len(),
        soil.len()
    );

    let truth = exact::rect_join_count(&lando, &soil);
    println!("exact |LANDO jn SOIL| = {truth}\n");

    // Give every estimator the same memory: an EH at level 4 (2209 words).
    let level = 4u32;
    let words = EulerHistogram::words_at_level(level) as f64;
    println!("memory budget per dataset: {words} words\n");

    // SKETCH with adaptive maxLevel.
    let mean_extent: f64 = lando
        .iter()
        .chain(soil.iter())
        .map(|x| 3.0 * (x.range(0).length() + x.range(1).length()) as f64 / 2.0)
        .sum::<f64>()
        / (lando.len() + soil.len()) as f64;
    let max_level = plan::adaptive_max_level(mean_extent, bits + 2);
    let instances = plan::instances_for_dataset_words(2, words);
    let shape = BoostShape::new(instances / 5, 5);
    let config = SketchConfig {
        kind: spatial_sketch::fourwise::XiKind::Bch,
        shape,
        max_level: Some(max_level),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);
    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_r, &lando, 8).expect("LANDO sketch");
    par_insert_batch(&mut sk_s, &soil, 8).expect("SOIL sketch");
    let sketch_est = join.estimate(&sk_r, &sk_s).expect("estimate").value;

    // Histogram baselines at the same budget.
    let spec = GridSpec::new(bits, level);
    let mut eh_r = EulerHistogram::new(spec);
    let mut eh_s = EulerHistogram::new(spec);
    let gh_level = 4; // 4^5 = 1024 words <= budget
    let gspec = GridSpec::new(bits, gh_level);
    let mut gh_r = GeometricHistogram::new(gspec);
    let mut gh_s = GeometricHistogram::new(gspec);
    for x in &lando {
        eh_r.insert(x);
        gh_r.insert(x);
    }
    for x in &soil {
        eh_s.insert(x);
        gh_s.insert(x);
    }
    let eh_est = eh_r.estimate_join(&eh_s);
    let gh_est = gh_r.estimate_join(&gh_s);

    let rel = |est: f64| (est - truth as f64).abs() / truth as f64;
    println!("estimator  estimate      relative error");
    println!("SKETCH     {sketch_est:>10.0}    {:.3}", rel(sketch_est));
    println!("EH  (L{level})   {eh_est:>10.0}    {:.3}", rel(eh_est));
    println!("GH  (L{gh_level})   {gh_est:>10.0}    {:.3}", rel(gh_est));
    println!();
    println!(
        "Only SKETCH comes with a guarantee: with {} instances (k1 = {}, k2 = {}),",
        shape.instances(),
        shape.k1,
        shape.k2
    );
    println!("Lemma 1 bounds the error given the self-join sizes — and the sketch keeps");
    println!("working under inserts AND deletes, which the paper's Section 7.4 highlights");
    println!("as the practical advantage over static histograms.");
}

//! Parallel batch construction — and block-parallel estimation — of
//! sketches.
//!
//! Sketch instances are mutually independent, so bulk-loading parallelizes
//! perfectly across the instance axis: the per-object dyadic covers and
//! GF(2^k) cubes are computed once (they are seed-independent), then worker
//! threads apply them to disjoint slices of the counter array. Under the
//! blocked kernels ([`BuildKernel::Batched`], [`BuildKernel::Wide`],
//! [`BuildKernel::Wide512`]) the split is aligned to whole instance blocks
//! *at the kernel's lane width* (64, 256 or 512 instances) so each worker
//! runs the bit-sliced kernel over its own contiguous counter range; the
//! scalar kernel splits per instance as before. This is how the experiment
//! harness affords the paper's thousands-of-instances configurations.
//!
//! Estimation parallelizes the same way ([`par_estimate`]): the atomic
//! estimate grid splits into whole instance blocks at the width the
//! schema's instance count prefers (see [`crate::query::QueryKernel`]),
//! each worker fills its share with the blocked query kernel, and the
//! single-threaded mean-then-median boost runs at the end. The result is
//! bit-identical to [`PairEstimator::estimate`].

use crate::atomic::{
    apply_block, apply_instance, BuildKernel, LaneScratch, RectScratch, SketchSet,
};
use crate::boost::Estimate;
use crate::error::Result;
use crate::estimator::PairEstimator;
use crate::query::{pair_fill_blocked, QueryKernel};
use crate::schema::{SchemaLanes, SketchSchema};
use crate::Word;
use fourwise::{WideLane, WideLane512};
use geometry::HyperRect;

/// Objects per scratch block: bounds the scratch memory (a few KB per
/// object) while amortizing thread spawn overhead.
const BLOCK: usize = 512;

/// Applies a signed bulk update using `threads` worker threads.
///
/// Equivalent to calling [`SketchSet::update`] for every rectangle (all
/// rectangles are validated up front, so either the whole batch applies or
/// the sketch is untouched).
pub fn par_update_batch<const D: usize>(
    sketch: &mut SketchSet<D>,
    rects: &[HyperRect<D>],
    delta: i64,
    threads: usize,
) -> Result<()> {
    let threads = threads.max(1);
    // Validate everything first so failures cannot leave partial state.
    for r in rects {
        sketch.validate_rect(r)?;
    }

    let schema = sketch.schema().clone();
    let words = sketch.words().clone();
    let instances = schema.instances();
    let kernel = sketch.kernel();

    let mut scratches: Vec<RectScratch<D>> = (0..BLOCK.min(rects.len().max(1)))
        .map(|_| RectScratch::new())
        .collect();

    for block in rects.chunks(BLOCK) {
        for (slot, rect) in scratches.iter_mut().zip(block.iter()) {
            sketch.fill_scratch(rect, slot).expect("validated above");
        }
        let filled = &scratches[..block.len()];
        let counters = sketch.counters_mut();
        match kernel {
            BuildKernel::Scalar => {
                let w = words.len();
                let per_thread = instances.div_ceil(threads);
                std::thread::scope(|scope| {
                    for (t, chunk) in counters.chunks_mut(per_thread * w).enumerate() {
                        let schema = &schema;
                        let words = &words;
                        scope.spawn(move || {
                            let base = t * per_thread;
                            for (j, row) in chunk.chunks_mut(w).enumerate() {
                                let inst = base + j;
                                for scratch in filled {
                                    apply_instance(schema, words, scratch, inst, row, delta);
                                }
                            }
                        });
                    }
                });
            }
            BuildKernel::Batched => {
                par_apply_blocked::<u64, D>(&schema, &words, filled, counters, threads, delta)
            }
            BuildKernel::Wide => {
                par_apply_blocked::<WideLane, D>(&schema, &words, filled, counters, threads, delta)
            }
            BuildKernel::Wide512 => par_apply_blocked::<WideLane512, D>(
                &schema, &words, filled, counters, threads, delta,
            ),
        }
    }
    sketch.add_len(delta * rects.len() as i64);
    Ok(())
}

/// Splits the counter array into whole `L::LANES`-instance blocks across
/// workers and streams the filled scratches through the blocked kernel.
/// Lanes never straddle a worker boundary, so each worker's counter chunk
/// stays block-aligned.
fn par_apply_blocked<L: SchemaLanes, const D: usize>(
    schema: &SketchSchema<D>,
    words: &[Word<D>],
    filled: &[RectScratch<D>],
    counters: &mut [i64],
    threads: usize,
    delta: i64,
) {
    let w = words.len();
    let per_thread = L::instance_blocks(schema).div_ceil(threads) * L::LANES;
    std::thread::scope(|scope| {
        for (t, chunk) in counters.chunks_mut(per_thread * w).enumerate() {
            scope.spawn(move || {
                let mut lanes = LaneScratch::<L, D>::new();
                let mut b = t * per_thread / L::LANES;
                let mut rest = chunk;
                while !rest.is_empty() {
                    let rows = L::seed_blocks(schema, 0)[b].lanes();
                    let (block_rows, tail) = rest.split_at_mut(rows * w);
                    for scratch in filled {
                        apply_block(schema, words, scratch, b, &mut lanes, block_rows, delta);
                    }
                    rest = tail;
                    b += 1;
                }
            });
        }
    });
}

/// Folds many sketch sets into `dst` with `threads` workers — the
/// cross-shard fan-in of a sharded serving store. Counter merging is pure
/// integer addition (sketches are linear), so the result is independent of
/// worker split and part order and bit-identical to folding the parts
/// sequentially with [`SketchSet::merge_from`].
///
/// All parts are checked up front (schema, words, policy); on error `dst`
/// is untouched.
pub fn par_merge_batch<const D: usize>(
    dst: &mut SketchSet<D>,
    parts: &[&SketchSet<D>],
    threads: usize,
) -> Result<()> {
    for p in parts {
        dst.check_mergeable(p)?;
    }
    if parts.is_empty() {
        return Ok(());
    }
    let threads = threads.max(1);
    let w = dst.words().len();
    let instances = dst.schema().instances();
    let per_thread = instances.div_ceil(threads) * w;
    let len_delta: i64 = parts.iter().map(|p| p.len()).sum();
    let counters = dst.counters_mut();
    std::thread::scope(|scope| {
        for (t, chunk) in counters.chunks_mut(per_thread).enumerate() {
            scope.spawn(move || {
                let base = t * per_thread;
                for part in parts {
                    let src = &part.counters()[base..base + chunk.len()];
                    for (c, o) in chunk.iter_mut().zip(src.iter()) {
                        *c += o;
                    }
                }
            });
        }
    });
    dst.add_len(len_delta);
    Ok(())
}

/// Parallel bulk insert; see [`par_update_batch`].
pub fn par_insert_batch<const D: usize>(
    sketch: &mut SketchSet<D>,
    rects: &[HyperRect<D>],
    threads: usize,
) -> Result<()> {
    par_update_batch(sketch, rects, 1, threads)
}

/// Fills the atomic grid block-parallel at lane width `L`.
fn par_fill_pair<L: SchemaLanes, const D: usize>(
    pair: &PairEstimator<D>,
    r: &SketchSet<D>,
    s: &SketchSet<D>,
    threads: usize,
    atomic: &mut [f64],
) {
    let schema = pair.schema();
    let blocks = L::instance_blocks(schema);
    let per_thread = blocks.div_ceil(threads);
    let terms = pair.terms().terms();
    std::thread::scope(|scope| {
        let mut rest = atomic;
        let mut block = 0usize;
        while !rest.is_empty() {
            let span_end = (block + per_thread).min(blocks);
            let insts: usize = (block..span_end)
                .map(|b| L::seed_blocks(schema, 0)[b].lanes())
                .sum();
            let (chunk, tail) = rest.split_at_mut(insts);
            rest = tail;
            let first = block;
            block = span_end;
            scope.spawn(move || pair_fill_blocked::<L, D>(terms, r, s, first, chunk));
        }
    });
}

/// Block-parallel pair estimation: splits the atomic estimate grid into
/// whole instance blocks across `threads` workers — at the lane width the
/// schema's instance count prefers (the `SKETCH_KERNEL` override pins it) —
/// each running the blocked query kernel over its contiguous share, then
/// boosts single-threaded. Bit-identical to [`PairEstimator::estimate`]
/// under every kernel, worthwhile once `instances × terms` is large enough
/// to amortize thread spawns.
pub fn par_estimate<const D: usize>(
    pair: &PairEstimator<D>,
    r: &SketchSet<D>,
    s: &SketchSet<D>,
    threads: usize,
) -> Result<Estimate> {
    pair.check_sketches(r, s)?;
    let threads = threads.max(1);
    let schema = pair.schema();
    let shape = schema.shape();
    let mut atomic = vec![0.0f64; shape.instances()];
    match QueryKernel::Auto.resolve(shape.instances()) {
        QueryKernel::Wide => par_fill_pair::<WideLane, D>(pair, r, s, threads, &mut atomic),
        QueryKernel::Wide512 => par_fill_pair::<WideLane512, D>(pair, r, s, threads, &mut atomic),
        // The scalar oracle has no blocked form; its estimates are
        // bit-identical to the batched fill, which parallelizes.
        _ => par_fill_pair::<u64, D>(pair, r, s, threads, &mut atomic),
    }
    Ok(Estimate::from_grid(&atomic, shape.k1, shape.k2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::EndpointPolicy;
    use crate::comp::ie_words;
    use crate::schema::{BoostShape, DimSpec, SketchSchema};
    use fourwise::XiKind;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use std::sync::Arc;

    fn rects(n: usize, seed: u64) -> Vec<HyperRect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0..200u64);
                let y = rng.gen_range(0..200u64);
                rect2(
                    x,
                    x + rng.gen_range(1u64..50),
                    y,
                    y + rng.gen_range(1u64..50),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(100);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(7, 3), // deliberately not divisible by threads
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let data = rects(600, 1); // spans multiple blocks
        let mut seq = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw);
        for r in &data {
            seq.insert(r).unwrap();
        }
        for kernel in [
            BuildKernel::Scalar,
            BuildKernel::Batched,
            BuildKernel::Wide,
            BuildKernel::Wide512,
        ] {
            for threads in [1usize, 2, 3, 8] {
                let mut par = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw)
                    .with_kernel(kernel);
                par_insert_batch(&mut par, &data, threads).unwrap();
                assert_eq!(par.len(), seq.len());
                for inst in 0..schema.instances() {
                    assert_eq!(
                        par.instance_counters(inst),
                        seq.instance_counters(inst),
                        "kernel={kernel:?} threads={threads} inst={inst}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_across_block_boundary() {
        // 300 instances: one full 256-lane wide block plus a 44-lane tail
        // (and five 64-lane blocks), split across workers that cannot divide
        // either block count evenly.
        let mut rng = StdRng::seed_from_u64(104);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(150, 2),
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let data = rects(80, 5);
        let mut seq = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw)
            .with_kernel(BuildKernel::Scalar);
        for r in &data {
            seq.insert(r).unwrap();
        }
        for kernel in [
            BuildKernel::Batched,
            BuildKernel::Wide,
            BuildKernel::Wide512,
        ] {
            for threads in [1usize, 2, 5] {
                let mut par = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw)
                    .with_kernel(kernel);
                par_insert_batch(&mut par, &data, threads).unwrap();
                for inst in 0..schema.instances() {
                    assert_eq!(
                        par.instance_counters(inst),
                        seq.instance_counters(inst),
                        "kernel={kernel:?} threads={threads} inst={inst}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_batch_leaves_sketch_untouched() {
        let mut rng = StdRng::seed_from_u64(101);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(2, 2),
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
        let mut data = rects(10, 2);
        data.push(rect2(0, 10_000, 0, 5)); // out of domain
        assert!(par_insert_batch(&mut sk, &data, 4).is_err());
        assert_eq!(sk.len(), 0);
        assert!(
            (0..sk.schema().instances()).all(|i| sk.instance_counters(i).iter().all(|&c| c == 0))
        );
    }

    #[test]
    fn parallel_delete_batch() {
        let mut rng = StdRng::seed_from_u64(102);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(4, 3),
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
        let data = rects(100, 3);
        par_insert_batch(&mut sk, &data, 4).unwrap();
        par_update_batch(&mut sk, &data, -1, 4).unwrap();
        assert!(sk.is_empty());
        assert!(
            (0..sk.schema().instances()).all(|i| sk.instance_counters(i).iter().all(|&c| c == 0))
        );
    }

    #[test]
    fn par_estimate_matches_sequential_bitwise() {
        use crate::estimators::joins::{EndpointStrategy, SpatialJoin};
        use crate::estimators::SketchConfig;
        use crate::query::{QueryContext, QueryKernel};

        let mut rng = StdRng::seed_from_u64(105);
        // 67 instances: a full 64-lane block plus a 3-lane tail.
        let join = SpatialJoin::<2>::new(
            &mut rng,
            SketchConfig::new(67, 1),
            [8, 8],
            EndpointStrategy::Transform,
        );
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        par_insert_batch(&mut r, &rects(150, 6), 4).unwrap();
        par_insert_batch(&mut s, &rects(150, 7), 4).unwrap();
        let seq = join.estimate(&r, &s).unwrap();
        for kernel in [
            QueryKernel::Scalar,
            QueryKernel::Batched,
            QueryKernel::Wide,
            QueryKernel::Wide512,
        ] {
            let mut ctx = QueryContext::new().with_kernel(kernel);
            let est = join.estimate_with(&mut ctx, &r, &s).unwrap();
            assert_eq!(seq.value.to_bits(), est.value.to_bits(), "{kernel:?}");
        }
        for threads in [1usize, 2, 3, 8] {
            let par = par_estimate(join.inner(), &r, &s, threads).unwrap();
            assert_eq!(
                par.value.to_bits(),
                seq.value.to_bits(),
                "threads {threads}"
            );
            assert_eq!(par.row_means, seq.row_means, "threads {threads}");
        }
        // Foreign sketches are rejected up front.
        let other = SpatialJoin::<2>::new(
            &mut rng,
            SketchConfig::new(4, 1),
            [8, 8],
            EndpointStrategy::Transform,
        );
        assert!(par_estimate(other.inner(), &r, &s, 2).is_err());
    }

    #[test]
    fn par_merge_matches_sequential_and_reset_clears() {
        let mut rng = StdRng::seed_from_u64(106);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(67, 3), // straddles a block boundary
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let data = rects(90, 8);
        let mk = || SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw);
        let mut parts: Vec<SketchSet<2>> = (0..3).map(|_| mk()).collect();
        for (i, r) in data.iter().enumerate() {
            parts[i % 3].insert(r).unwrap();
        }
        let mut seq = mk();
        for p in &parts {
            seq.merge_from(p).unwrap();
        }
        let part_refs: Vec<&SketchSet<2>> = parts.iter().collect();
        for threads in [1usize, 2, 5] {
            let mut par = mk();
            par_merge_batch(&mut par, &part_refs, threads).unwrap();
            assert_eq!(par.len(), seq.len());
            for inst in 0..schema.instances() {
                assert_eq!(
                    par.instance_counters(inst),
                    seq.instance_counters(inst),
                    "threads={threads} inst={inst}"
                );
            }
            // Reset returns the merge target to the fresh state, reusable.
            par.reset();
            assert!(par.is_empty());
            assert!(
                (0..schema.instances()).all(|i| par.instance_counters(i).iter().all(|&c| c == 0))
            );
            par_merge_batch(&mut par, &part_refs, threads).unwrap();
            assert_eq!(par.instance_counters(0), seq.instance_counters(0));
        }
        // Foreign parts are rejected up front, destination untouched.
        let foreign_schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(67, 3),
            [DimSpec::dyadic(8); 2],
        );
        let foreign = SketchSet::new(foreign_schema, words.clone(), EndpointPolicy::Raw);
        let mut dst = mk();
        assert!(par_merge_batch(&mut dst, &[&parts[0], &foreign], 2).is_err());
        assert!(dst.is_empty());
    }

    #[test]
    fn more_threads_than_instances() {
        let mut rng = StdRng::seed_from_u64(103);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(1, 1),
            [DimSpec::dyadic(8); 2],
        );
        let words = Arc::new(ie_words::<2>());
        let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
        par_insert_batch(&mut sk, &rects(5, 4), 16).unwrap();
        assert_eq!(sk.len(), 5);
    }
}

//! Error types for sketch construction and estimation.

use std::fmt;

/// Errors surfaced by the sketch layer.
///
/// Sketches validate untrusted inputs (coordinates, combinability) and
/// return these instead of panicking; panics are reserved for internal
/// invariant violations.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// A coordinate exceeds the data domain declared at schema creation.
    DomainOverflow {
        /// Offending coordinate value.
        coord: u64,
        /// Largest admissible coordinate.
        max: u64,
        /// Dimension index.
        dim: usize,
    },
    /// Two sketches built from different schemas (different seeds) cannot be
    /// combined into one estimate.
    SchemaMismatch,
    /// Two sketches carry different word sets for the attempted operation.
    WordMismatch,
    /// Estimation parameters out of range (e.g. ε or φ not in (0, 1)).
    InvalidParameter(&'static str),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::DomainOverflow { coord, max, dim } => write!(
                f,
                "coordinate {coord} in dimension {dim} exceeds domain maximum {max}"
            ),
            SketchError::SchemaMismatch => {
                write!(
                    f,
                    "sketches were built from different schemas (seeds differ)"
                )
            }
            SketchError::WordMismatch => {
                write!(f, "sketches carry incompatible atomic-sketch word sets")
            }
            SketchError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for SketchError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SketchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SketchError::DomainOverflow {
            coord: 99,
            max: 63,
            dim: 1,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("dimension 1"));
        assert!(SketchError::SchemaMismatch.to_string().contains("schemas"));
        assert!(SketchError::InvalidParameter("eps")
            .to_string()
            .contains("eps"));
    }
}

//! Exact ε-join counting under L∞ via grid hashing.
//!
//! Points of `B` are bucketed into a uniform grid with cell side `ε`; each
//! point of `A` then only needs to examine the 3^d neighboring cells. For
//! the workloads in this workspace (ε far below the domain side) this is
//! `O(N + M + output-candidates)`.

use geometry::distance::within_linf;
use geometry::Point;
use std::collections::HashMap;

/// Exact `|A ⋈_ε B|` under the L∞ distance.
pub fn eps_join_count<const D: usize>(a: &[Point<D>], b: &[Point<D>], eps: u64) -> u64 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let cell = eps.max(1);
    let key_of = |p: &Point<D>| -> [u64; D] {
        let mut k = [0u64; D];
        for i in 0..D {
            k[i] = p[i] / cell;
        }
        k
    };
    let mut grid: HashMap<[u64; D], Vec<usize>> = HashMap::new();
    for (j, p) in b.iter().enumerate() {
        grid.entry(key_of(p)).or_default().push(j);
    }

    let mut count = 0u64;
    let mut neighbor = [0u64; D];
    let combos = 3usize.pow(D as u32);
    for p in a {
        let center = key_of(p);
        // Enumerate the 3^d neighborhood of the center cell via a base-3
        // odometer over offsets {-1, 0, +1} per dimension.
        'combo: for combo in 0..combos {
            let mut c = combo;
            for i in 0..D {
                let off = (c % 3) as i128 - 1;
                c /= 3;
                let v = center[i] as i128 + off;
                if v < 0 {
                    continue 'combo;
                }
                neighbor[i] = v as u64;
            }
            if let Some(bucket) = grid.get(&neighbor) {
                for &j in bucket {
                    if within_linf(p, &b[j], eps) {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hand_cases() {
        let a = vec![[10u64, 10], [50, 50]];
        let b = vec![[12u64, 9], [10, 10], [53, 47], [100, 100]];
        assert_eq!(eps_join_count(&a, &b, 0), 1); // only the identical point
        assert_eq!(eps_join_count(&a, &b, 2), 2);
        assert_eq!(eps_join_count(&a, &b, 3), 3);
        assert_eq!(eps_join_count(&a, &b, 100), 8);
    }

    #[test]
    fn empty_inputs() {
        let a: Vec<Point<2>> = vec![];
        let b = vec![[1u64, 1]];
        assert_eq!(eps_join_count(&a, &b, 5), 0);
        assert_eq!(eps_join_count(&b, &a, 5), 0);
    }

    #[test]
    fn boundary_at_zero_coordinates() {
        // Points near the domain origin exercise the c < 0 neighbor guard.
        let a = vec![[0u64, 0]];
        let b = vec![[1u64, 1], [0, 2], [3, 0]];
        assert_eq!(eps_join_count(&a, &b, 1), 1);
        assert_eq!(eps_join_count(&a, &b, 2), 2);
        assert_eq!(eps_join_count(&a, &b, 3), 3);
    }

    #[test]
    fn randomized_against_naive_2d() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let gen = |rng: &mut StdRng, n: usize| -> Vec<Point<2>> {
                (0..n)
                    .map(|_| [rng.gen_range(0u64..300), rng.gen_range(0u64..300)])
                    .collect()
            };
            let a = gen(&mut rng, 120);
            let b = gen(&mut rng, 100);
            for eps in [0u64, 1, 7, 25, 90] {
                assert_eq!(
                    eps_join_count(&a, &b, eps),
                    naive::eps_join_count(&a, &b, eps),
                    "eps={eps}"
                );
            }
        }
    }

    #[test]
    fn randomized_against_naive_3d() {
        let mut rng = StdRng::seed_from_u64(32);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<Point<3>> {
            (0..n)
                .map(|_| {
                    [
                        rng.gen_range(0u64..80),
                        rng.gen_range(0u64..80),
                        rng.gen_range(0u64..80),
                    ]
                })
                .collect()
        };
        let a = gen(&mut rng, 80);
        let b = gen(&mut rng, 60);
        for eps in [0u64, 2, 10, 40] {
            assert_eq!(
                eps_join_count(&a, &b, eps),
                naive::eps_join_count(&a, &b, eps),
                "eps={eps}"
            );
        }
    }
}

//! Differential suite: the sharded store + router against an unsharded
//! oracle.
//!
//! The router's exact mode must be **bit-identical** — boosted value *and*
//! every row mean — to a single unsharded `SketchSet` fed the same object
//! stream, for every query class it serves (range selectivity, stabbing
//! counts, spatial joins), across shard counts {1, 3, 8}, both ξ
//! constructions, dimensions 1–3, every query kernel, and through ingest
//! histories that include deletes and multiple epoch swaps. Any divergence
//! at all is a router/merge bug, not float noise: counter merges are
//! integer folds and the estimate then runs the very same kernel code.
//!
//! Heavyweight cases (multi-block grids, 3-d) are gated to the
//! `tests-release` lane with `#[cfg_attr(debug_assertions, ignore)]`,
//! following the ROADMAP convention.

use fourwise::XiKind;
use geometry::{HyperRect, Interval, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{ContextPool, QueryRouter, RouterMode, ShardedStore, WorkerContext};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{Estimate, QueryContext, QueryKernel, RangeQuery, RangeStrategy, SketchSet};

const KINDS: [XiKind; 2] = [XiKind::Bch, XiKind::Poly];
const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const KERNELS: [QueryKernel; 3] = [QueryKernel::Scalar, QueryKernel::Batched, QueryKernel::Wide];

fn assert_bit_identical(oracle: &Estimate, routed: &Estimate, label: &str) {
    assert_eq!(
        oracle.value.to_bits(),
        routed.value.to_bits(),
        "{label}: boosted value diverged ({} vs {})",
        oracle.value,
        routed.value
    );
    assert_eq!(
        oracle.row_means.len(),
        routed.row_means.len(),
        "{label}: row count diverged"
    );
    for (i, (a, b)) in oracle
        .row_means
        .iter()
        .zip(routed.row_means.iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: row mean {i} diverged");
    }
}

fn rand_rects<const D: usize>(rng: &mut StdRng, n: usize, max: u64) -> Vec<HyperRect<D>> {
    (0..n)
        .map(|_| {
            HyperRect::new(std::array::from_fn(|_| {
                let lo = rng.gen_range(0..max - 17);
                Interval::new(lo, lo + rng.gen_range(1..=16u64))
            }))
        })
        .collect()
}

/// Streams the reference history — three insert batches and one delete
/// batch, four epoch swaps — into a sharded store.
fn feed_store<const D: usize>(store: &ShardedStore<D>, data: &[HyperRect<D>]) {
    let third = data.len() / 3;
    for chunk in [&data[..third], &data[third..2 * third], &data[2 * third..]] {
        store.insert_slice(chunk).unwrap();
    }
    store.delete_slice(&data[..data.len() / 4]).unwrap();
}

/// The same history applied to an unsharded oracle sketch.
fn feed_oracle<const D: usize>(oracle: &mut SketchSet<D>, data: &[HyperRect<D>]) {
    let third = data.len() / 3;
    for chunk in [&data[..third], &data[third..2 * third], &data[2 * third..]] {
        oracle.insert_slice(chunk).unwrap();
    }
    oracle.delete_slice(&data[..data.len() / 4]).unwrap();
}

/// One range/stab configuration across the shard-count × kernel matrix.
fn range_config<const D: usize>(kind: XiKind, k1: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rq = RangeQuery::<D>::new(
        &mut rng,
        SketchConfig::new(k1, 1).with_kind(kind),
        [8; D],
        RangeStrategy::Transform,
    );
    let data = rand_rects::<D>(&mut rng, 60, 255);
    let mut oracle = rq.new_sketch();
    feed_oracle(&mut oracle, &data);
    let stores: Vec<ShardedStore<D>> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let s = ShardedStore::like(&oracle, n);
            feed_store(&s, &data);
            s
        })
        .collect();

    // A query sharing endpoints with the data, the whole domain, and a
    // degenerate query; a stab at a data endpoint.
    let q_shared: HyperRect<D> = HyperRect::new(std::array::from_fn(|d| data[7].range(d)));
    let q_all: HyperRect<D> = HyperRect::new(std::array::from_fn(|_| Interval::new(0, 255)));
    let q_degenerate: HyperRect<D> = HyperRect::new(std::array::from_fn(|d| {
        Interval::point(data[3].range(d).lo())
    }));
    let p: Point<D> = std::array::from_fn(|d| data[11].range(d).lo());

    let router = QueryRouter::new();
    for kernel in KERNELS {
        let mut octx = QueryContext::new().with_kernel(kernel);
        for (store, &n) in stores.iter().zip(SHARD_COUNTS.iter()) {
            let label = format!("range/{kind:?}/{D}d/{k1}x1/{n}shards/{kernel:?}");
            let mut ctx = WorkerContext::new().with_kernel(kernel);
            for (qi, q) in [&q_shared, &q_all, &q_degenerate].into_iter().enumerate() {
                let routed = router.estimate_range(&rq, store, &mut ctx, q).unwrap();
                let want = rq.estimate_with(&mut octx, &oracle, q).unwrap();
                assert_bit_identical(&want, &routed, &format!("{label}/q{qi}"));
                // Warm pass: cached merged view + cached plan agree too.
                let warm = router.estimate_range(&rq, store, &mut ctx, q).unwrap();
                assert_bit_identical(&want, &warm, &format!("{label}/q{qi}/warm"));
            }
            let routed = router.estimate_stab(&rq, store, &mut ctx, &p).unwrap();
            let want = rq.estimate_stab_with(&mut octx, &oracle, &p).unwrap();
            assert_bit_identical(&want, &routed, &format!("{label}/stab"));
        }
    }
}

/// One spatial-join configuration across the shard-count matrix (both
/// sides sharded, different shard counts per side to stress the merge).
fn join_config<const D: usize>(kind: XiKind, k1: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let join = SpatialJoin::<D>::new(
        &mut rng,
        SketchConfig::new(k1, 1).with_kind(kind),
        [8; D],
        EndpointStrategy::Transform,
    );
    let r_data = rand_rects::<D>(&mut rng, 50, 60);
    let s_data = rand_rects::<D>(&mut rng, 50, 60);
    let mut r_oracle = join.new_sketch_r();
    let mut s_oracle = join.new_sketch_s();
    feed_oracle(&mut r_oracle, &r_data);
    feed_oracle(&mut s_oracle, &s_data);
    let router = QueryRouter::new();
    for &rn in &SHARD_COUNTS {
        for &sn in &[1usize, 8] {
            let label = format!("join/{kind:?}/{D}d/{k1}x1/{rn}x{sn}shards");
            let r_store = ShardedStore::like(&r_oracle, rn);
            let s_store = ShardedStore::like(&s_oracle, sn);
            feed_store(&r_store, &r_data);
            feed_store(&s_store, &s_data);
            let mut ctx = WorkerContext::new();
            let routed = router
                .estimate_join(&join, &r_store, &s_store, &mut ctx)
                .unwrap();
            let want = join.estimate(&r_oracle, &s_oracle).unwrap();
            assert_bit_identical(&want, &routed, &label);
        }
    }
}

#[test]
fn range_router_agrees_1d_2d() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        range_config::<1>(kind, 13, 500 + i as u64);
        range_config::<2>(kind, 13, 510 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn range_router_agrees_multiblock() {
    // 67 instances straddle the 64-lane block width; 150 in 3-d stresses
    // the wide kernel's partial tail blocks through the merged view.
    for (i, kind) in KINDS.into_iter().enumerate() {
        range_config::<2>(kind, 67, 520 + i as u64);
        range_config::<3>(kind, 150, 530 + i as u64);
    }
}

#[test]
fn join_router_agrees_1d_2d() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        join_config::<1>(kind, 13, 540 + i as u64);
        join_config::<2>(kind, 13, 550 + i as u64);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn join_router_agrees_3d_multiblock() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        join_config::<3>(kind, 150, 560 + i as u64);
    }
}

#[test]
fn snapshot_restore_preserves_router_answers() {
    let mut rng = StdRng::seed_from_u64(570);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [8, 8],
        RangeStrategy::Transform,
    );
    let store = ShardedStore::like(&rq.new_sketch(), 3);
    let data = rand_rects::<2>(&mut rng, 60, 255);
    feed_store(&store, &data);
    let restored: ShardedStore<2> = ShardedStore::restore(&store.snapshot()).unwrap();

    // The restored store has a restored schema, so its answers are compared
    // against a sketch restored from the *same* snapshot's shards — the
    // merged counters must match the pre-snapshot merged counters exactly.
    let router = QueryRouter::new();
    let before = router.collect(&store, None).unwrap();
    let after = router.collect(&restored, None).unwrap();
    assert_eq!(before.len(), after.len());
    for inst in 0..rq.schema().instances() {
        assert_eq!(
            before.instance_counters(inst),
            after.instance_counters(inst)
        );
    }
}

#[test]
fn concurrent_pool_readers_match_quiescent_oracle() {
    let mut rng = StdRng::seed_from_u64(580);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [8, 8],
        RangeStrategy::Transform,
    );
    let store = ShardedStore::like(&rq.new_sketch(), 3);
    let mut oracle = rq.new_sketch();
    let data = rand_rects::<2>(&mut rng, 120, 255);
    let queries: Vec<HyperRect<2>> = (0..6)
        .map(|i| HyperRect::new(std::array::from_fn(|d| data[5 * i + d].range(d))))
        .collect();
    let router = QueryRouter::new();
    let pool = ContextPool::new(3);

    // Readers hammer the pool while the writer swaps epochs in.
    std::thread::scope(|scope| {
        for t in 0..3usize {
            let (pool, router, rq, store, queries) = (&pool, &router, &rq, &store, &queries);
            scope.spawn(move || {
                for i in 0..40 {
                    let q = &queries[(t + i) % queries.len()];
                    let est = pool
                        .with(|ctx| router.estimate_range(rq, store, ctx, q))
                        .unwrap();
                    assert!(est.value.is_finite());
                }
            });
        }
        for chunk in data.chunks(30) {
            store.insert_slice(chunk).unwrap();
        }
    });
    for chunk in data.chunks(30) {
        oracle.insert_slice(chunk).unwrap();
    }

    // Quiescent: every pooled context converges to the oracle bitwise.
    let mut octx = QueryContext::new();
    for q in &queries {
        let want = rq.estimate_with(&mut octx, &oracle, q).unwrap();
        let got = pool
            .with(|ctx| router.estimate_range(&rq, &store, ctx, q))
            .unwrap();
        assert_bit_identical(&want, &got, "post-quiescence");
    }
}

#[test]
fn pruned_mode_is_exact_when_nothing_prunes() {
    // When the query covers every shard's coverage box, Pruned and Exact
    // select identically and must agree bitwise.
    let mut rng = StdRng::seed_from_u64(590);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(13, 3),
        [8, 8],
        RangeStrategy::Transform,
    );
    let store = ShardedStore::like(&rq.new_sketch(), 8);
    feed_store(&store, &rand_rects::<2>(&mut rng, 60, 255));
    let q = HyperRect::new([Interval::new(0, 255), Interval::new(0, 255)]);
    let exact = QueryRouter::new();
    let pruned = QueryRouter::new().with_mode(RouterMode::Pruned);
    let mut ctx = WorkerContext::new();
    let a = exact.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
    let b = pruned.estimate_range(&rq, &store, &mut ctx, &q).unwrap();
    assert_bit_identical(&a, &b, "pruned-all");
}

//! # spatial-bench — experiment harness
//!
//! Regenerates every figure of the paper's evaluation (Section 7) plus the
//! ablations listed in DESIGN.md. Each figure has a binary under `src/bin`:
//!
//! | binary | reproduces |
//! |--------|-----------|
//! | `fig5_6`   | Figures 5-6: relative error vs dataset size (Zipf 0 / 1) |
//! | `fig7_8`   | Figures 7-8: guaranteed vs actual error, space vs size |
//! | `fig9_11`  | Figures 9-11: error vs space on the (simulated) GIS joins |
//! | `ablation_maxlevel` | Section 6.5 maxLevel sweep |
//! | `eps_join_accuracy` | Section 6.3 ε-join estimator |
//! | `range_query_accuracy` | Section 6.4 range queries |
//! | `endpoint_strategies` | Section 5.2 vs Appendix C |
//! | `dimensionality` | Section 6.1 curse of dimensionality |
//! | `other_predicates` | Appendix B: overlap+ and containment joins |
//! | `perf_probe` | build/throughput smoke numbers |
//!
//! Binaries print aligned tables and write CSV/JSON under `results/`.
//! Default workload sizes are scaled down to finish in seconds-to-minutes;
//! pass `--paper-scale` for the paper's original sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod probes;
pub mod report;
pub mod runner;

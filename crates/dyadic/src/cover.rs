//! Dyadic covers of intervals and points (Lemmata 2-4 of the paper), with
//! the `maxLevel` truncation of Section 6.5.

use crate::node::{DyadicDomain, NodeId};
use geometry::{Coord, Interval};

/// Computes the dyadic cover `D([a, b])` of an interval: the unique minimal
/// set of disjoint dyadic intervals whose union is exactly `[a, b]`
/// (Lemma 2: at most `2 log2 n` of them), appending node ids to `out`.
///
/// `max_level` truncates the cover per Section 6.5: only dyadic intervals of
/// level `<= max_level` are used. With `max_level == domain.bits()` this is
/// the standard minimal cover; with `max_level == 0` it degenerates to one
/// leaf per covered coordinate — exactly the paper's *standard* (non-dyadic)
/// sketch, at `O(|b - a|)` cost. Intermediate values trade update cost
/// against endpoint-sketch self-join size for short-interval workloads.
pub fn interval_cover_into(
    domain: &DyadicDomain,
    iv: &Interval,
    max_level: u32,
    out: &mut Vec<NodeId>,
) {
    debug_assert!(domain.contains_coord(iv.hi()));
    let n = domain.size();
    let mut l = n + iv.lo();
    let mut r = n + iv.hi() + 1; // exclusive bound in node-id space
    let mut level = 0u32;
    while l < r {
        if level >= max_level {
            // Emit every remaining aligned block at the truncation level.
            for id in l..r {
                out.push(id);
            }
            return;
        }
        if l & 1 == 1 {
            out.push(l);
            l += 1;
        }
        if r & 1 == 1 {
            r -= 1;
            out.push(r);
        }
        l >>= 1;
        r >>= 1;
        level += 1;
    }
}

/// Convenience wrapper returning a fresh vector; see [`interval_cover_into`].
pub fn interval_cover(domain: &DyadicDomain, iv: &Interval, max_level: u32) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(2 * domain.bits() as usize + 1);
    interval_cover_into(domain, iv, max_level, &mut out);
    out
}

/// Computes the dyadic point cover `D([x])`: all dyadic intervals containing
/// `x` up to level `max_level` (Lemma 3: one per level, `log2 n + 1` total
/// when untruncated), appending node ids to `out`. The first entry is always
/// the level-0 leaf of `x`.
pub fn point_cover_into(domain: &DyadicDomain, x: Coord, max_level: u32, out: &mut Vec<NodeId>) {
    debug_assert!(domain.contains_coord(x));
    let top = max_level.min(domain.bits());
    let leaf = domain.leaf(x);
    for level in 0..=top {
        out.push(leaf >> level);
    }
}

/// Convenience wrapper returning a fresh vector; see [`point_cover_into`].
pub fn point_cover(domain: &DyadicDomain, x: Coord, max_level: u32) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(domain.bits() as usize + 1);
    point_cover_into(domain, x, max_level, &mut out);
    out
}

/// Counts nodes shared between an interval cover and a point cover.
///
/// Lemma 4: `x ∈ [a, b]` iff exactly one dyadic interval appears in both
/// `D([a, b])` and `D([x])` (and zero otherwise). This helper exists for
/// tests and diagnostics; estimators never materialize the intersection.
pub fn shared_cover_nodes(domain: &DyadicDomain, iv: &Interval, x: Coord, max_level: u32) -> usize {
    let cover = interval_cover(domain, iv, max_level);
    let pcover = point_cover(domain, x, max_level);
    cover.iter().filter(|id| pcover.contains(id)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover_partitions(domain: &DyadicDomain, iv: &Interval, max_level: u32) {
        let cover = interval_cover(domain, iv, max_level);
        // Disjoint, sorted by range, and exactly covering [lo, hi].
        let mut ranges: Vec<Interval> = cover.iter().map(|&id| domain.node_range(id)).collect();
        ranges.sort_by_key(|r| r.lo());
        assert_eq!(ranges.first().unwrap().lo(), iv.lo());
        assert_eq!(ranges.last().unwrap().hi(), iv.hi());
        for w in ranges.windows(2) {
            assert_eq!(w[0].hi() + 1, w[1].lo(), "gap or overlap in cover");
        }
        // Level constraint.
        for &id in &cover {
            assert!(domain.level(id) <= max_level);
        }
    }

    #[test]
    fn paper_figure2_example() {
        // Figure 2 uses n = 8 with delta_1 = whole domain, delta_2/delta_3 the
        // halves, delta_4..delta_7 the quarters. In our heap numbering those
        // are ids 1, 2, 3, 4, 5, 6, 7. Interval r = [2, 7] has cover
        // {delta_5-ish quarter [2,3], right half [4,7]} = ids {5, 3}? Figure 2
        // shows r with cover {delta_2, delta_6}: the figure's r = [2, 5]
        // (quarter [2,3] = id 5 under our numbering corresponds to the
        // figure's delta_2... indices differ; what matters is the shape:
        // cover of [2, 5] = two quarters.
        let d = DyadicDomain::new(3);
        let cover = interval_cover(&d, &Interval::new(2, 5), 3);
        let mut ranges: Vec<_> = cover.iter().map(|&id| d.node_range(id)).collect();
        ranges.sort_by_key(|r| r.lo());
        assert_eq!(ranges, vec![Interval::new(2, 3), Interval::new(4, 5)]);
    }

    #[test]
    fn whole_domain_is_root() {
        let d = DyadicDomain::new(4);
        assert_eq!(interval_cover(&d, &Interval::new(0, 15), 4), vec![1]);
    }

    #[test]
    fn single_point_is_leaf() {
        let d = DyadicDomain::new(4);
        assert_eq!(interval_cover(&d, &Interval::new(5, 5), 4), vec![d.leaf(5)]);
    }

    #[test]
    fn lemma2_cover_size_bound() {
        // |D([a,b])| <= 2 log2 n
        for bits in 1..=10u32 {
            let d = DyadicDomain::new(bits);
            let n = d.size();
            for a in 0..n.min(64) {
                for b in a..n.min(64) {
                    let cover = interval_cover(&d, &Interval::new(a, b), bits);
                    assert!(
                        cover.len() <= (2 * bits).max(1) as usize,
                        "bits={bits} [{a},{b}] -> {}",
                        cover.len()
                    );
                    check_cover_partitions(&d, &Interval::new(a, b), bits);
                }
            }
        }
    }

    #[test]
    fn lemma3_point_cover() {
        // Exactly log2 n + 1 dyadic intervals contain a point, one per level.
        let d = DyadicDomain::new(6);
        for x in [0u64, 17, 31, 63] {
            let pc = point_cover(&d, x, 6);
            assert_eq!(pc.len(), 7);
            for (level, &id) in pc.iter().enumerate() {
                assert_eq!(d.level(id), level as u32);
                assert!(d.node_contains(id, x));
            }
        }
    }

    #[test]
    fn lemma4_exactly_one_shared_node() {
        let d = DyadicDomain::new(5);
        let n = d.size();
        for a in 0..n {
            for b in a..n {
                let iv = Interval::new(a, b);
                for x in 0..n {
                    let shared = shared_cover_nodes(&d, &iv, x, 5);
                    if iv.contains(x) {
                        assert_eq!(shared, 1, "[{a},{b}] x={x}");
                    } else {
                        assert_eq!(shared, 0, "[{a},{b}] x={x}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma4_holds_under_truncation() {
        // Section 6.5: the point-in-interval property must survive maxLevel
        // truncation for the adaptive sketch to stay correct.
        let d = DyadicDomain::new(5);
        let n = d.size();
        for max_level in 0..=5u32 {
            for (a, b) in [(0u64, 31u64), (3, 17), (8, 15), (5, 5), (20, 27)] {
                let iv = Interval::new(a, b);
                for x in 0..n {
                    let shared = shared_cover_nodes(&d, &iv, x, max_level);
                    assert_eq!(
                        shared,
                        iv.contains(x) as usize,
                        "maxLevel={max_level} [{a},{b}] x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_level_zero_is_standard_sketch() {
        // maxLevel = 0 must cover the interval leaf by leaf.
        let d = DyadicDomain::new(4);
        let cover = interval_cover(&d, &Interval::new(3, 9), 0);
        let expect: Vec<NodeId> = (3..=9).map(|x| d.leaf(x)).collect();
        assert_eq!(cover, expect);
        let pc = point_cover(&d, 7, 0);
        assert_eq!(pc, vec![d.leaf(7)]);
    }

    #[test]
    fn truncated_covers_partition() {
        let d = DyadicDomain::new(6);
        for max_level in 0..=6u32 {
            for (a, b) in [(0u64, 63u64), (1, 62), (13, 49), (32, 47)] {
                check_cover_partitions(&d, &Interval::new(a, b), max_level);
            }
        }
    }

    #[test]
    fn point_cover_first_entry_is_leaf() {
        let d = DyadicDomain::new(8);
        for x in [0u64, 100, 255] {
            for max_level in [0u32, 3, 8] {
                let pc = point_cover(&d, x, max_level);
                assert_eq!(pc[0], d.leaf(x));
                assert_eq!(pc.len() as u32, max_level.min(8) + 1);
            }
        }
    }

    // Seeded stand-ins for the original proptest properties (the offline
    // build has no proptest).
    #[test]
    fn cover_partition_property() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..256 {
            let bits = rng.gen_range(2u32..11);
            let d = DyadicDomain::new(bits);
            let a = rng.gen_range(0u64..2000) % d.size();
            let b = rng.gen_range(0u64..2000) % d.size();
            let iv = Interval::new(a.min(b), a.max(b));
            let max_level = rng.gen_range(0u32..11).min(bits);
            check_cover_partitions(&d, &iv, max_level);
        }
    }

    #[test]
    fn lemma4_random() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..512 {
            let bits = rng.gen_range(2u32..10);
            let d = DyadicDomain::new(bits);
            let a = rng.gen_range(0u64..1000) % d.size();
            let b = rng.gen_range(0u64..1000) % d.size();
            let x = rng.gen_range(0u64..1000) % d.size();
            let iv = Interval::new(a.min(b), a.max(b));
            let ml = rng.gen_range(0u32..10);
            let shared = shared_cover_nodes(&d, &iv, x, ml.min(bits));
            assert_eq!(shared, iv.contains(x) as usize);
        }
    }
}

//! Exact cover-frequency maps and self-join sizes.
//!
//! Equation 5 of the paper rewrites the dyadic atomic sketches as
//! `X_I = Σ_δ f_I(δ) ξ_δ` where `f_I(δ)` counts the input intervals whose
//! cover contains the dyadic interval `δ` (and `f_E(δ)` the endpoints whose
//! point cover contains `δ`). The *self-join size* `SJ(X) = E[X²] = Σ_δ f(δ)²`
//! controls every variance bound in the paper, and therefore the space the
//! estimators need for a target accuracy (Theorems 1-3).
//!
//! This module computes those `f` maps and `SJ` values exactly from the data.
//! It is an analysis tool — sketches never materialize frequencies — used by
//! the space planner, the experiments and the tests.

use crate::cover::{interval_cover_into, point_cover_into};
use crate::node::{DyadicDomain, NodeId};
use geometry::Interval;
use std::collections::HashMap;

/// Exact `f_I` map: for every dyadic interval id, how many input intervals'
/// covers contain it.
pub fn interval_cover_freqs(
    domain: &DyadicDomain,
    intervals: &[Interval],
    max_level: u32,
) -> HashMap<NodeId, i64> {
    let mut freqs = HashMap::new();
    let mut buf = Vec::new();
    for iv in intervals {
        buf.clear();
        interval_cover_into(domain, iv, max_level, &mut buf);
        for &id in &buf {
            *freqs.entry(id).or_insert(0) += 1;
        }
    }
    freqs
}

/// Exact `f_E` map: for every dyadic interval id, how many input interval
/// *endpoints* (both lower and upper; a degenerate interval's single
/// coordinate counts twice, matching `ξ̄[a] + ξ̄[b]` with `a = b`) have point
/// covers containing it.
pub fn endpoint_cover_freqs(
    domain: &DyadicDomain,
    intervals: &[Interval],
    max_level: u32,
) -> HashMap<NodeId, i64> {
    let mut freqs = HashMap::new();
    let mut buf = Vec::new();
    for iv in intervals {
        for x in [iv.lo(), iv.hi()] {
            buf.clear();
            point_cover_into(domain, x, max_level, &mut buf);
            for &id in &buf {
                *freqs.entry(id).or_insert(0) += 1;
            }
        }
    }
    freqs
}

/// Self-join size `Σ f(δ)²` of a frequency map.
pub fn self_join_size(freqs: &HashMap<NodeId, i64>) -> u128 {
    freqs
        .values()
        .map(|&f| (f as i128 * f as i128) as u128)
        .sum()
}

/// The paper's `SJ(R) = SJ(X_I) + SJ(X_E)` for a 1-dimensional interval set
/// (Section 4.1.4), computed exactly.
pub fn interval_set_self_join(
    domain: &DyadicDomain,
    intervals: &[Interval],
    max_level: u32,
) -> u128 {
    let sj_i = self_join_size(&interval_cover_freqs(domain, intervals, max_level));
    let sj_e = self_join_size(&endpoint_cover_freqs(domain, intervals, max_level));
    sj_i + sj_e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_frequencies() {
        // Section 3.1: "for interval r in Figure 2 we have f_I(δ2) = 1,
        // f_I(δ6) = 1, and f_I(δi) = 0 otherwise" — the cover of a single
        // interval gives each of its cover nodes frequency 1.
        let d = DyadicDomain::new(3);
        let r = Interval::new(2, 5);
        let f = interval_cover_freqs(&d, &[r], 3);
        assert_eq!(f.len(), 2);
        assert!(f.values().all(|&v| v == 1));
    }

    #[test]
    fn duplicate_intervals_accumulate() {
        let d = DyadicDomain::new(4);
        let r = Interval::new(3, 12);
        let f = interval_cover_freqs(&d, &[r, r, r], 4);
        assert!(f.values().all(|&v| v == 3));
        let single = interval_cover_freqs(&d, &[r], 4);
        assert_eq!(self_join_size(&f), 9 * self_join_size(&single));
    }

    #[test]
    fn endpoint_freqs_count_both_ends() {
        let d = DyadicDomain::new(3);
        let f = endpoint_cover_freqs(&d, &[Interval::new(2, 5)], 3);
        // Point covers of 2 and 5 each have 4 nodes (levels 0..3); they share
        // the root (level 3) and the left half... 2 -> leaf 10, 5, 2, 1;
        // 5 -> leaf 13, 6, 3, 1. Shared: root only.
        let total: i64 = f.values().sum();
        assert_eq!(total, 8);
        assert_eq!(f[&1], 2); // root counted for both endpoints
                              // SJ = 6 nodes with f=1 plus root with f=2 -> 6 + 4 = 10
        assert_eq!(self_join_size(&f), 10);
    }

    #[test]
    fn degenerate_interval_counts_twice() {
        let d = DyadicDomain::new(3);
        let f = endpoint_cover_freqs(&d, &[Interval::point(4)], 3);
        assert!(f.values().all(|&v| v == 2));
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn self_join_size_matches_brute_force_expectation() {
        // SJ(X_I) must equal the number of interval pairs (i, j) whose covers
        // share a node, summed over shared nodes — i.e. sum over nodes of
        // f(δ)^2, which we verify by explicit double loop.
        let d = DyadicDomain::new(4);
        let data = [
            Interval::new(0, 7),
            Interval::new(4, 11),
            Interval::new(4, 11),
            Interval::new(13, 15),
            Interval::new(2, 2),
        ];
        let f = interval_cover_freqs(&d, &data, 4);
        let mut brute: u128 = 0;
        for a in &data {
            let ca = crate::cover::interval_cover(&d, a, 4);
            for b in &data {
                let cb = crate::cover::interval_cover(&d, b, 4);
                brute += ca.iter().filter(|id| cb.contains(id)).count() as u128;
            }
        }
        assert_eq!(self_join_size(&f), brute);
    }

    #[test]
    fn truncation_reduces_endpoint_self_join() {
        // Section 6.5's motivation: for many short intervals, the endpoint
        // sketch's SJ is dominated by high-level nodes (every endpoint hits
        // the root); lowering maxLevel removes those, shrinking SJ(X_E).
        let d = DyadicDomain::new(10);
        let intervals: Vec<Interval> = (0..200u64)
            .map(|i| {
                let lo = (i * 5) % 1000;
                Interval::new(lo, lo + 2)
            })
            .collect();
        let sj_full = self_join_size(&endpoint_cover_freqs(&d, &intervals, 10));
        let sj_trunc = self_join_size(&endpoint_cover_freqs(&d, &intervals, 3));
        assert!(
            sj_trunc < sj_full,
            "truncation should shrink endpoint SJ: {sj_trunc} vs {sj_full}"
        );
    }

    #[test]
    fn interval_set_self_join_is_sum() {
        let d = DyadicDomain::new(6);
        let data = [Interval::new(1, 30), Interval::new(10, 50)];
        let total = interval_set_self_join(&d, &data, 6);
        let i = self_join_size(&interval_cover_freqs(&d, &data, 6));
        let e = self_join_size(&endpoint_cover_freqs(&d, &data, 6));
        assert_eq!(total, i + e);
        assert!(i > 0 && e > 0);
    }
}

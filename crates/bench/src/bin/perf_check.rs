//! CI perf-regression guard: rerun the quick perf_probe presets and fail
//! if the hot paths regressed against the committed anchor numbers.
//!
//! Usage: cargo run --release -p spatial-bench --bin perf_check --
//!          [--anchor BENCH_pr10.json] [--tolerance 0.25]
//!
//! Compares the blocked kernels' build ns/(obj·inst) and estimate
//! ns/(est·inst) — join and range paths — at the 440-instance
//! configuration against the matching records in the anchor file (a copy
//! of `perf_probe` output; see EXPERIMENTS.md "Performance baseline").
//! Anchor entries are matched by **lane width**, not kernel name: each
//! bit-sliced width (64/256/512) carries its own anchor set, so adding a
//! width means extending the anchor file rather than re-keying it. The
//! network front-end's `net` sweep is guarded at the configurations that
//! isolate each mechanism — anchor points are matched by
//! `(clients, batch, coalesce_us)`: single-connection p50 round-trip
//! latency (measured over anchor; per-frame overhead with nothing to
//! amortize it) and 64-connection wire QPS with and without the
//! coalescing window (anchor over measured, so a *drop* fails — the
//! multiplexer's headline number). The multi-query batch kernel's
//! `batchq` record is guarded twice: amortized batch-64 ns/query against
//! its anchor, and — machine-independently — the batch-64-over-batch-1
//! speedup against a hard 1.5x floor (tolerance 0): if batching a request
//! batch into one sweep stops paying at least 1.5x, the kernel (or its
//! dedup) broke, whatever the runner. The elastic-topology `rebalance`
//! record is guarded three ways: split wall time and worst ingest cutover
//! pause against their anchors (net-width tolerance — both are
//! wall-clock, and the anchor was recorded from the same quick preset CI
//! replays, since replay cost scales with the journal length), and —
//! machine-independently, zero tolerance — the post-churn QPS recovery
//! ratio against a hard 0.5x floor: topology churn must never leave the
//! read path degraded.
//!
//! ## Tolerance
//!
//! The default threshold fails only a **> 25% slowdown** (`measured >
//! anchor × 1.25`). That is deliberately generous: the anchors were
//! recorded on one quiet reference box, while CI runners differ in
//! microarchitecture and noisiness — the guard is meant to catch real
//! regressions (an accidental scalar fallback, a lost vectorization, a
//! per-call allocation creeping into the hot loop, all ≥ 1.5×), not to
//! police single-digit drift. Speedups are never failures. Tune with
//! `--tolerance` (fractional, e.g. `0.25`).
//!
//! The **net metrics use a wider floor of +100%** (`NET_TOLERANCE`,
//! raised further if `--tolerance` exceeds it): loopback TCP round-trips
//! fold in scheduler wakeups, Nagle-free small writes and thread
//! hand-offs, which jitter ±20–40% across runs on a busy runner — far
//! more than the arithmetic kernels do. The net guard is therefore an
//! order-of-magnitude guard: a real serving regression (batching lost to
//! per-query passes, a per-query lock or merge on the hot path) costs
//! several ×, which a 2× threshold still catches reliably.

use serde::Value;
use sketch::{BuildKernel, QueryKernel};
use spatial_bench::probes::{
    batchq_probe, build_probe, estimate_probe, net_probe, rebalance_probe,
};
use spatial_bench::report::Table;
use spatial_bench::runner::default_threads;
use std::path::{Path, PathBuf};

/// Fractional slowdown vs the anchor that fails the lane (see module docs).
const DEFAULT_TOLERANCE: f64 = 0.25;

/// Floor tolerance for the network metrics — loopback latency jitters far
/// more across CI runners than the arithmetic kernels (see module docs).
const NET_TOLERANCE: f64 = 1.0;

/// Minimum batch-64-over-batch-1 speedup the multi-query kernel must keep
/// paying. Machine-independent (both sides measured in the same run), so
/// it is enforced with zero tolerance.
const BATCH_SPEEDUP_FLOOR: f64 = 1.5;

/// Minimum post-churn-over-pre-churn routed QPS ratio the rebalance probe
/// must keep. Machine-independent (both sides measured in the same run),
/// so it is enforced with zero tolerance.
const REBALANCE_RECOVERY_FLOOR: f64 = 0.5;

/// The instance configuration compared (first point of both the quick
/// presets and the anchor sweeps).
const ANCHOR_INSTANCES: u64 = 440;

fn main() {
    let args = spatial_bench::cli::Args::parse(&[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let tolerance: f64 = args
        .get_or("tolerance", DEFAULT_TOLERANCE)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let anchor_name = args.get("anchor").unwrap_or("BENCH_pr10.json");
    let anchor_path = workspace_file(anchor_name);
    let anchors = Anchors::load(&anchor_path).unwrap_or_else(|e| {
        eprintln!(
            "perf_check: cannot read anchors from {}: {e}",
            anchor_path.display()
        );
        std::process::exit(2);
    });

    let threads = default_threads();
    println!(
        "perf_check: quick probes vs {} (tolerance +{:.0}%)",
        anchor_path.display(),
        tolerance * 100.0
    );
    let build = build_probe(
        threads,
        true,
        &[
            BuildKernel::Batched,
            BuildKernel::Wide,
            BuildKernel::Wide512,
        ],
        "ci-build",
        false,
    );
    let estimate = estimate_probe(
        threads,
        true,
        &[
            QueryKernel::Batched,
            QueryKernel::Wide,
            QueryKernel::Wide512,
        ],
        "ci-estimate",
    );
    assert_eq!(build.instances, vec![ANCHOR_INSTANCES as usize]);
    assert_eq!(estimate.instances, vec![ANCHOR_INSTANCES as usize]);

    let net = net_probe(true);
    let net_tolerance = tolerance.max(NET_TOLERANCE);
    let batchq = batchq_probe(threads, true);
    let rebalance = rebalance_probe(threads, true);

    // (name, anchor, measured, ratio-where->1-is-worse, tolerance)
    let mut metrics: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for k in &build.kernels {
        let (anchor, measured) = (anchors.build(k.lane_width), k.ns_per_obj_instance[0]);
        metrics.push((
            format!("build/{} ns/(obj·inst)", k.kernel),
            anchor,
            measured,
            measured / anchor,
            tolerance,
        ));
    }
    for k in &estimate.join_kernels {
        let (anchor, measured) = (
            anchors.estimate("join", k.lane_width),
            k.ns_per_estimate_instance[0],
        );
        metrics.push((
            format!("estimate/join/{} ns/(est·inst)", k.kernel),
            anchor,
            measured,
            measured / anchor,
            tolerance,
        ));
    }
    for k in &estimate.range_kernels {
        let (anchor, measured) = (
            anchors.estimate("range", k.lane_width),
            k.ns_per_estimate_instance[0],
        );
        metrics.push((
            format!("estimate/range/{} ns/(est·inst)", k.kernel),
            anchor,
            measured,
            measured / anchor,
            tolerance,
        ));
    }
    // Net latency regresses when measured grows; QPS regresses when
    // measured *shrinks*, so its ratio is inverted (anchor over measured).
    // Each guard pins one sweep configuration: 1 conn × batch-1 isolates
    // per-frame latency, 64 conns × batch-1 is the multiplexer's
    // throughput headline (guarded with the window off and on).
    let p50_point = net_config(&net, 1, 1, 0);
    let p50_anchor = anchors.net(1, 1, 0, "p50_us");
    metrics.push((
        "net/1conn/b1 p50 µs".into(),
        p50_anchor,
        p50_point.p50_us,
        p50_point.p50_us / p50_anchor,
        net_tolerance,
    ));
    for coalesce_us in [0u64, 200] {
        let qps_point = net_config(&net, 64, 1, coalesce_us);
        let qps_anchor = anchors.net(64, 1, coalesce_us, "qps");
        metrics.push((
            format!("net/64conn/b1 qps (coalesce {coalesce_us} µs)"),
            qps_anchor,
            qps_point.qps,
            qps_anchor / qps_point.qps,
            net_tolerance,
        ));
    }
    // The batch kernel: amortized batch-64 latency vs its anchor, plus the
    // machine-independent speedup floor (both sides of that ratio come from
    // this run, so it gets no tolerance).
    let b64 = batchq
        .points
        .iter()
        .find(|p| p.batch == 64)
        .expect("batchq probe always times batch 64");
    let b64_anchor = anchors.batchq_ns_per_query(64);
    metrics.push((
        "batchq/b64 ns/query".into(),
        b64_anchor,
        b64.ns_per_query,
        b64.ns_per_query / b64_anchor,
        tolerance,
    ));
    metrics.push((
        format!("batchq/b64-over-b1 speedup (floor {BATCH_SPEEDUP_FLOOR}x)"),
        BATCH_SPEEDUP_FLOOR,
        batchq.speedup_b64_over_b1,
        BATCH_SPEEDUP_FLOOR / batchq.speedup_b64_over_b1,
        0.0,
    ));
    // Elastic topology: the split's wall cost (journal replay + swap) and
    // the worst write-path cutover pause are wall-clock measurements, so
    // they get the net-width tolerance; the QPS recovery ratio is measured
    // against itself within the run, so it gets the hard floor.
    let split = rebalance
        .ops
        .iter()
        .find(|o| o.op == "split")
        .expect("rebalance probe always times a split");
    let split_anchor = rebalance_anchor(&anchors, "split", "wall_ms");
    metrics.push((
        "rebalance/split wall ms".into(),
        split_anchor,
        split.wall_ms,
        split.wall_ms / split_anchor,
        net_tolerance,
    ));
    let stall_anchor = num(get(anchors.record("rebalance"), "max_ingest_stall_ms"));
    metrics.push((
        "rebalance/worst ingest stall ms".into(),
        stall_anchor,
        rebalance.max_ingest_stall_ms,
        rebalance.max_ingest_stall_ms / stall_anchor,
        net_tolerance,
    ));
    metrics.push((
        format!("rebalance/qps recovery (floor {REBALANCE_RECOVERY_FLOOR}x)"),
        REBALANCE_RECOVERY_FLOOR,
        rebalance.recovery_ratio,
        REBALANCE_RECOVERY_FLOOR / rebalance.recovery_ratio,
        0.0,
    ));

    let mut table = Table::new(
        "perf_check vs anchors",
        &["metric", "anchor", "measured", "ratio", "verdict"],
    );
    let mut failures = 0usize;
    for (name, anchor, measured, ratio, tol) in &metrics {
        let ok = *ratio <= 1.0 + tol;
        if !ok {
            failures += 1;
        }
        table.push_row(vec![
            name.clone(),
            format!("{anchor:.2}"),
            format!("{measured:.2}"),
            format!("{ratio:.3}"),
            if ok { "ok".into() } else { "REGRESSED".into() },
        ]);
    }
    table.print();
    if failures > 0 {
        eprintln!(
            "perf_check: {failures} metric(s) regressed beyond tolerance vs {}",
            anchor_path.display()
        );
        std::process::exit(1);
    }
    println!(
        "perf_check: all {} metrics within tolerance of the anchors (+{:.0}% kernels, +{:.0}% net)",
        metrics.len(),
        tolerance * 100.0,
        net_tolerance * 100.0
    );
}

/// The measured sweep point at `(clients, batch, coalesce_us)` — the probe
/// always runs every guarded configuration, so a miss is a bug here.
fn net_config(
    net: &spatial_bench::probes::NetProbeRecord,
    clients: usize,
    batch: usize,
    coalesce_us: u64,
) -> &spatial_bench::probes::NetConfigPoint {
    net.configs
        .iter()
        .find(|c| c.clients == clients && c.batch == batch && c.coalesce_us == coalesce_us)
        .unwrap_or_else(|| {
            die(&format!(
                "net probe produced no ({clients} clients, batch {batch}, coalesce {coalesce_us} µs) point"
            ))
        })
}

/// Anchor scalar `field` of the rebalance record's `op` operation point.
fn rebalance_anchor(anchors: &Anchors, op: &str, field: &str) -> f64 {
    let ops = seq(get(anchors.record("rebalance"), "ops"));
    let point = ops
        .iter()
        .find(|o| str_of(get(o, "op")) == op)
        .unwrap_or_else(|| die(&format!("anchor rebalance record has no `{op}` op point")));
    num(get(point, field))
}

/// A file at the workspace root (next to the committed `BENCH_*.json`).
fn workspace_file(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(name)
}

/// Anchor lookups over the `BENCH_*.json` record array.
struct Anchors {
    records: Vec<Value>,
}

impl Anchors {
    fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        match serde_json::parse_value(&text).map_err(|e| e.to_string())? {
            Value::Seq(records) => Ok(Self { records }),
            single => Ok(Self {
                records: vec![single],
            }),
        }
    }

    /// Anchor build ns/(obj·inst) of the `lane_width`-lane kernel at the
    /// compared instances.
    fn build(&self, lane_width: usize) -> f64 {
        let record = self.record("build");
        let idx = self.instance_index(record);
        let entry = kernel_by_width(seq(get(record, "kernels")), lane_width, "build");
        num(&seq(get(entry, "ns_per_obj_instance"))[idx])
    }

    /// Anchor estimate ns/(est·inst) of `path` (`join`/`range`) at
    /// `lane_width` lanes.
    fn estimate(&self, path: &str, lane_width: usize) -> f64 {
        let record = self.record("estimate");
        let idx = self.instance_index(record);
        let entry = kernel_by_width(
            seq(get(record, &format!("{path}_kernels"))),
            lane_width,
            path,
        );
        num(&seq(get(entry, "ns_per_estimate_instance"))[idx])
    }

    /// Anchor scalar `field` (`p50_us` / `qps`) of the `net` sweep point
    /// at `(clients, batch, coalesce_us)`.
    fn net(&self, clients: u64, batch: u64, coalesce_us: u64, field: &str) -> f64 {
        let configs = seq(get(self.record("net"), "configs"));
        let point = configs
            .iter()
            .find(|c| {
                num(get(c, "clients")) as u64 == clients
                    && num(get(c, "batch")) as u64 == batch
                    && num(get(c, "coalesce_us")) as u64 == coalesce_us
            })
            .unwrap_or_else(|| {
                die(&format!(
                    "anchor net record has no ({clients} clients, batch {batch}, coalesce {coalesce_us} µs) point"
                ))
            });
        num(get(point, field))
    }

    /// Anchor amortized ns/query of the `batchq` record at `batch` queries
    /// per call.
    fn batchq_ns_per_query(&self, batch: u64) -> f64 {
        let points = seq(get(self.record("batchq"), "points"));
        let point = points
            .iter()
            .find(|p| num(get(p, "batch")) as u64 == batch)
            .unwrap_or_else(|| die(&format!("anchor batchq record has no batch-{batch} point")));
        num(get(point, "ns_per_query"))
    }

    fn record(&self, probe: &str) -> &Value {
        self.records
            .iter()
            .find(|r| str_of(get(r, "probe")) == probe)
            .unwrap_or_else(|| die(&format!("anchor file has no `{probe}` record")))
    }

    fn instance_index(&self, record: &Value) -> usize {
        seq(get(record, "instances"))
            .iter()
            .position(|v| num(v) as u64 == ANCHOR_INSTANCES)
            .unwrap_or_else(|| {
                die(&format!(
                    "anchor record has no {ANCHOR_INSTANCES}-instance configuration"
                ))
            })
    }
}

/// Finds the anchor entry whose `lane_width` matches — the per-width anchor
/// sets keyed by lane width rather than kernel name.
fn kernel_by_width<'a>(kernels: &'a [Value], lane_width: usize, what: &str) -> &'a Value {
    kernels
        .iter()
        .find(|k| num(get(k, "lane_width")) as usize == lane_width)
        .unwrap_or_else(|| {
            die(&format!(
                "anchor has no {what} kernel at {lane_width} lanes"
            ))
        })
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| die(&format!("anchor record is missing `{key}`"))),
        other => die(&format!(
            "expected a map with `{key}`, got {}",
            other.kind()
        )),
    }
}

fn seq(v: &Value) -> &[Value] {
    match v {
        Value::Seq(entries) => entries,
        other => die(&format!("expected a sequence, got {}", other.kind())),
    }
}

fn str_of(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => die(&format!("expected a string, got {}", other.kind())),
    }
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        other => die(&format!("expected a number, got {}", other.kind())),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("perf_check: {msg}");
    std::process::exit(2);
}

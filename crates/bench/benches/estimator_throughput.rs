//! Microbench: the estimation path under both query kernels.
//!
//! Measures whole `estimate` calls — scratch-reusing [`QueryContext`] form —
//! for the spatial join (counter-product combine) and the range query
//! (query-side ξ evaluation against maintained counters) across instance
//! counts and the full kernel matrix: scalar oracle, 64-lane batched,
//! 256-lane wide and 512-lane wide — plus the multi-query batch kernel
//! (`estimate_batch_with`) at batch sizes 1/8/64 over a serving-shaped hot
//! set. The build-side twin lives in `update_throughput`/`xi_throughput`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use geometry::{HyperRect, Interval};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{BatchQuery, QueryContext, QueryKernel, RangeQuery, RangeStrategy};

const KERNELS: [QueryKernel; 4] = [
    QueryKernel::Scalar,
    QueryKernel::Batched,
    QueryKernel::Wide,
    QueryKernel::Wide512,
];

fn rects(n: usize, seed: u64) -> Vec<HyperRect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0..900u64);
            let y = rng.gen_range(0..900u64);
            HyperRect::new([
                Interval::new(x, x + rng.gen_range(1..60u64)),
                Interval::new(y, y + rng.gen_range(1..60u64)),
            ])
        })
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    // Join estimation: Z_i = Σ_t c_t · R_i[w] · S_i[w̄] per instance.
    let mut group = c.benchmark_group("estimate_join_2d");
    for (k1, k2) in [(16usize, 5usize), (203, 5), (820, 5)] {
        let instances = k1 * k2;
        let mut rng = StdRng::seed_from_u64(11);
        let join = SpatialJoin::<2>::new(
            &mut rng,
            SketchConfig::new(k1, k2),
            [10, 10],
            EndpointStrategy::Transform,
        );
        let mut r = join.new_sketch_r();
        let mut s = join.new_sketch_s();
        r.insert_slice(&rects(500, 1)).unwrap();
        s.insert_slice(&rects(500, 2)).unwrap();
        group.throughput(Throughput::Elements(instances as u64));
        for kernel in KERNELS {
            group.bench_function(format!("{kernel:?}/{instances}inst"), |b| {
                let mut ctx = QueryContext::new().with_kernel(kernel);
                b.iter(|| {
                    join.estimate_with(&mut ctx, black_box(&r), black_box(&s))
                        .unwrap()
                        .value
                })
            });
        }
    }
    group.finish();

    // Range estimation: deterministic query side, ξ sums per instance.
    let mut group = c.benchmark_group("estimate_range_2d");
    for (k1, k2) in [(16usize, 5usize), (203, 5), (820, 5)] {
        let instances = k1 * k2;
        let mut rng = StdRng::seed_from_u64(12);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(k1, k2),
            [10, 10],
            RangeStrategy::Transform,
        );
        let mut sk = rq.new_sketch();
        sk.insert_slice(&rects(500, 3)).unwrap();
        let q = HyperRect::new([Interval::new(100, 420), Interval::new(250, 700)]);
        group.throughput(Throughput::Elements(instances as u64));
        for kernel in KERNELS {
            group.bench_function(format!("{kernel:?}/{instances}inst"), |b| {
                let mut ctx = QueryContext::new().with_kernel(kernel);
                b.iter(|| {
                    rq.estimate_with(&mut ctx, black_box(&sk), black_box(&q))
                        .unwrap()
                        .value
                })
            });
        }
    }
    group.finish();

    // Multi-query batches: one merged-plan sweep answers the whole batch
    // (throughput counts queries, so ns/query amortization shows directly).
    let mut group = c.benchmark_group("estimate_range_batch_2d");
    let (k1, k2) = (203usize, 5usize);
    let mut rng = StdRng::seed_from_u64(13);
    let rq = RangeQuery::<2>::new(
        &mut rng,
        SketchConfig::new(k1, k2),
        [10, 10],
        RangeStrategy::Transform,
    );
    let mut sk = rq.new_sketch();
    sk.insert_slice(&rects(500, 4)).unwrap();
    let hot: Vec<BatchQuery<2>> = rects(32, 5)
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 8 == 7 {
                BatchQuery::Stab([q.range(0).lo(), q.range(1).lo()])
            } else {
                BatchQuery::Range(*q)
            }
        })
        .collect();
    for batch in [1usize, 8, 64] {
        let queries: Vec<BatchQuery<2>> = (0..batch).map(|j| hot[j % hot.len()]).collect();
        group.throughput(Throughput::Elements(batch as u64));
        for kernel in [
            QueryKernel::Batched,
            QueryKernel::Wide,
            QueryKernel::Wide512,
        ] {
            group.bench_function(format!("{kernel:?}/batch{batch}"), |b| {
                let mut ctx = QueryContext::new().with_kernel(kernel);
                b.iter(|| {
                    rq.estimate_batch_with(&mut ctx, black_box(&sk), black_box(&queries))
                        .iter()
                        .map(|r| r.as_ref().unwrap().value)
                        .sum::<f64>()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);

//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's `Value` data model, for exactly the
//! input shapes this workspace contains:
//!
//! * structs with named fields (→ JSON object, declaration order),
//! * enums with unit variants (→ the variant name as a string),
//! * enums with single-field tuple ("newtype") variants
//!   (→ `{"Variant": <payload>}`, serde's externally-tagged form).
//!
//! Generic types, tuple structs, and `#[serde(...)]` attributes are
//! rejected with a compile error; the real `serde_derive` supports them,
//! so hitting one of those limits means extending this file (or restoring
//! registry access). Parsing is done directly over the token stream —
//! the environment has no `syn`/`quote`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum: `(variant name, has newtype payload)`.
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    },
}

/// Derives `serde::Serialize` for supported shapes (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::ser::to_value(&self.{f})\
                     .map_err(<S::Error as ::serde::ser::Error>::custom)?));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                 ::std::vec::Vec::with_capacity({n});\n\
                 {pushes}\
                 serializer.serialize_value(::serde::Value::Map(fields))\n\
                 }}\n}}\n",
                n = fields.len()
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, newtype) in variants {
                if *newtype {
                    arms.push_str(&format!(
                        "{name}::{v}(inner) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::ser::to_value(inner)\
                         .map_err(<S::Error as ::serde::ser::Error>::custom)?)]),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{v}\")),\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let value = match self {{\n{arms}}};\n\
                 serializer.serialize_value(value)\n\
                 }}\n}}\n"
            )
        }
    };
    wrap_automatically_derived(&body)
}

/// Derives `serde::Deserialize` for supported shapes (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::de::from_field(&mut map, \"{f}\")\
                     .map_err(<D::Error as ::serde::de::Error>::custom)?,\n"
                ));
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 match ::serde::Deserializer::take_value(deserializer)? {{\n\
                 ::serde::Value::Map(mut map) => ::core::result::Result::Ok({name} {{\n\
                 {inits}}}),\n\
                 other => ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(::core::format_args!(\
                 \"expected map for struct {name}, got {{}}\", other.kind()))),\n\
                 }}\n}}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            let mut has_newtype = false;
            for (v, newtype) in variants {
                if *newtype {
                    has_newtype = true;
                    newtype_arms.push_str(&format!(
                        "\"{v}\" => ::serde::de::from_value(payload)\
                         .map({name}::{v})\
                         .map_err(<D::Error as ::serde::de::Error>::custom),\n"
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            let map_arm = if has_newtype {
                format!(
                    "::serde::Value::Map(mut map) if map.len() == 1 => {{\n\
                     let (tag, payload) = map.pop().expect(\"len checked\");\n\
                     match tag.as_str() {{\n{newtype_arms}\
                     other => ::core::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(::core::format_args!(\
                     \"unknown variant `{{other}}` of enum {name}\"))),\n}}\n}}\n"
                )
            } else {
                String::new()
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 match ::serde::Deserializer::take_value(deserializer)? {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(::core::format_args!(\
                 \"unknown variant `{{other}}` of enum {name}\"))),\n}},\n\
                 {map_arm}\
                 other => ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(::core::format_args!(\
                 \"expected variant of enum {name}, got {{}}\", other.kind()))),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    wrap_automatically_derived(&body)
}

fn wrap_automatically_derived(body: &str) -> TokenStream {
    format!("#[automatically_derived]\n{body}")
        .parse()
        .expect("derive stand-in generated invalid Rust")
}

/// Parses the derive input down to the shapes we support, skipping
/// attributes, doc comments, and visibility modifiers.
fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde derive stand-in: generic type `{name}` is not supported \
             (write a manual impl, as geometry::HyperRect does)"
        );
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde derive stand-in: tuple struct `{name}` is not supported")
        }
        other => panic!("serde derive stand-in: expected braced body for `{name}`, got {other:?}"),
    };
    match kw.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde derive stand-in: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive stand-in: expected {what}, got {other:?}"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i, "field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde derive stand-in: expected `:` after field `{field}`, got {other:?}")
            }
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let mut newtype = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde derive stand-in: struct variant `{name}` is not supported")
            }
            _ => {}
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                panic!("serde derive stand-in: expected `,` after variant `{name}`, got {other:?}")
            }
        }
        variants.push((name, newtype));
    }
    variants
}

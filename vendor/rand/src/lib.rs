//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset it actually uses* of rand 0.8: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. Swapping back to the real crate is a one-line
//! change in the workspace manifest; no source changes required.
//!
//! [`rngs::StdRng`] here is xoshiro256** seeded through SplitMix64 — a
//! high-quality, well-studied generator (it passes BigCrush), which matters
//! because every four-wise seed and synthetic workload in the repo is drawn
//! through it. It is *not* bit-compatible with the real `StdRng` (ChaCha12):
//! seeds are deterministic per-workspace, not per-ecosystem.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of a `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`RngCore`] — the subset of
/// rand's `Standard` distribution the workspace uses.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled to produce a `T` (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` (`span == 0` means the full 2^64 domain),
/// bias-free via Lemire's widening-multiply rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        if wide as u64 >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let offset = uniform_below(rng, u64::from(span)) as $u;
                (self.start as $u).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // Widen to u64 first so a full-width narrow range cannot
                // wrap the span to zero.
                let span = u64::from((end as $u).wrapping_sub(start as $u)) + 1;
                let draw = uniform_below(rng, span);
                (start as $u).wrapping_add(draw as $u) as $t
            }
        }
    )*};
}

macro_rules! impl_wide_int_ranges {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let offset = uniform_below(rng, span as u64) as $u;
                (self.start as $u).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                let draw = uniform_below(rng, span as u64);
                (start as $u).wrapping_add(draw as $u) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8 => u32, u16 => u32, u32 => u32, i8 => u32, i16 => u32, i32 => u32);
impl_wide_int_ranges!(u64 => u64, usize => u64, i64 => u64, isize => u64);

/// Extension methods over any [`RngCore`] — rand 0.8's `Rng` trait.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (rand's `Standard` distribution).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed — the subset of rand's
/// `SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (the workspace only uses [`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (the seeding scheme the xoshiro authors recommend).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[(rng.gen_range(-3i64..=3) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}

//! Dyadic-aligned domain partitioning for sharded sketch stores.
//!
//! A [`DomainPartition`] splits a power-of-two coordinate domain into `N`
//! contiguous shard regions whose boundaries sit on *dyadic slab*
//! boundaries: the domain is divided into `2^s` equal dyadic slabs (the
//! smallest power of two ≥ `N`, so every slab is a single dyadic node) and
//! each shard owns a contiguous run of slabs. Two properties follow:
//!
//! * **Covers split cleanly.** Splitting an interval at shard boundaries
//!   ([`DomainPartition::split_interval`]) yields pieces whose minimal
//!   dyadic covers ([`crate::cover::interval_cover`]) lie entirely inside
//!   their shard's span — no cover node ever straddles a shard boundary,
//!   because a minimal cover's nodes are contained in the covered interval
//!   and each piece is contained in one shard's dyadic-aligned span.
//! * **Point routing is branch-free.** [`DomainPartition::shard_of`] is a
//!   shift and a multiply, cheap enough for per-object ingest routing.
//!
//! Shard counts need not be powers of two: with `2^s` slabs and `N ≤ 2^s`
//! shards, slab `j` belongs to shard `⌊j·N/2^s⌋` — the standard balanced
//! contiguous assignment (every shard gets `⌊2^s/N⌋` or `⌈2^s/N⌉` slabs).

use crate::node::NodeId;
use geometry::{Coord, Interval};

/// A dyadic-aligned partition of the domain `[0, 2^bits)` into `shards`
/// contiguous regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainPartition {
    bits: u32,
    shards: usize,
    /// Coordinate bits per slab: slab boundaries are multiples of
    /// `2^slab_bits`, i.e. dyadic nodes of that level.
    slab_bits: u32,
    /// Number of slabs (`2^(bits - slab_bits)`), kept as u64 for routing.
    slabs: u64,
}

impl DomainPartition {
    /// Creates a partition of `[0, 2^bits)` into `shards` regions.
    ///
    /// The effective shard count is clamped to the domain size (a 2-bit
    /// domain cannot feed more than 4 shards); [`DomainPartition::shards`]
    /// reports the effective count.
    pub fn new(bits: u32, shards: usize) -> Self {
        assert!(bits <= 62, "domain bits out of range");
        assert!(shards >= 1, "partitions need at least one shard");
        let size = 1u64 << bits;
        let shards = (shards as u64).min(size) as usize;
        let slabs = (shards as u64).next_power_of_two();
        let slab_bits = bits - slabs.trailing_zeros();
        Self {
            bits,
            shards,
            slab_bits,
            slabs,
        }
    }

    /// Domain bits this partition was built for.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Effective shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Coordinate bits per dyadic slab (shard boundaries are multiples of
    /// `2^slab_bits`).
    pub fn slab_bits(&self) -> u32 {
        self.slab_bits
    }

    /// The shard owning coordinate `x`.
    pub fn shard_of(&self, x: Coord) -> usize {
        debug_assert!(x < (1u64 << self.bits));
        let slab = x >> self.slab_bits;
        (slab * self.shards as u64 / self.slabs) as usize
    }

    /// The contiguous coordinate range owned by shard `s`.
    pub fn span(&self, s: usize) -> Interval {
        assert!(s < self.shards, "shard index out of range");
        let first = self.first_slab(s);
        let end = self.first_slab(s + 1);
        Interval::new(first << self.slab_bits, (end << self.slab_bits) - 1)
    }

    /// First slab of shard `s` (the standard inverse of `⌊j·N/2^s⌋`).
    fn first_slab(&self, s: usize) -> u64 {
        (s as u64 * self.slabs).div_ceil(self.shards as u64)
    }

    /// The inclusive range of shards whose spans overlap `iv`.
    pub fn shards_overlapping(&self, iv: &Interval) -> std::ops::RangeInclusive<usize> {
        self.shard_of(iv.lo())..=self.shard_of(iv.hi())
    }

    /// Splits `iv` at shard boundaries into `(shard, piece)` pairs in
    /// ascending order. The pieces partition `iv` exactly, each lies inside
    /// its shard's [`DomainPartition::span`], and — because spans are
    /// dyadic-aligned — each piece's minimal dyadic cover stays inside that
    /// span (no cover node crosses a shard boundary).
    pub fn split_interval(&self, iv: &Interval) -> Vec<(usize, Interval)> {
        let mut out = Vec::new();
        let mut cur = iv.lo();
        loop {
            let s = self.shard_of(cur);
            let end = self.span(s).hi().min(iv.hi());
            out.push((s, Interval::new(cur, end)));
            if end == iv.hi() {
                return out;
            }
            cur = end + 1;
        }
    }

    /// Whether dyadic node `id` (heap numbering of
    /// [`crate::node::DyadicDomain`]) lies entirely inside one shard's span —
    /// true for every node of every split piece's cover. Exposed for tests
    /// and diagnostics.
    pub fn node_within_one_shard(&self, domain: &crate::node::DyadicDomain, id: NodeId) -> bool {
        let range = domain.node_range(id);
        self.shard_of(range.lo()) == self.shard_of(range.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{interval_cover, point_cover};
    use crate::node::DyadicDomain;

    #[test]
    fn spans_partition_the_domain() {
        for bits in [3u32, 8] {
            let size = 1u64 << bits;
            for shards in 1..=9usize {
                let p = DomainPartition::new(bits, shards);
                assert!(p.shards() <= shards);
                // Spans are contiguous, disjoint and cover [0, size).
                let mut next = 0u64;
                for s in 0..p.shards() {
                    let span = p.span(s);
                    assert_eq!(span.lo(), next, "bits={bits} shards={shards} s={s}");
                    assert!(span.hi() >= span.lo());
                    // Dyadic alignment: both boundaries are slab multiples.
                    assert_eq!(span.lo() % (1 << p.slab_bits()), 0);
                    assert_eq!((span.hi() + 1) % (1 << p.slab_bits()), 0);
                    next = span.hi() + 1;
                }
                assert_eq!(next, size);
                // shard_of agrees with span membership everywhere.
                for x in 0..size {
                    let s = p.shard_of(x);
                    assert!(p.span(s).contains(x), "bits={bits} shards={shards} x={x}");
                }
            }
        }
    }

    #[test]
    fn shard_count_clamped_to_domain() {
        let p = DomainPartition::new(2, 100);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.slab_bits(), 0);
    }

    #[test]
    fn split_pieces_partition_and_stay_in_span() {
        let p = DomainPartition::new(8, 3);
        for (lo, hi) in [(0u64, 255u64), (1, 254), (17, 18), (100, 101), (0, 0)] {
            let iv = Interval::new(lo, hi);
            let pieces = p.split_interval(&iv);
            let mut next = lo;
            for (s, piece) in &pieces {
                assert_eq!(piece.lo(), next);
                assert!(p.span(*s).contains_interval(piece));
                next = piece.hi() + 1;
            }
            assert_eq!(next, hi + 1);
            // Shards appear in ascending order, once each.
            for w in pieces.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn split_covers_never_cross_shard_boundaries() {
        // The property the serving layer relies on: every cover node of a
        // split piece lies inside one shard.
        let d = DyadicDomain::new(7);
        for shards in [1usize, 2, 3, 5, 8] {
            let p = DomainPartition::new(7, shards);
            for (lo, hi) in [(0u64, 127u64), (3, 99), (64, 65), (31, 32), (15, 112)] {
                for (s, piece) in p.split_interval(&Interval::new(lo, hi)) {
                    for id in interval_cover(&d, &piece, 7) {
                        assert!(
                            p.node_within_one_shard(&d, id),
                            "shards={shards} piece=[{},{}] node {id}",
                            piece.lo(),
                            piece.hi()
                        );
                        assert!(p.span(s).contains_interval(&d.node_range(id)));
                    }
                }
            }
        }
    }

    #[test]
    fn point_covers_split_at_slab_level() {
        // Point covers stay within the owning shard up to the slab level;
        // coarser nodes necessarily span shards (they sit above the split).
        let d = DyadicDomain::new(6);
        let p = DomainPartition::new(6, 4);
        for x in [0u64, 15, 16, 33, 63] {
            let s = p.shard_of(x);
            for id in point_cover(&d, x, 6) {
                if d.level(id) <= p.slab_bits() {
                    assert!(p.span(s).contains_interval(&d.node_range(id)));
                }
            }
        }
    }

    #[test]
    fn shards_overlapping_matches_split() {
        let p = DomainPartition::new(8, 5);
        for (lo, hi) in [(0u64, 255u64), (10, 200), (60, 61), (250, 255)] {
            let iv = Interval::new(lo, hi);
            let from_split: Vec<usize> =
                p.split_interval(&iv).into_iter().map(|(s, _)| s).collect();
            let range: Vec<usize> = p.shards_overlapping(&iv).collect();
            assert_eq!(from_split, range);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = DomainPartition::new(10, 1);
        assert_eq!(p.span(0), Interval::new(0, 1023));
        assert_eq!(p.shard_of(517), 0);
        assert_eq!(p.split_interval(&Interval::new(5, 900)).len(), 1);
    }
}

//! Atomic-sketch components and words.
//!
//! Every atomic sketch in the paper is, per dimension, one of a small set of
//! ξ-combinations applied to an object's range in that dimension:
//!
//! | component | paper notation | meaning |
//! |-----------|----------------|---------|
//! | [`Comp::Interval`]   | `ξ̄[a,b]` (letter `I`)       | sum over the dyadic cover of the range |
//! | [`Comp::Endpoints`]  | `ξ̄[a] + ξ̄[b]` (letter `E`) | sum over both endpoints' dyadic point covers |
//! | [`Comp::LowerPoint`] | `ξ̄[a]`                      | lower endpoint's point cover (range queries, ε-joins, containment) |
//! | [`Comp::UpperPoint`] | `ξ̄[b]` (the paper's `X_U`)  | upper endpoint's point cover |
//! | [`Comp::LowerLeaf`]  | `ξ_a` (the paper's `X_L`)   | the single level-0 variable at the lower endpoint (Appendices B-C) |
//! | [`Comp::UpperLeaf`]  | `ξ_b` (the paper's `X_U` of Appendix B) | the single level-0 variable at the upper endpoint |
//!
//! A *word* `w` assigns one component per dimension; the atomic sketch `X_w`
//! adds the product of the per-dimension component values for every inserted
//! object (Section 3.2). The 2-d join, for instance, uses the four words
//! `II`, `IE`, `EI`, `EE`.

use serde::{Deserialize, Serialize};

/// Per-dimension ξ-combination (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Comp {
    /// `ξ̄[a,b]`: sum over the dyadic cover of the whole range.
    Interval,
    /// `ξ̄[a] + ξ̄[b]`: sum over both endpoints' dyadic point covers.
    Endpoints,
    /// `ξ̄[a]`: lower endpoint's dyadic point cover.
    LowerPoint,
    /// `ξ̄[b]`: upper endpoint's dyadic point cover.
    UpperPoint,
    /// `ξ_a`: the level-0 (leaf) variable at the lower endpoint.
    LowerLeaf,
    /// `ξ_b`: the level-0 (leaf) variable at the upper endpoint.
    UpperLeaf,
}

impl Comp {
    /// Single-letter mnemonic used in `Debug`/display of words.
    pub fn letter(&self) -> char {
        match self {
            Comp::Interval => 'I',
            Comp::Endpoints => 'E',
            Comp::LowerPoint => 'l',
            Comp::UpperPoint => 'u',
            Comp::LowerLeaf => 'L',
            Comp::UpperLeaf => 'U',
        }
    }

    /// Whether this component reads the object's *geometry* (range or
    /// endpoints after any shrinking transform) as opposed to the raw
    /// endpoint identity (leaf components, which Appendix B keeps
    /// untransformed so they can detect exact endpoint coincidences).
    pub fn is_geometric(&self) -> bool {
        !matches!(self, Comp::LowerLeaf | Comp::UpperLeaf)
    }
}

/// A word: one component per dimension.
pub type Word<const D: usize> = [Comp; D];

/// Renders a word as its letter string, e.g. `IE` for `X_IE`.
pub fn word_name<const D: usize>(w: &Word<D>) -> String {
    w.iter().map(Comp::letter).collect()
}

/// All `{I, E}^d` words in bitmask order (bit `i` set ⇒ `Endpoints` in
/// dimension `i`), the words of the standard spatial-join sketch.
pub fn ie_words<const D: usize>() -> Vec<Word<D>> {
    let mut out = Vec::with_capacity(1 << D);
    for mask in 0..(1u32 << D) {
        let mut w = [Comp::Interval; D];
        for (i, c) in w.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                *c = Comp::Endpoints;
            }
        }
        out.push(w);
    }
    out
}

/// The complement `w̄` of an `{I, E}`-word: `I ↔ E` (Theorem 3). Leaf and
/// point components pair up as lower ↔ upper, matching Appendix B's
/// "`U` with `L` and vice versa".
pub fn complement<const D: usize>(w: &Word<D>) -> Word<D> {
    let mut out = *w;
    for c in &mut out {
        *c = match c {
            Comp::Interval => Comp::Endpoints,
            Comp::Endpoints => Comp::Interval,
            Comp::LowerPoint => Comp::UpperPoint,
            Comp::UpperPoint => Comp::LowerPoint,
            Comp::LowerLeaf => Comp::UpperLeaf,
            Comp::UpperLeaf => Comp::LowerLeaf,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ie_words_enumeration() {
        let words = ie_words::<2>();
        assert_eq!(words.len(), 4);
        assert_eq!(word_name(&words[0]), "II");
        assert_eq!(word_name(&words[1]), "EI");
        assert_eq!(word_name(&words[2]), "IE");
        assert_eq!(word_name(&words[3]), "EE");
    }

    #[test]
    fn complement_pairs() {
        let w = [Comp::Interval, Comp::Endpoints];
        assert_eq!(complement(&w), [Comp::Endpoints, Comp::Interval]);
        let w = [Comp::LowerLeaf, Comp::UpperPoint];
        assert_eq!(complement(&w), [Comp::UpperLeaf, Comp::LowerPoint]);
        // Involution.
        for w in ie_words::<3>() {
            assert_eq!(complement(&complement(&w)), w);
        }
    }

    #[test]
    fn geometric_flags() {
        assert!(Comp::Interval.is_geometric());
        assert!(Comp::Endpoints.is_geometric());
        assert!(Comp::LowerPoint.is_geometric());
        assert!(!Comp::LowerLeaf.is_geometric());
        assert!(!Comp::UpperLeaf.is_geometric());
    }

    #[test]
    fn letters_unique() {
        let comps = [
            Comp::Interval,
            Comp::Endpoints,
            Comp::LowerPoint,
            Comp::UpperPoint,
            Comp::LowerLeaf,
            Comp::UpperLeaf,
        ];
        let mut letters: Vec<char> = comps.iter().map(Comp::letter).collect();
        letters.sort_unstable();
        letters.dedup();
        assert_eq!(letters.len(), comps.len());
    }
}

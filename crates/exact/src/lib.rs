//! # exact — ground-truth spatial query processors
//!
//! Exact counting implementations of every query the sketch estimators and
//! histogram baselines approximate:
//!
//! * [`interval_join`] — 1-d interval joins in `O((N+M) log M)`;
//! * [`rect_join`] — 2-d rectangle joins via sweep line + Fenwick trees, and
//!   a d-dimensional sweep for the dimensionality experiments;
//! * [`eps_grid`] — ε-joins of point sets under L∞ via grid hashing;
//! * [`containment`] — containment joins (`s ⊆ r`);
//! * [`naive`] — `O(N·M)` reference versions of everything, used as the
//!   specification in differential tests;
//! * [`fenwick`] — the binary indexed tree the sweeps are built on.
//!
//! These processors define the "truth" column of every experiment in
//! EXPERIMENTS.md; their own correctness rests on the naive references plus
//! randomized differential testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containment;
pub mod eps_grid;
pub mod fenwick;
pub mod interval_join;
pub mod naive;
pub mod rect_join;

pub use containment::{containment_count, interval_containment_count};
pub use eps_grid::eps_join_count;
pub use fenwick::Fenwick;
pub use interval_join::{interval_join_count, interval_join_plus_count, IntervalIndex};
pub use rect_join::{nd_join_count, rect_join_count};

//! The network front-end: a framed TCP protocol over the serving layer.
//!
//! ```text
//!   clients ──frames──▶ connection handlers ──jobs──▶ BatchQueue (bounded)
//!                             ▲                            │ drain ≤ max_batch
//!                             │ replies (request order)    ▼
//!                             └──────────────── workers ── ContextPool pass
//!                                                          QueryRouter
//!                                                          ShardedStore
//! ```
//!
//! Three pieces, one per submodule:
//!
//! * [`codec`] — the versioned little-endian frame format and the
//!   query/reply payload encodings. Estimates travel as f64 *bit
//!   patterns*, so the wire preserves the serving layer's bit-identity
//!   contract end to end.
//! * [`server`] — connection handlers, the bounded batch queue
//!   (backpressure: full ⇒ per-query `Overloaded` shed), worker threads
//!   answering whole batches through single [`crate::ContextPool`]
//!   passes, `catch_unwind` crash containment, graceful drain.
//! * [`client`] — a small blocking client used by the differential
//!   suites, the `net_soak` CI binary and the `perf_probe --probe net`
//!   latency harness.
//!
//! No external dependencies: the whole layer is `std::net` + `std::io`,
//! in keeping with the workspace's vendored/offline dependency policy.

pub mod client;
pub mod codec;
pub mod server;

pub use client::{range_query, stab_query, SketchClient};
pub use codec::{WireError, WireErrorCode, WireQuery, WireReply};
pub use server::{serve, ServeConfig, ServeStats, ServerHandle, SketchService};

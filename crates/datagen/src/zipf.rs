//! Zipfian sampling over a finite domain.
//!
//! The paper's synthetic experiments (Section 7.1) draw interval positions
//! "according to a Zipfian distribution with Zipf parameter z": rank `k`
//! (1-based) has probability proportional to `1 / k^z`, with `z = 0` being
//! uniform and `z = 1` the "fairly high degree of skew" of Figure 6.
//!
//! For moderate domains a precomputed normalized CDF with binary-search
//! inversion is exact and fast; hot ranks can optionally be scattered over
//! the domain by a measure-preserving bijection so skew doesn't degenerate
//! into "everything near coordinate zero".

use rand::Rng;

/// An inverse-CDF Zipf sampler over ranks `0 .. n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `z >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `z` is negative/non-finite.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            z >= 0.0 && z.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0 .. n` (rank 0 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// A measure-preserving bijection on `{0, .., 2^bits - 1}` used to scatter
/// Zipf ranks across the domain (multiplication by an odd constant mod 2^bits
/// is invertible).
#[inline]
pub fn scatter(rank: u64, bits: u32) -> u64 {
    debug_assert!((1..=63).contains(&bits));
    let mask = (1u64 << bits) - 1;
    rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_z_zero() {
        let z = Zipf::new(100, 0.0);
        for k in 0..100 {
            assert!((z.pmf(k) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
        // Zipf(1) over 1000 ranks: top rank mass = 1/H_1000 ~ 0.133
        let h1000: f64 = (1..=1000).map(|k| 1.0 / k as f64).sum();
        assert!((z.pmf(0) - 1.0 / h1000).abs() < 1e-9);
    }

    #[test]
    fn sample_frequencies_track_pmf() {
        let mut rng = StdRng::seed_from_u64(9);
        let z = Zipf::new(50, 1.0);
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20, 49] {
            let emp = counts[k] as f64 / n as f64;
            let theory = z.pmf(k);
            assert!(
                (emp - theory).abs() < 0.01 + 0.1 * theory,
                "rank {k}: emp {emp} vs {theory}"
            );
        }
    }

    #[test]
    fn extreme_skew_concentrates() {
        let mut rng = StdRng::seed_from_u64(10);
        let z = Zipf::new(1000, 3.0);
        let hits0 = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        assert!(hits0 > 7000, "z=3 should send most mass to rank 0: {hits0}");
    }

    #[test]
    fn scatter_is_bijective() {
        for bits in [4u32, 8, 10] {
            let n = 1u64 << bits;
            let mut seen = vec![false; n as usize];
            for r in 0..n {
                let s = scatter(r, bits);
                assert!(!seen[s as usize], "collision at {r}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}

//! Lane words: the machine-word abstraction under the bit-sliced kernels.
//!
//! Every bit-sliced structure in [`crate::batch`] — seed planes, sign masks,
//! carry-save counter planes — is "one bit per family instance" packed into a
//! machine word. The [`Lane`] trait abstracts that word so the same kernels
//! run at different widths:
//!
//! * [`u64`] — the portable baseline: 64 instances per block, one scalar
//!   XOR/AND per plane operation. Kept bit-identical as the differential
//!   oracle for wider lanes.
//! * [`WideLane`] (`[u64; 4]`) — 256 instances per block. All lane-wise
//!   operations are straight-line loops over four words, the shape LLVM
//!   autovectorizes to SSE2/AVX2/NEON at `-O` without nightly `std::simd` or
//!   `target_feature` gating; even without vector units it quarters the
//!   per-block fixed costs (loop control, counter extraction setup, scratch
//!   walks).
//!
//! The trait surface is exactly what the kernels need: splat/set/test of
//! per-lane bits, lane-wise XOR/AND (the GF(2) plane fold and the carry-save
//! adder step), a zero test (early carry exit), and per-lane popcount.
//! Everything heavier — packing seeds into planes, evaluating ξ masks,
//! carry-save accumulation — is built on top in [`crate::batch`] and stays
//! width-generic.

use std::fmt::Debug;

/// A fixed-width word of instance lanes (one bit per sketch instance).
///
/// Implementations must behave as `LANES`-bit bitsets with lane `j` stored
/// in bit `j % 64` of backing word `j / 64`. All operations are lane-wise;
/// none may observe or disturb neighbouring lanes.
pub trait Lane: Copy + Clone + Debug + Default + PartialEq + Eq + Send + Sync + 'static {
    /// Number of instance lanes (bits) in one lane word.
    const LANES: usize;

    /// Number of backing 64-bit words (`LANES / 64`).
    const WORDS: usize;

    /// The all-zero lane word.
    fn zero() -> Self;

    /// A word with every lane's bit set to `bit`.
    fn splat(bit: bool) -> Self;

    /// Sets lane `lane`'s bit.
    fn set_bit(&mut self, lane: usize);

    /// Lane `lane`'s bit as `0` or `1`.
    fn bit(&self, lane: usize) -> u64;

    /// Backing word `idx` (lanes `[64·idx, 64·(idx+1))`).
    fn word(&self, idx: usize) -> u64;

    /// Lane-wise XOR-assign (the GF(2) plane fold).
    fn xor_assign(&mut self, rhs: &Self);

    /// Lane-wise AND (the carry step of the carry-save adder).
    fn and(&self, rhs: &Self) -> Self;

    /// Whether every lane bit is clear.
    fn is_zero(&self) -> bool;

    /// Number of set lane bits (popcount across all lanes).
    fn count_ones(&self) -> u32;
}

impl Lane for u64 {
    const LANES: usize = 64;
    const WORDS: usize = 1;

    #[inline(always)]
    fn zero() -> Self {
        0
    }

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        if bit {
            u64::MAX
        } else {
            0
        }
    }

    #[inline(always)]
    fn set_bit(&mut self, lane: usize) {
        *self |= 1u64 << lane;
    }

    #[inline(always)]
    fn bit(&self, lane: usize) -> u64 {
        (*self >> lane) & 1
    }

    #[inline(always)]
    fn word(&self, idx: usize) -> u64 {
        debug_assert_eq!(idx, 0);
        *self
    }

    #[inline(always)]
    fn xor_assign(&mut self, rhs: &Self) {
        *self ^= *rhs;
    }

    #[inline(always)]
    fn and(&self, rhs: &Self) -> Self {
        *self & *rhs
    }

    #[inline(always)]
    fn is_zero(&self) -> bool {
        *self == 0
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        u64::count_ones(*self)
    }
}

/// The 256-lane wide word: four `u64`s evaluated lane-wise in lockstep.
pub type WideLane = [u64; 4];

impl Lane for WideLane {
    const LANES: usize = 256;
    const WORDS: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        [0; 4]
    }

    #[inline(always)]
    fn splat(bit: bool) -> Self {
        [if bit { u64::MAX } else { 0 }; 4]
    }

    #[inline(always)]
    fn set_bit(&mut self, lane: usize) {
        self[lane >> 6] |= 1u64 << (lane & 63);
    }

    #[inline(always)]
    fn bit(&self, lane: usize) -> u64 {
        (self[lane >> 6] >> (lane & 63)) & 1
    }

    #[inline(always)]
    fn word(&self, idx: usize) -> u64 {
        self[idx]
    }

    #[inline(always)]
    fn xor_assign(&mut self, rhs: &Self) {
        for (a, b) in self.iter_mut().zip(rhs.iter()) {
            *a ^= *b;
        }
    }

    #[inline(always)]
    fn and(&self, rhs: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.iter_mut().zip(rhs.iter()) {
            *a &= *b;
        }
        out
    }

    #[inline(always)]
    fn is_zero(&self) -> bool {
        (self[0] | self[1] | self[2] | self[3]) == 0
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        self.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<L: Lane>() {
        assert_eq!(L::LANES, L::WORDS * 64);
        let mut a = L::zero();
        assert!(a.is_zero());
        assert_eq!(a.count_ones(), 0);
        // Bits land in the advertised lane and nowhere else.
        for lane in [0, 1, 63 % L::LANES, L::LANES / 2, L::LANES - 1] {
            let mut w = L::zero();
            w.set_bit(lane);
            assert_eq!(w.bit(lane), 1, "lane {lane}");
            assert_eq!(w.count_ones(), 1, "lane {lane}");
            for other in 0..L::LANES {
                if other != lane {
                    assert_eq!(w.bit(other), 0, "lane {lane} leaked into {other}");
                }
            }
            // word()/bit() agree on the backing layout.
            assert_eq!((w.word(lane / 64) >> (lane % 64)) & 1, 1);
        }
        // XOR/AND behave lane-wise.
        a.set_bit(0);
        a.set_bit(L::LANES - 1);
        let mut b = L::zero();
        b.set_bit(0);
        let and = a.and(&b);
        assert_eq!(and.bit(0), 1);
        assert_eq!(and.count_ones(), 1);
        a.xor_assign(&b);
        assert_eq!(a.bit(0), 0);
        assert_eq!(a.bit(L::LANES - 1), 1);
        // Splat covers every lane or none.
        assert_eq!(L::splat(true).count_ones(), L::LANES as u32);
        assert!(L::splat(false).is_zero());
    }

    #[test]
    fn u64_lane_semantics() {
        exercise::<u64>();
    }

    #[test]
    fn wide_lane_semantics() {
        exercise::<WideLane>();
    }
}

//! A bounded, epoch-tagged update log for rebuilding and catching up
//! sketch stores.
//!
//! Sketches are linear, so a shard can be rebuilt *exactly* — counters,
//! coverage, update counts — by replaying the store's updates filtered
//! through a new routing function: `i64` counter arithmetic is associative
//! and commutative over batch composition, so any replay that applies the
//! same rectangles with the same deltas lands on bit-identical state. The
//! [`UpdateLog`] records each published batch under the epoch that first
//! contained it, which gives the two consumers their contract:
//!
//! * **Topology changes** (shard split / boundary move) replay the *whole*
//!   log through the new partition — they need [`LogRetention::Full`].
//! * **Replica catch-up** tails only the entries *after* the epoch its
//!   snapshot captured — a bounded [`LogRetention::Entries`] window
//!   suffices, and [`UpdateLog::tail_since`] reports truncation (the
//!   snapshot is too old) as an error instead of silently skipping
//!   updates.
//!
//! The log stores `Arc`-shared rectangle batches, so recording costs one
//! refcount bump per batch, not a copy; retention [`LogRetention::None`]
//! (the default for stores that never rebalance) costs nothing at all.

use crate::error::{Result, SketchError};
use geometry::HyperRect;
use std::collections::VecDeque;
use std::sync::Arc;

/// How much history an [`UpdateLog`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRetention {
    /// Keep nothing (the default): recording is a no-op beyond advancing
    /// the truncation floor. Topology changes and replica tailing are
    /// unavailable.
    None,
    /// Keep at most this many most-recent entries — enough for replicas
    /// whose snapshots lag by less than the window, at bounded memory.
    Entries(usize),
    /// Keep everything, enabling full-replay topology changes.
    Full,
}

/// One logged update batch: the rectangles and shared delta of a single
/// published store update, tagged with the epoch that first contained it.
#[derive(Debug, Clone)]
pub struct LogEntry<const D: usize> {
    epoch: u64,
    delta: i64,
    rects: Arc<Vec<HyperRect<D>>>,
}

impl<const D: usize> LogEntry<D> {
    /// The epoch whose publication first contained this batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared count delta of the batch (`+1` inserts, `-1` deletes).
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// The batch's rectangles.
    pub fn rects(&self) -> &[HyperRect<D>] {
        &self.rects
    }
}

/// An epoch-ordered log of published update batches with configurable
/// retention and an explicit truncation floor.
#[derive(Debug, Clone)]
pub struct UpdateLog<const D: usize> {
    retention: LogRetention,
    entries: VecDeque<LogEntry<D>>,
    /// Highest epoch whose entry has been discarded; `0` means the log is
    /// complete from the beginning of time.
    floor: u64,
}

impl<const D: usize> UpdateLog<D> {
    /// An empty log with the given retention policy and a complete history
    /// (floor 0).
    pub fn new(retention: LogRetention) -> Self {
        Self::new_with_floor(retention, 0)
    }

    /// An empty log whose history is already truncated up to and including
    /// `floor` — the shape of a store restored from an epoch-`floor`
    /// snapshot, whose earlier updates exist only inside the snapshot.
    pub fn new_with_floor(retention: LogRetention, floor: u64) -> Self {
        Self {
            retention,
            entries: VecDeque::new(),
            floor,
        }
    }

    /// The retention policy.
    pub fn retention(&self) -> LogRetention {
        self.retention
    }

    /// Highest epoch whose entry has been discarded (`0` = nothing ever
    /// was). [`UpdateLog::tail_since`] can serve any `since ≥ floor`.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Whether the log still holds every update ever recorded — the
    /// precondition for full-replay topology changes.
    pub fn is_complete(&self) -> bool {
        self.floor == 0
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a published batch under `epoch`, then prunes per the
    /// retention policy (pruning advances the floor). Epochs must be
    /// recorded in ascending order.
    pub fn record(&mut self, epoch: u64, delta: i64, rects: Arc<Vec<HyperRect<D>>>) {
        debug_assert!(
            self.entries.back().is_none_or(|e| e.epoch < epoch) && epoch > self.floor,
            "log entries must arrive in ascending epoch order"
        );
        match self.retention {
            LogRetention::None => self.floor = epoch,
            LogRetention::Entries(cap) => {
                self.entries.push_back(LogEntry {
                    epoch,
                    delta,
                    rects,
                });
                while self.entries.len() > cap {
                    let dropped = self.entries.pop_front().expect("len > cap >= 0");
                    self.floor = dropped.epoch;
                }
            }
            LogRetention::Full => self.entries.push_back(LogEntry {
                epoch,
                delta,
                rects,
            }),
        }
    }

    /// All retained entries in epoch order — the full-replay iterator for
    /// topology changes (callers should check [`UpdateLog::is_complete`]
    /// first).
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry<D>> {
        self.entries.iter()
    }

    /// The entries recorded *after* epoch `since`, for replica catch-up.
    /// Fails if the log has been truncated past `since` — entries the
    /// caller needs have been discarded, so it must re-seed from a newer
    /// snapshot instead of silently missing updates.
    pub fn tail_since(&self, since: u64) -> Result<Vec<LogEntry<D>>> {
        if since < self.floor {
            return Err(SketchError::InvalidParameter(
                "update log truncated past the requested epoch; re-seed from a newer snapshot",
            ));
        }
        Ok(self
            .entries
            .iter()
            .filter(|e| e.epoch > since)
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;

    fn batch(lo: u64) -> Arc<Vec<HyperRect<1>>> {
        Arc::new(vec![HyperRect::new([Interval::new(lo, lo + 1)])])
    }

    #[test]
    fn retention_none_discards_but_tracks_floor() {
        let mut log = UpdateLog::<1>::new(LogRetention::None);
        assert!(log.is_complete());
        log.record(1, 1, batch(0));
        log.record(2, -1, batch(4));
        assert!(log.is_empty());
        assert_eq!(log.floor(), 2);
        assert!(!log.is_complete());
        assert!(log.tail_since(1).is_err());
        assert_eq!(log.tail_since(2).unwrap().len(), 0);
    }

    #[test]
    fn bounded_retention_prunes_oldest_and_reports_truncation() {
        let mut log = UpdateLog::<1>::new(LogRetention::Entries(2));
        for epoch in 1..=4u64 {
            log.record(epoch, 1, batch(epoch));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.floor(), 2);
        // A replica at epoch 2 can still catch up…
        let tail = log.tail_since(2).unwrap();
        assert_eq!(
            tail.iter().map(LogEntry::epoch).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // …one at epoch 1 is told its snapshot is too old.
        assert!(log.tail_since(1).is_err());
        // One already caught up gets an empty tail.
        assert!(log.tail_since(4).unwrap().is_empty());
    }

    #[test]
    fn full_retention_replays_everything() {
        let mut log = UpdateLog::<1>::new(LogRetention::Full);
        for epoch in 1..=10u64 {
            log.record(epoch, if epoch % 3 == 0 { -1 } else { 1 }, batch(epoch));
        }
        assert!(log.is_complete());
        assert_eq!(log.entries().count(), 10);
        let epochs: Vec<u64> = log.entries().map(LogEntry::epoch).collect();
        assert!(epochs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(log.tail_since(0).unwrap().len(), 10);
        assert_eq!(log.tail_since(7).unwrap().len(), 3);
    }

    #[test]
    fn restored_log_starts_at_its_snapshot_floor() {
        let mut log = UpdateLog::<1>::new_with_floor(LogRetention::Full, 5);
        assert!(!log.is_complete());
        log.record(6, 1, batch(0));
        assert!(log.tail_since(4).is_err());
        assert_eq!(log.tail_since(5).unwrap().len(), 1);
        // The batch is shared, not copied.
        let rects = batch(9);
        log.record(7, 1, Arc::clone(&rects));
        assert_eq!(Arc::strong_count(&rects), 2);
    }
}

//! Per-worker serving state: reusable estimation scratch, cached store
//! epochs, and cached cross-shard merge views — everything a serving loop
//! needs to keep the hot path allocation-free and lock-free.

use crate::store::{ShardedStore, StoreEpoch};
use sketch::{par_merge_batch, QueryContext, QueryKernel, Result, SketchSet};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Most stores one worker caches views/epochs for (oldest evicted first).
const STORE_CACHE_CAPACITY: usize = 8;

/// One worker's serving state.
///
/// Holds a core [`QueryContext`] (kernel scratch + compiled-plan cache), a
/// cached `Arc<StoreEpoch>` per store — revalidated against the store's
/// epoch tag with a single atomic load, so steady-state queries never touch
/// a lock — and a cached *merged view* per store: one reusable [`SketchSet`]
/// holding the integer fold of the selected shards' counters. The view is
/// rebuilt only when the epoch or the shard selection changes; between
/// ingests, every query runs at full single-sketch speed with zero
/// allocation.
#[derive(Debug, Default)]
pub struct WorkerContext<const D: usize> {
    /// The core estimation scratch (kernel choice, atomic grid, plan cache).
    pub query: QueryContext,
    /// Reusable shard-selection mask: the router takes it, fills it per
    /// query and puts it back, so warm queries allocate nothing.
    pub(crate) mask: Vec<bool>,
    /// Reusable per-group query gather for the router's batched entry
    /// point (same take/put-back protocol as `mask`).
    pub(crate) batch: Vec<sketch::BatchQuery<D>>,
    epochs: Vec<CachedEpoch<D>>,
    views: Vec<StoreView<D>>,
}

#[derive(Debug)]
struct CachedEpoch<const D: usize> {
    store: u64,
    epoch: Arc<StoreEpoch<D>>,
}

/// A cached cross-shard merge: the counters of every selected shard folded
/// into one sketch (exact `i64` linearity — see the router docs).
#[derive(Debug)]
pub(crate) struct StoreView<const D: usize> {
    store: u64,
    epoch: u64,
    mask: Vec<bool>,
    pub(crate) merged: SketchSet<D>,
}

impl<const D: usize> WorkerContext<D> {
    /// Fresh worker state (default `Auto` kernel).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the estimation kernel (builder form).
    pub fn with_kernel(mut self, kernel: QueryKernel) -> Self {
        self.query.set_kernel(kernel);
        self
    }

    /// The store epoch this worker serves from, revalidated against the
    /// store's lock-free epoch tag; only an actual epoch change re-reads
    /// the store's published pointer.
    ///
    /// Like `WorkerContext::ensure_view`, the cache is LRU over *uses*,
    /// not FIFO over insertions: every hit — including an in-place refresh
    /// of a stale epoch — moves the entry to the back. A hot store whose
    /// epoch keeps changing therefore cannot be evicted by
    /// `STORE_CACHE_CAPACITY` cold one-shot stores, and the epoch cache's
    /// eviction order always mirrors the view cache's.
    pub fn epoch_for(&mut self, store: &ShardedStore<D>) -> Arc<StoreEpoch<D>> {
        let tag = store.epoch_tag();
        match self.epochs.iter().position(|c| c.store == store.id()) {
            Some(i) => {
                let mut hit = self.epochs.remove(i);
                if hit.epoch.epoch() != tag {
                    hit.epoch = store.load();
                }
                let epoch = Arc::clone(&hit.epoch);
                self.epochs.push(hit);
                epoch
            }
            None => {
                if self.epochs.len() >= STORE_CACHE_CAPACITY {
                    self.epochs.remove(0);
                }
                let fresh = store.load();
                self.epochs.push(CachedEpoch {
                    store: store.id(),
                    epoch: Arc::clone(&fresh),
                });
                fresh
            }
        }
    }

    /// Brings the merged view of `epoch`'s shards selected by `mask` up to
    /// date, rebuilding it only on epoch/selection change, and refreshes
    /// the entry's recency (least recently *ensured* is evicted first).
    /// Look the view up afterwards with [`WorkerContext::split`] +
    /// [`view_of`] — views are addressed by store id, never by position:
    /// ensuring a *second* store's view may evict the oldest cache entry
    /// and shift positions.
    pub(crate) fn ensure_view(
        &mut self,
        store: &ShardedStore<D>,
        epoch: &StoreEpoch<D>,
        mask: &[bool],
        merge_threads: usize,
    ) -> Result<()> {
        // LRU, not FIFO: a hit moves to the back, so a multi-store query
        // (join) that ensures its views back to back can never evict one
        // of its own — the invariant `view_of` relies on.
        match self.views.iter().position(|v| v.store == store.id()) {
            Some(i) => {
                let hit = self.views.remove(i);
                self.views.push(hit);
            }
            None => {
                if self.views.len() >= STORE_CACHE_CAPACITY {
                    self.views.remove(0);
                }
                self.views.push(StoreView {
                    store: store.id(),
                    epoch: 0, // forces the first build below
                    mask: Vec::new(),
                    merged: store.empty_sketch(),
                });
            }
        }
        let view = self.views.last_mut().expect("just positioned at the back");
        if view.epoch != epoch.epoch() || view.mask != mask {
            view.merged.reset();
            let parts: Vec<&SketchSet<D>> = epoch
                .shards()
                .iter()
                .zip(mask.iter())
                .filter(|(_, &selected)| selected)
                .map(|(s, _)| s.sketch())
                .collect();
            if merge_threads > 1 && parts.len() > 1 {
                par_merge_batch(&mut view.merged, &parts, merge_threads)?;
            } else {
                for p in parts {
                    view.merged.merge_from(p)?;
                }
            }
            view.epoch = epoch.epoch();
            view.mask.clear();
            view.mask.extend_from_slice(mask);
        }
        Ok(())
    }

    /// Splits the worker into its estimation scratch and its views, so a
    /// router can borrow the query context mutably alongside one or two
    /// merged views immutably.
    pub(crate) fn split(&mut self) -> (&mut QueryContext, &[StoreView<D>]) {
        (&mut self.query, &self.views)
    }

    /// Clears every cache and scratch after a panic unwound through this
    /// context. A panic can strike mid-[`WorkerContext::ensure_view`] and
    /// leave a half-folded merged view (or a stale epoch) behind, so
    /// nothing cached is trustworthy; all of it is rebuildable from the
    /// store on the next query. The kernel pin survives — it is
    /// configuration, not state.
    fn reset_after_panic(&mut self) {
        let kernel = self.query.kernel();
        *self = Self::default();
        self.query.set_kernel(kernel);
    }
}

/// The merged view of `store_id` within a split worker's view list.
///
/// # Panics
///
/// Panics if the view is absent — callers must have run
/// [`WorkerContext::ensure_view`] for every store of the query *before*
/// splitting. That is always safe: the cache holds
/// [`STORE_CACHE_CAPACITY`] ≥ 2 entries, evicts least-recently-*ensured*
/// first, and every `ensure_view` (hit or miss) moves its entry to the
/// back, so ensuring one query's stores back to back can never evict each
/// other.
pub(crate) fn view_of<const D: usize>(views: &[StoreView<D>], store_id: u64) -> &SketchSet<D> {
    &views
        .iter()
        .find(|v| v.store == store_id)
        .expect("merged view evicted between ensure_view and use")
        .merged
}

/// A fixed set of [`WorkerContext`]s shared by concurrent request handlers.
///
/// [`ContextPool::with`] hands the calling thread an uncontended slot when
/// one is free (slots are probed starting from a thread-local hash, so
/// steady worker threads keep hitting *their* slot and its warm caches) and
/// blocks on one slot only when every context is busy.
#[derive(Debug)]
pub struct ContextPool<const D: usize> {
    slots: Vec<Mutex<WorkerContext<D>>>,
}

impl<const D: usize> ContextPool<D> {
    /// A pool of `workers` contexts (at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(WorkerContext::new()))
                .collect(),
        }
    }

    /// Number of pooled contexts.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` with a checked-out worker context.
    ///
    /// A slot whose previous holder panicked is **recovered**, not skipped:
    /// the poisoned guard is taken back, the worker state (caches +
    /// scratch, all rebuildable from the store) is reset, and the slot
    /// serves `f` normally. Without this, one handler panic would brick the
    /// slot for the lifetime of the pool — the `try_lock` probe loop would
    /// silently skip it forever (quietly shrinking the pool) and the
    /// blocking fallback would panic every caller hashed onto it.
    pub fn with<R>(&self, f: impl FnOnce(&mut WorkerContext<D>) -> R) -> R {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let start = (hasher.finish() as usize) % self.slots.len();
        for i in 0..self.slots.len() {
            let slot = &self.slots[(start + i) % self.slots.len()];
            match slot.try_lock() {
                Ok(mut ctx) => return f(&mut ctx),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    let mut ctx = poisoned.into_inner();
                    ctx.reset_after_panic();
                    slot.clear_poison();
                    return f(&mut ctx);
                }
                Err(std::sync::TryLockError::WouldBlock) => {}
            }
        }
        // Every slot busy: wait for "our" slot.
        let slot = &self.slots[start];
        match slot.lock() {
            Ok(mut ctx) => f(&mut ctx),
            Err(poisoned) => {
                let mut ctx = poisoned.into_inner();
                ctx.reset_after_panic();
                slot.clear_poison();
                f(&mut ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketch::{ie_words, BoostShape, DimSpec, EndpointPolicy, SketchSchema};

    fn store(shards: usize) -> ShardedStore<2> {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            fourwise::XiKind::Bch,
            BoostShape::new(5, 3),
            [DimSpec::dyadic(8); 2],
        );
        ShardedStore::new(
            schema,
            Arc::new(ie_words::<2>()),
            EndpointPolicy::Raw,
            shards,
        )
    }

    #[test]
    fn epoch_cache_revalidates_by_tag() {
        let st = store(2);
        let mut ctx = WorkerContext::<2>::new();
        let e1 = ctx.epoch_for(&st);
        assert_eq!(e1.epoch(), 1);
        assert!(Arc::ptr_eq(&e1, &ctx.epoch_for(&st)), "cache hit");
        st.insert_slice(&[rect2(1, 5, 1, 5)]).unwrap();
        let e2 = ctx.epoch_for(&st);
        assert_eq!(e2.epoch(), 2);
        assert!(!Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn merged_view_rebuilds_only_on_change() {
        let st = store(3);
        st.insert_slice(&[rect2(1, 5, 1, 5), rect2(200, 210, 7, 9)])
            .unwrap();
        let mut ctx = WorkerContext::<2>::new();
        let epoch = ctx.epoch_for(&st);
        let all = vec![true; 3];
        ctx.ensure_view(&st, &epoch, &all, 1).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 2);
        // Same epoch + mask: counters must not double up.
        ctx.ensure_view(&st, &epoch, &all, 1).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 2);
        // A different selection rebuilds.
        let mut some = vec![true; 3];
        some[st.partition().shard_of(200)] = false;
        ctx.ensure_view(&st, &epoch, &some, 1).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 1);
        // Parallel merge agrees with sequential.
        ctx.ensure_view(&st, &epoch, &all, 4).unwrap();
        assert_eq!(view_of(&ctx.views, st.id()).len(), 2);
    }

    #[test]
    fn views_resolve_by_store_id_across_evictions() {
        // Fill the view cache past capacity, then ensure two more stores
        // back to back (the join shape): both must resolve by id even
        // though the second ensure evicted an entry and shifted positions.
        let old: Vec<ShardedStore<2>> = (0..STORE_CACHE_CAPACITY).map(|_| store(2)).collect();
        let mut ctx = WorkerContext::<2>::new();
        for st in &old {
            let epoch = ctx.epoch_for(st);
            ctx.ensure_view(st, &epoch, &[false, false], 1).unwrap();
        }
        assert_eq!(ctx.views.len(), STORE_CACHE_CAPACITY);
        let r = store(2);
        let s = store(2);
        r.insert_slice(&[rect2(1, 5, 1, 5)]).unwrap();
        s.insert_slice(&[rect2(1, 5, 1, 5), rect2(9, 12, 1, 2)])
            .unwrap();
        let re = ctx.epoch_for(&r);
        let se = ctx.epoch_for(&s);
        ctx.ensure_view(&r, &re, &[true, true], 1).unwrap();
        ctx.ensure_view(&s, &se, &[true, true], 1).unwrap();
        assert_eq!(view_of(&ctx.views, r.id()).len(), 1);
        assert_eq!(view_of(&ctx.views, s.id()).len(), 2);
        assert_eq!(ctx.views.len(), STORE_CACHE_CAPACITY);

        // The LRU case a FIFO cache gets wrong: a join whose first store's
        // view is the *oldest* cached entry and whose second store is new.
        // The hit must refresh recency so the miss evicts some other entry,
        // never the view just ensured.
        let oldest = ctx.views[0].store;
        let first = old
            .iter()
            .chain([&r, &s])
            .find(|st| st.id() == oldest)
            .unwrap();
        let fe = ctx.epoch_for(first);
        let fresh = store(2);
        let fresh_epoch = ctx.epoch_for(&fresh);
        ctx.ensure_view(first, &fe, &[false, false], 1).unwrap();
        ctx.ensure_view(&fresh, &fresh_epoch, &[false, false], 1)
            .unwrap();
        assert!(ctx.views.iter().any(|v| v.store == first.id()));
        let _ = view_of(&ctx.views, first.id());
        let _ = view_of(&ctx.views, fresh.id());
    }

    #[test]
    fn epoch_cache_is_lru_not_fifo() {
        // Fill the epoch cache to capacity, then keep the *oldest* entry
        // hot by refreshing it (its store's epoch changes every time, so
        // each hit takes the refresh-in-place path). Cold one-shot stores
        // must evict each other, never the hot store — the FIFO bug this
        // pins down evicted by insertion order and dropped the hot store
        // after STORE_CACHE_CAPACITY cold lookups.
        let hot = store(2);
        let mut ctx = WorkerContext::<2>::new();
        ctx.epoch_for(&hot);
        let mut cold: Vec<ShardedStore<2>> = Vec::new();
        for i in 0..STORE_CACHE_CAPACITY - 1 {
            cold.push(store(2));
            ctx.epoch_for(cold.last().unwrap());
            // Refresh the hot store through an actual epoch change: the
            // stale-entry refresh must move it to the back, like a hit.
            hot.insert_slice(&[rect2(1, 5, 1, 5)]).unwrap();
            let e = ctx.epoch_for(&hot);
            assert_eq!(e.epoch(), 2 + i as u64);
        }
        assert_eq!(ctx.epochs.len(), STORE_CACHE_CAPACITY);
        // One more cold store overflows the cache: the victim must be the
        // oldest *cold* entry, and the hot store must survive at the back.
        cold.push(store(2));
        ctx.epoch_for(cold.last().unwrap());
        assert_eq!(ctx.epochs.len(), STORE_CACHE_CAPACITY);
        assert!(
            ctx.epochs.iter().any(|c| c.store == hot.id()),
            "hot store evicted by cold one-shot lookups"
        );
        assert!(
            !ctx.epochs.iter().any(|c| c.store == cold[0].id()),
            "oldest cold entry should have been the victim"
        );
        // Pure hits (no epoch change) refresh recency too.
        ctx.epoch_for(&cold[1]);
        assert_eq!(ctx.epochs.last().unwrap().store, cold[1].id());
    }

    #[test]
    fn pool_recovers_poisoned_slot() {
        use geometry::HyperRect;
        use sketch::{QueryContext, QueryKernel, RangeQuery, RangeStrategy};

        let mut rng = StdRng::seed_from_u64(31);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            sketch::estimators::SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let st = ShardedStore::like(&rq.new_sketch(), 3);
        let data: Vec<HyperRect<2>> = (0..40).map(|i| rect2(i, i + 9, 2 * i, 2 * i + 5)).collect();
        st.insert_slice(&data).unwrap();
        let mut oracle = rq.new_sketch();
        oracle.insert_slice(&data).unwrap();

        // One slot, so the panicking holder and every later caller share it.
        let pool = ContextPool::<2>::new(1);
        let router = crate::QueryRouter::new();
        let q = rect2(5, 60, 5, 60);
        // Warm the slot's caches so the reset actually discards something,
        // and pin a non-default kernel so recovery must preserve it.
        pool.with(|ctx| {
            ctx.query.set_kernel(QueryKernel::Batched);
            router.estimate_range(&rq, &st, ctx, &q).unwrap();
        });

        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.with(|_ctx| panic!("injected handler panic while holding the slot"));
        }));
        assert!(panicked.is_err());

        // The slot must serve again — repeatedly — and answers must still
        // bit-match the unsharded oracle (the half-warm caches were reset,
        // not trusted). Before the fix this `with` panicked forever on
        // "pool lock poisoned".
        let mut octx = QueryContext::new().with_kernel(QueryKernel::Batched);
        let want = rq.estimate_with(&mut octx, &oracle, &q).unwrap();
        for round in 0..3 {
            let got = pool
                .with(|ctx| {
                    assert_eq!(
                        ctx.query.kernel(),
                        QueryKernel::Batched,
                        "kernel pin must survive recovery"
                    );
                    router.estimate_range(&rq, &st, ctx, &q)
                })
                .unwrap();
            assert_eq!(
                want.value.to_bits(),
                got.value.to_bits(),
                "round {round} after recovery diverged from the oracle"
            );
            assert_eq!(want.row_means, got.row_means);
        }
        // The poison flag was cleared: the probing fast path sees a clean
        // mutex again (a poisoned one would re-enter recovery every call).
        assert!(pool.slots[0].try_lock().is_ok());
    }

    #[test]
    fn pool_hands_out_contexts_concurrently() {
        let pool = Arc::new(ContextPool::<2>::new(3));
        assert_eq!(pool.workers(), 3);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..50 {
                        pool.with(|ctx| {
                            let _ = &mut ctx.query;
                        });
                    }
                });
            }
        });
    }
}

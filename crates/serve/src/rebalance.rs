//! Online topology changes for [`ShardedStore`]: hot-shard detection and
//! split / merge / boundary-move cutovers that readers never observe
//! half-done.
//!
//! ## Why replay works
//!
//! A shard's sketch cannot be *spatially* split — counters mix every
//! object routed to the shard — so splitting and boundary moves rebuild
//! the affected shards by replaying the store's full update journal
//! ([`sketch::LogRetention::Full`], see [`ShardedStore::with_log`])
//! filtered through the **new** partition. Because `i64` counter
//! arithmetic is associative and commutative over batch composition, the
//! rebuilt shards carry exactly the counters, coverage boxes and update
//! tallies they would have had if the new partition had routed every batch
//! from the beginning. Merging two neighbours needs no journal at all:
//! sketches are linear, so the counter fold *is* the merged shard.
//!
//! ## Cutover
//!
//! Every topology change runs under the store's writer lock (ingest
//! pauses — the pause the rebalance perf probe measures) and publishes its
//! result exactly like an ingest batch: one new [`crate::StoreEpoch`]
//! carrying the new partition and shard vector, swapped in atomically.
//! Queries never pause and never see a half-rebalanced topology — a reader
//! holds either the old epoch (old partition, old shards) or the new one,
//! and in exact router mode both merge to bit-identical counters.
//!
//! ## Deciding what to change
//!
//! [`ShardedStore::load_report`] snapshots per-shard load — gross updates
//! (ingest side) and router query selections (read side) — as a
//! [`ShardLoadReport`]. Reports are cumulative; diff two of them
//! ([`ShardLoadReport::rates_since`]) for rates. The report nominates a
//! [`ShardLoadReport::split_candidate`] (hottest splittable shard, cut at
//! its span midpoint) and a [`ShardLoadReport::merge_candidate`] (coldest
//! adjacent pair) for policy loops that want a default.

use crate::shard::SketchShard;
use crate::store::{ShardedStore, StoreEpoch};
use dyadic::DomainPartition;
use geometry::{Coord, HyperRect, Interval};
use sketch::{SketchError, UpdateLog};
use std::sync::Arc;

/// Why a topology change was refused. The store is untouched in every
/// case: validation happens before any shard is rebuilt, and the rebuilt
/// state is published atomically or not at all.
#[derive(Debug, Clone, PartialEq)]
pub enum RebalanceError {
    /// The named shard (or boundary) index does not exist.
    UnknownShard(usize),
    /// The split/move coordinate does not fall strictly inside the
    /// admissible span (both sides of every boundary must stay non-empty,
    /// and a move must actually move).
    InvalidBoundary(Coord),
    /// The update journal does not reach back to the beginning of the
    /// store's history (retention is not `Full`, or the store was restored
    /// from a snapshot), so replay-based changes cannot rebuild shards
    /// exactly. Merges never need the journal.
    LogIncomplete,
    /// A sketch operation failed while rebuilding (schema or word
    /// mismatch — possible only if shards diverged, which the store's
    /// constructors prevent).
    Sketch(SketchError),
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownShard(s) => write!(f, "shard or boundary index {s} out of range"),
            Self::InvalidBoundary(at) => {
                write!(f, "coordinate {at} is not a valid boundary position")
            }
            Self::LogIncomplete => write!(
                f,
                "update log incomplete: replay-based topology changes need LogRetention::Full \
                 from the store's creation"
            ),
            Self::Sketch(e) => write!(f, "sketch error during shard rebuild: {e}"),
        }
    }
}

impl std::error::Error for RebalanceError {}

impl From<SketchError> for RebalanceError {
    fn from(e: SketchError) -> Self {
        Self::Sketch(e)
    }
}

/// Load of one shard at the moment a [`ShardLoadReport`] was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// The dimension-0 span the shard owns.
    pub span: Interval,
    /// Gross updates (inserts + deletes) applied so far.
    pub updates: u64,
    /// Router query selections so far.
    pub queries: u64,
    /// Net objects currently summarized.
    pub len: i64,
}

impl ShardLoad {
    /// Combined update + query pressure — the scalar the default
    /// candidates rank by.
    pub fn pressure(&self) -> u64 {
        self.updates + self.queries
    }
}

/// A point-in-time snapshot of per-shard load, tagged with the epoch it
/// observed (so a policy loop can tell whether the topology changed under
/// it).
#[derive(Debug, Clone)]
pub struct ShardLoadReport {
    epoch: u64,
    loads: Vec<ShardLoad>,
}

impl ShardLoadReport {
    /// The epoch the report observed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-shard loads, in shard order.
    pub fn shards(&self) -> &[ShardLoad] {
        &self.loads
    }

    /// The shard with the highest [`ShardLoad::pressure`].
    pub fn hottest(&self) -> Option<usize> {
        (0..self.loads.len()).max_by_key(|&s| self.loads[s].pressure())
    }

    /// The hottest shard whose span is wide enough to split, and the
    /// midpoint to cut at. `None` when every shard is already a single
    /// coordinate (or the report is empty).
    pub fn split_candidate(&self) -> Option<(usize, Coord)> {
        let splittable =
            (0..self.loads.len()).filter(|&s| self.loads[s].span.hi() > self.loads[s].span.lo());
        let shard = splittable.max_by_key(|&s| self.loads[s].pressure())?;
        let span = self.loads[shard].span;
        Some((shard, span.lo() + (span.hi() - span.lo()).div_ceil(2)))
    }

    /// The left index of the adjacent pair with the lowest combined
    /// pressure — the default merge target. `None` with fewer than two
    /// shards.
    pub fn merge_candidate(&self) -> Option<usize> {
        (0..self.loads.len().checked_sub(1)?)
            .min_by_key(|&s| self.loads[s].pressure() + self.loads[s + 1].pressure())
    }

    /// Per-shard `(updates, queries)` accumulated since `earlier`, for
    /// rate-based policies. `None` if the topology changed between the two
    /// reports (spans differ), which would make per-shard differences
    /// meaningless.
    pub fn rates_since(&self, earlier: &ShardLoadReport) -> Option<Vec<(u64, u64)>> {
        if self.loads.len() != earlier.loads.len()
            || self
                .loads
                .iter()
                .zip(earlier.loads.iter())
                .any(|(a, b)| a.span != b.span)
        {
            return None;
        }
        Some(
            self.loads
                .iter()
                .zip(earlier.loads.iter())
                .map(|(a, b)| {
                    (
                        a.updates.saturating_sub(b.updates),
                        a.queries.saturating_sub(b.queries),
                    )
                })
                .collect(),
        )
    }
}

impl<const D: usize> ShardedStore<D> {
    /// Snapshots per-shard load from the current epoch — the input to
    /// rebalance policy.
    pub fn load_report(&self) -> ShardLoadReport {
        let epoch = self.load();
        let partition = epoch.partition();
        ShardLoadReport {
            epoch: epoch.epoch(),
            loads: epoch
                .shards()
                .iter()
                .enumerate()
                .map(|(s, shard)| ShardLoad {
                    span: partition.span(s),
                    updates: shard.updates(),
                    queries: shard.queries(),
                    len: shard.sketch().len(),
                })
                .collect(),
        }
    }

    /// Splits `shard` at coordinate `at` (the right child starts at `at`)
    /// and publishes the result as one new epoch. Rebuilds both children
    /// by replaying the full update journal through the new partition, so
    /// the split store's counter fold stays bit-identical to the unsharded
    /// oracle; requires [`sketch::LogRetention::Full`] from the store's
    /// creation ([`RebalanceError::LogIncomplete`] otherwise). Ingest
    /// pauses for the duration (writer lock); queries do not.
    ///
    /// The children's query tallies restart at zero — they are new shards
    /// as far as read-side telemetry is concerned.
    pub fn split_shard(&self, shard: usize, at: Coord) -> Result<(), RebalanceError> {
        let _writer = self.writer_lock();
        let cur = self.load();
        if shard >= cur.shards().len() {
            return Err(RebalanceError::UnknownShard(shard));
        }
        let partition = cur
            .partition()
            .split_at(shard, at)
            .ok_or(RebalanceError::InvalidBoundary(at))?;
        let log = self.log();
        let rebuilt = self.replay_shards(&partition, &[shard, shard + 1], &log)?;
        let mut shards = cur.shards().to_vec();
        shards.splice(
            shard..=shard,
            rebuilt.into_iter().map(Arc::new).collect::<Vec<_>>(),
        );
        self.publish(Arc::new(StoreEpoch::assemble(
            cur.epoch() + 1,
            partition,
            shards,
        )));
        Ok(())
    }

    /// Merges shard `left` with its right neighbour into one shard and
    /// publishes the result as one new epoch. Pure counter fold — sketches
    /// are linear — so no journal is needed and the merged store answers
    /// bit-identically. Coverage boxes union; update and query tallies
    /// sum.
    pub fn merge_shards(&self, left: usize) -> Result<(), RebalanceError> {
        let _writer = self.writer_lock();
        let cur = self.load();
        let partition = cur
            .partition()
            .merge_at(left)
            .ok_or(RebalanceError::UnknownShard(left))?;
        let merged = cur.shards()[left].merged_with(&cur.shards()[left + 1])?;
        let mut shards = cur.shards().to_vec();
        shards.splice(left..=left + 1, [Arc::new(merged)]);
        self.publish(Arc::new(StoreEpoch::assemble(
            cur.epoch() + 1,
            partition,
            shards,
        )));
        Ok(())
    }

    /// Moves the boundary between shards `boundary - 1` and `boundary` to
    /// coordinate `at`, rebuilding both neighbours by journal replay (same
    /// requirements and guarantees as [`ShardedStore::split_shard`]).
    pub fn move_shard_boundary(&self, boundary: usize, at: Coord) -> Result<(), RebalanceError> {
        let _writer = self.writer_lock();
        let cur = self.load();
        if boundary == 0 || boundary >= cur.shards().len() {
            return Err(RebalanceError::UnknownShard(boundary));
        }
        let partition = cur
            .partition()
            .move_boundary(boundary, at)
            .ok_or(RebalanceError::InvalidBoundary(at))?;
        let log = self.log();
        let rebuilt = self.replay_shards(&partition, &[boundary - 1, boundary], &log)?;
        let mut shards = cur.shards().to_vec();
        shards.splice(
            boundary - 1..=boundary,
            rebuilt.into_iter().map(Arc::new).collect::<Vec<_>>(),
        );
        self.publish(Arc::new(StoreEpoch::assemble(
            cur.epoch() + 1,
            partition,
            shards,
        )));
        Ok(())
    }

    /// Rebuilds the shards at indices `targets` (under `partition`) by
    /// replaying the complete journal: each entry's rectangles are routed
    /// through the **new** partition and applied with the entry's original
    /// delta, entry by entry in epoch order — recomputing counters,
    /// coverage and update tallies exactly as if `partition` had routed
    /// the whole history.
    fn replay_shards(
        &self,
        partition: &DomainPartition,
        targets: &[usize],
        log: &UpdateLog<D>,
    ) -> Result<Vec<SketchShard<D>>, RebalanceError> {
        if !log.is_complete() {
            return Err(RebalanceError::LogIncomplete);
        }
        let mut rebuilt: Vec<SketchShard<D>> = targets.iter().map(|_| self.empty_shard()).collect();
        let mut groups: Vec<Vec<HyperRect<D>>> = vec![Vec::new(); targets.len()];
        for entry in log.entries() {
            for g in groups.iter_mut() {
                g.clear();
            }
            for r in entry.rects() {
                let s = partition.shard_of(r.range(0).lo());
                if let Some(i) = targets.iter().position(|&t| t == s) {
                    groups[i].push(*r);
                }
            }
            for (i, g) in groups.iter().enumerate() {
                if !g.is_empty() {
                    rebuilt[i].apply(g, entry.delta())?;
                }
            }
        }
        Ok(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use sketch::{
        ie_words, BoostShape, DimSpec, EndpointPolicy, LogRetention, SketchSchema, SketchSet,
    };

    fn store(shards: usize, seed: u64) -> ShardedStore<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            fourwise::XiKind::Bch,
            BoostShape::new(13, 3),
            [DimSpec::dyadic(8); 2],
        );
        ShardedStore::new(
            schema,
            std::sync::Arc::new(ie_words::<2>()),
            EndpointPolicy::Raw,
            shards,
        )
        .with_log(LogRetention::Full)
    }

    fn rects(n: usize, seed: u64) -> Vec<HyperRect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0..200u64);
                let y = rng.gen_range(0..200u64);
                rect2(
                    x,
                    x + rng.gen_range(1..50u64),
                    y,
                    y + rng.gen_range(1..50u64),
                )
            })
            .collect()
    }

    /// Counter fold across all shards, for bit-comparisons.
    fn fold(st: &ShardedStore<2>) -> SketchSet<2> {
        let mut merged = st.empty_sketch();
        for s in st.load().shards() {
            merged.merge_from(s.sketch()).unwrap();
        }
        merged
    }

    fn assert_counters_match(st: &ShardedStore<2>, oracle: &SketchSet<2>, label: &str) {
        let merged = fold(st);
        assert_eq!(merged.len(), oracle.len(), "{label}: net length");
        for inst in 0..st.schema().instances() {
            assert_eq!(
                merged.instance_counters(inst),
                oracle.instance_counters(inst),
                "{label}: instance {inst}"
            );
        }
    }

    #[test]
    fn split_merge_move_preserve_the_counter_fold() {
        let st = store(2, 1);
        let data = rects(150, 2);
        st.insert_slice(&data).unwrap();
        st.delete_slice(&data[..50]).unwrap();
        let mut oracle = st.empty_sketch();
        oracle.insert_slice(&data).unwrap();
        oracle.delete_slice(&data[..50]).unwrap();

        st.split_shard(0, 37).unwrap(); // deliberately unaligned
        assert_eq!(st.shard_count(), 3);
        assert_counters_match(&st, &oracle, "after split");

        st.move_shard_boundary(1, 90).unwrap();
        assert_counters_match(&st, &oracle, "after move");

        st.merge_shards(0).unwrap();
        assert_eq!(st.shard_count(), 2);
        assert_counters_match(&st, &oracle, "after merge");

        // Ingest keeps working against the new topology.
        let more = rects(30, 3);
        st.insert_slice(&more).unwrap();
        oracle.insert_slice(&more).unwrap();
        assert_counters_match(&st, &oracle, "after post-rebalance ingest");
    }

    #[test]
    fn split_rebuilds_exact_per_shard_routing() {
        let st = store(1, 4);
        let data = rects(80, 5);
        st.insert_slice(&data).unwrap();
        st.split_shard(0, 100).unwrap();
        let epoch = st.load();
        // Every object sits in the shard the new partition routes it to.
        let by_route = |lo: u64| epoch.partition().shard_of(lo);
        let expected: Vec<u64> = {
            let mut counts = vec![0u64; 2];
            for r in &data {
                counts[by_route(r.range(0).lo())] += 1;
            }
            counts
        };
        for (s, shard) in epoch.shards().iter().enumerate() {
            assert_eq!(shard.updates(), expected[s], "shard {s} update tally");
        }
    }

    #[test]
    fn topology_changes_demand_a_complete_log() {
        let st = store(2, 6); // Full log…
        let truncated = ShardedStore::<2>::restore(&st.snapshot())
            .unwrap()
            .with_log(LogRetention::Full);
        // …but the restored store's history starts at its snapshot.
        assert_eq!(
            truncated.split_shard(0, 10),
            Err(RebalanceError::LogIncomplete)
        );
        assert_eq!(
            truncated.move_shard_boundary(1, 10),
            Err(RebalanceError::LogIncomplete)
        );
        // Merging needs no history at all.
        truncated.merge_shards(0).unwrap();
        assert_eq!(truncated.shard_count(), 1);
    }

    #[test]
    fn invalid_targets_are_rejected_cleanly() {
        let st = store(2, 7);
        st.insert_slice(&rects(10, 8)).unwrap();
        let epoch_before = st.epoch_tag();
        assert_eq!(st.split_shard(5, 10), Err(RebalanceError::UnknownShard(5)));
        assert_eq!(
            st.split_shard(0, 0),
            Err(RebalanceError::InvalidBoundary(0))
        );
        assert_eq!(st.merge_shards(1), Err(RebalanceError::UnknownShard(1)));
        assert_eq!(
            st.move_shard_boundary(0, 10),
            Err(RebalanceError::UnknownShard(0))
        );
        assert_eq!(
            st.move_shard_boundary(1, 128),
            Err(RebalanceError::InvalidBoundary(128)) // no-op move
        );
        assert_eq!(st.epoch_tag(), epoch_before, "failed ops publish nothing");
    }

    #[test]
    fn load_report_feeds_split_and_merge_candidates() {
        let st = store(2, 9);
        // Load shard 0 much harder than shard 1.
        let heavy: Vec<_> = (0..40u64)
            .map(|i| rect2(i % 100, i % 100 + 3, 0, 5))
            .collect();
        st.insert_slice(&heavy).unwrap();
        let report = st.load_report();
        assert_eq!(report.epoch(), st.epoch_tag());
        assert_eq!(report.shards().len(), 2);
        assert!(report.shards()[0].updates > report.shards()[1].updates);
        assert_eq!(report.hottest(), Some(0));
        let (shard, at) = report.split_candidate().unwrap();
        assert_eq!(shard, 0);
        assert!(at > 0 && at <= report.shards()[0].span.hi());
        assert_eq!(report.merge_candidate(), Some(0));

        // Rates diff cleanly while topology is stable…
        let later = st.load_report();
        let rates = later.rates_since(&report).unwrap();
        assert!(rates.iter().all(|&(u, q)| u == 0 && q == 0));
        // …and refuse to diff across a topology change.
        st.split_shard(0, at).unwrap();
        assert!(st.load_report().rates_since(&report).is_none());
    }
}

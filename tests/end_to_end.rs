//! Cross-crate integration tests: full pipelines from workload generation
//! through sketch maintenance to estimation, checked against the exact
//! processors.

use rand::SeedableRng;
use spatial_sketch::datagen::{churn_stream, replay, SyntheticSpec, Update};
use spatial_sketch::exact;
use spatial_sketch::geometry::HyperRect;
use spatial_sketch::sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use spatial_sketch::sketch::estimators::SketchConfig;
use spatial_sketch::sketch::{par_insert_batch, plan, SketchSet};

fn workload(n: usize, bits: u32, z: f64, seed: u64) -> Vec<HyperRect<2>> {
    SyntheticSpec::paper(n, bits, z, seed).generate()
}

fn adaptive_config(k1: usize, k2: usize, data: &[&[HyperRect<2>]], bits: u32) -> SketchConfig {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for set in data {
        for r in set.iter() {
            for d in 0..2 {
                log_sum += (3.0 * r.range(d).length().max(1) as f64).log2();
                n += 1;
            }
        }
    }
    let mean = (log_sum / n as f64).exp2();
    SketchConfig::new(k1, k2).with_max_level(plan::adaptive_max_level(mean, bits + 2))
}

/// The headline pipeline: generate, sketch in one parallel pass, estimate,
/// compare with the exact join. The tolerance is wide but meaningful — the
/// estimate must carry real signal, not noise.
///
/// Heavyweight statistical test: ignored under debug builds (the CI
/// `tests-release` lane runs it via `cargo test --release`).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavyweight statistical test; run with --release"
)]
fn join_pipeline_accuracy_2d() {
    // Dense-enough workload that the variance band sits well below the
    // truth: 3K objects over a 2^10 domain gives selectivity ~4e-3.
    let bits = 10u32;
    let r = workload(3000, bits, 0.0, 1);
    let s = workload(3000, bits, 0.5, 2);
    let truth = exact::rect_join_count(&r, &s) as f64;
    assert!(truth > 10_000.0, "workload too sparse: {truth}");

    let mut errs = Vec::new();
    for seed in 0..3u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40 + seed);
        let config = adaptive_config(240, 5, &[&r, &s], bits);
        let join =
            SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);
        let mut sk_r = join.new_sketch_r();
        let mut sk_s = join.new_sketch_s();
        par_insert_batch(&mut sk_r, &r, 4).unwrap();
        par_insert_batch(&mut sk_s, &s, 4).unwrap();
        let est = join.estimate(&sk_r, &sk_s).unwrap().value;
        errs.push((est - truth).abs() / truth);
    }
    let avg = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(avg < 0.5, "avg relative error too high: {avg} ({errs:?})");
}

/// Sketches are linear: building from a stream with deletions must produce
/// *bit-identical* counters to building from the surviving live set.
#[test]
fn streaming_deletions_equal_rebuild() {
    let bits = 10u32;
    let base = workload(400, bits, 0.3, 7);
    let stream = churn_stream(&base, 600, 0.5, 8);
    let live = replay(&stream);

    let mut rng = rand::rngs::StdRng::seed_from_u64(50);
    let config = SketchConfig::new(6, 3);
    let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);

    let mut streamed = join.new_sketch_r();
    for u in &stream {
        match u {
            Update::Insert(x) => streamed.insert(x).unwrap(),
            Update::Delete(x) => streamed.delete(x).unwrap(),
        }
    }
    let mut rebuilt = join.new_sketch_r();
    for x in &live {
        rebuilt.insert(x).unwrap();
    }
    assert_eq!(streamed.len(), live.len() as i64);
    for inst in 0..streamed.schema().instances() {
        assert_eq!(
            streamed.instance_counters(inst),
            rebuilt.instance_counters(inst),
            "instance {inst} diverged"
        );
    }
}

/// Distributed building: sketching shards independently and merging equals
/// sketching everything centrally, and estimates follow suit.
#[test]
fn sharded_merge_equals_central_build() {
    let bits = 10u32;
    let data = workload(900, bits, 0.0, 9);
    let other = workload(500, bits, 0.0, 10);

    let mut rng = rand::rngs::StdRng::seed_from_u64(60);
    let config = SketchConfig::new(8, 3);
    let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);

    let mut central = join.new_sketch_r();
    par_insert_batch(&mut central, &data, 3).unwrap();

    let mut merged = join.new_sketch_r();
    for shard in data.chunks(250) {
        let mut sk: SketchSet<2> = join.new_sketch_r();
        par_insert_batch(&mut sk, shard, 2).unwrap();
        merged.merge_from(&sk).unwrap();
    }
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_s, &other, 3).unwrap();

    assert_eq!(
        join.estimate(&central, &sk_s).unwrap().value,
        join.estimate(&merged, &sk_s).unwrap().value
    );
}

/// The planner's Theorem-1 sizing really does deliver the guarantee on a
/// concrete workload (with margin — the variance bound is conservative).
///
/// Heavyweight statistical test (~60 s debug, seconds in release): ignored
/// under debug builds, run by the CI `tests-release` lane.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavyweight statistical test; run with --release"
)]
fn planner_guarantee_holds() {
    // Dense small-domain workload keeps the planned instance count modest:
    // Theorem 2 sizes k1 from SJ(R)·SJ(S)/E[Z]², and density grows E[Z]
    // faster than the self-join sizes. (The build cost of the planned
    // sketch is n·k1·k2, which this CI-sized single-core test must afford
    // in debug mode — hence the loose epsilon below.)
    let bits = 8u32;
    let r = workload(2000, bits, 0.0, 11);
    let s = workload(2000, bits, 0.0, 12);
    let truth = exact::rect_join_count(&r, &s) as f64;
    assert!(truth > 5_000.0, "workload too sparse: {truth}");

    // Loose-but-honest inputs: sketched SJ estimates and a half-truth
    // sanity bound would be used in production; here exact values keep the
    // test fast and deterministic.
    let config = adaptive_config(1, 1, &[&r, &s], bits);
    let max_level = config.max_level.unwrap();
    let dims = [spatial_sketch::sketch::DimSpec::with_max_level(bits + 2, max_level); 2];
    let sj_r = spatial_sketch::sketch::selfjoin::exact_self_join(
        &r,
        &dims,
        spatial_sketch::sketch::EndpointPolicy::Tripled,
        &spatial_sketch::sketch::ie_words::<2>(),
    ) as f64;
    let sj_s = spatial_sketch::sketch::selfjoin::exact_self_join(
        &s,
        &dims,
        spatial_sketch::sketch::EndpointPolicy::TripledShrunk,
        &spatial_sketch::sketch::ie_words::<2>(),
    ) as f64;
    // Sanity bound = the exact truth: the tightest admissible bound, which
    // any valid lower bound only loosens into more instances (Lemma 1).
    let guarantee = plan::Guarantee::new(0.9, 0.1).unwrap();
    let shape = plan::join_shape(guarantee, 2, sj_r, sj_s, truth).unwrap();
    // The conservative Cauchy-Schwarz variance bound plans generously (the
    // paper: guarantees are "usually overly pessimistic in practice");
    // keep a ceiling so the test stays fast.
    assert!(
        shape.instances() < 60_000,
        "planned shape unexpectedly large: {} instances",
        shape.instances()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(70);
    let cfg = SketchConfig {
        kind: spatial_sketch::fourwise::XiKind::Bch,
        shape,
        max_level: Some(max_level),
    };
    let join = SpatialJoin::<2>::new(&mut rng, cfg, [bits, bits], EndpointStrategy::Transform);
    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_r, &r, 4).unwrap();
    par_insert_batch(&mut sk_s, &s, 4).unwrap();
    let est = join.estimate(&sk_r, &sk_s).unwrap().value;
    let err = (est - truth).abs() / truth;
    assert!(
        err <= guarantee.epsilon,
        "guaranteed {} but measured {err}",
        guarantee.epsilon
    );
}

/// Baselines and sketch agree on the same workload within their respective
/// regimes (coarse EH accurate; GH accurate on uniform; SKETCH within its
/// variance band) — a three-way consistency net.
///
/// Heavyweight statistical test: ignored under debug builds, run by the CI
/// `tests-release` lane.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavyweight statistical test; run with --release"
)]
fn three_estimators_consistent_on_uniform() {
    use spatial_sketch::histograms::{EulerHistogram, GeometricHistogram, GridSpec};
    let bits = 11u32;
    let r = workload(2500, bits, 0.0, 13);
    let s = workload(2500, bits, 0.0, 14);
    let truth = exact::rect_join_count(&r, &s) as f64;

    let spec = GridSpec::new(bits, 2);
    let mut eh_r = EulerHistogram::new(spec);
    let mut eh_s = EulerHistogram::new(spec);
    let mut gh_r = GeometricHistogram::new(spec);
    let mut gh_s = GeometricHistogram::new(spec);
    for x in &r {
        eh_r.insert(x);
        gh_r.insert(x);
    }
    for x in &s {
        eh_s.insert(x);
        gh_s.insert(x);
    }
    let eh_err = (eh_r.estimate_join(&eh_s) - truth).abs() / truth;
    let gh_err = (gh_r.estimate_join(&gh_s) - truth).abs() / truth;
    assert!(eh_err < 0.5, "EH err {eh_err}");
    assert!(gh_err < 0.5, "GH err {gh_err}");

    let mut rng = rand::rngs::StdRng::seed_from_u64(80);
    let config = adaptive_config(320, 5, &[&r, &s], bits);
    let join = SpatialJoin::<2>::new(&mut rng, config, [bits, bits], EndpointStrategy::Transform);
    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_r, &r, 4).unwrap();
    par_insert_batch(&mut sk_s, &s, 4).unwrap();
    let sk_err = (join.estimate(&sk_r, &sk_s).unwrap().value - truth).abs() / truth;
    assert!(sk_err < 0.8, "SKETCH err {sk_err}");
}

//! Differential suite: the blocked build kernels against the scalar oracle.
//!
//! The kernel matrix — `BuildKernel::Batched` (64-lane bit-sliced),
//! `BuildKernel::Wide` (256-lane bit-sliced) and `BuildKernel::Wide512`
//! (512-lane bit-sliced) — must produce **bit-identical** `SketchSet`
//! counters to the scalar reference path for every construction, endpoint
//! policy, dimensionality and insert/delete mix — sketches are exact
//! integer linear summaries, so any divergence at all is a kernel bug. The
//! oracle chain is Scalar → Batched → Wide → Wide512: the scalar path
//! anchors all blocked widths at once.
//!
//! Seeded stand-ins for property tests: each configuration streams ≥200
//! random objects (with interleaved deletions of earlier inserts) through
//! all kernels and compares every counter. Heavyweight 3-d configurations
//! run in the CI `tests-release` lane
//! (`#[cfg_attr(debug_assertions, ignore)]`), following the ROADMAP
//! convention.

use geometry::{HyperRect, Interval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketch::{
    ie_words, BoostShape, BuildKernel, Comp, DimSpec, EndpointPolicy, SketchSchema, SketchSet, Word,
};
use std::sync::Arc;

const POLICIES: [EndpointPolicy; 3] = [
    EndpointPolicy::Raw,
    EndpointPolicy::Tripled,
    EndpointPolicy::TripledShrunk,
];

/// The blocked kernels checked against the scalar oracle.
const MATRIX: [BuildKernel; 3] = [
    BuildKernel::Batched,
    BuildKernel::Wide,
    BuildKernel::Wide512,
];

/// Every component class in one word list: the `{I,E}^D` join words plus
/// point- and leaf-reading words (range/containment/ε-join shapes).
fn all_comp_words<const D: usize>() -> Vec<Word<D>> {
    let mut words = ie_words::<D>();
    words.push([Comp::LowerPoint; D]);
    words.push([Comp::UpperPoint; D]);
    words.push([Comp::LowerLeaf; D]);
    words.push([Comp::UpperLeaf; D]);
    // A mixed word exercising different components per dimension.
    let cycle = [Comp::Interval, Comp::LowerLeaf, Comp::UpperPoint];
    words.push(std::array::from_fn(|d| cycle[d % cycle.len()]));
    words
}

fn rand_rect<const D: usize>(rng: &mut StdRng, max: u64) -> HyperRect<D> {
    HyperRect::new(std::array::from_fn(|_| {
        let a = rng.gen_range(0..=max);
        let b = rng.gen_range(0..=max);
        Interval::new(a.min(b), a.max(b))
    }))
}

fn assert_identical<const D: usize>(scalar: &SketchSet<D>, blocked: &SketchSet<D>, label: &str) {
    assert_eq!(scalar.len(), blocked.len(), "{label}: net length diverged");
    for inst in 0..scalar.schema().instances() {
        assert_eq!(
            scalar.instance_counters(inst),
            blocked.instance_counters(inst),
            "{label}: instance {inst} diverged"
        );
    }
}

/// Streams a seeded insert/delete mix through the whole kernel matrix and
/// demands bit-identical counters after every phase of the stream.
fn run_config<const D: usize>(
    kind: fourwise::XiKind,
    policy: EndpointPolicy,
    shape: BoostShape,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = SketchSchema::<D>::new(&mut rng, kind, shape, [DimSpec::dyadic(8); D]);
    let words = Arc::new(all_comp_words::<D>());
    let mut scalar =
        SketchSet::new(schema.clone(), words.clone(), policy).with_kernel(BuildKernel::Scalar);
    let mut blocked: Vec<(BuildKernel, SketchSet<D>)> = MATRIX
        .into_iter()
        .map(|k| {
            (
                k,
                SketchSet::new(schema.clone(), words.clone(), policy).with_kernel(k),
            )
        })
        .collect();
    let label =
        |k: BuildKernel| format!("{kind:?}/{policy:?}/{D}d/{}x{}/{k:?}", shape.k1, shape.k2);
    let max = (1u64 << scalar.data_bits()[0]) - 1;

    let mut live: Vec<HyperRect<D>> = Vec::new();
    let mut inserted = 0usize;
    let mut step = 0usize;
    // ≥200 random objects per configuration, with ~30% interleaved deletes.
    while inserted < 210 {
        if !live.is_empty() && rng.gen_range(0..10u32) < 3 {
            let r = live.swap_remove(rng.gen_range(0..live.len()));
            scalar.delete(&r).unwrap();
            for (_, sk) in blocked.iter_mut() {
                sk.delete(&r).unwrap();
            }
        } else {
            let r = rand_rect::<D>(&mut rng, max);
            scalar.insert(&r).unwrap();
            for (_, sk) in blocked.iter_mut() {
                sk.insert(&r).unwrap();
            }
            live.push(r);
            inserted += 1;
        }
        step += 1;
        if step % 75 == 74 {
            for (k, sk) in blocked.iter() {
                assert_identical(&scalar, sk, &label(*k));
            }
        }
    }

    // Drain: linearity means every kernel returns to exactly zero together.
    for r in live.drain(..) {
        scalar.delete(&r).unwrap();
        for (_, sk) in blocked.iter_mut() {
            sk.delete(&r).unwrap();
        }
    }
    for (k, sk) in blocked.iter() {
        assert_identical(&scalar, sk, &label(*k));
        assert!(sk.instance_counters(0).iter().all(|&c| c == 0));
    }
}

/// 67 instances: one full 64-lane block plus a 3-lane tail (and a partial
/// wide block).
const BLOCK_SPANNING: BoostShape = BoostShape { k1: 67, k2: 1 };

/// 300 instances: one full 256-lane wide block plus a 44-lane tail, five
/// 64-lane blocks — and a partial 512-lane block with 5 of 8 backing words
/// occupied (the occupancy-skip path).
const WIDE_SPANNING: BoostShape = BoostShape { k1: 150, k2: 2 };

/// 520 instances: one full 512-lane block plus an 8-lane tail (a single
/// occupied backing word in the tail block), two 256-lane wide blocks plus
/// a tail, nine 64-lane blocks.
const WIDE512_SPANNING: BoostShape = BoostShape { k1: 260, k2: 2 };

#[test]
fn differential_bch_all_policies_1d() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        run_config::<1>(
            fourwise::XiKind::Bch,
            policy,
            BLOCK_SPANNING,
            900 + i as u64,
        );
    }
}

#[test]
fn differential_bch_all_policies_2d() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        run_config::<2>(
            fourwise::XiKind::Bch,
            policy,
            BLOCK_SPANNING,
            910 + i as u64,
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn differential_bch_all_policies_3d() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        run_config::<3>(
            fourwise::XiKind::Bch,
            policy,
            BLOCK_SPANNING,
            920 + i as u64,
        );
    }
}

#[test]
fn differential_poly_all_policies_1d() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        run_config::<1>(
            fourwise::XiKind::Poly,
            policy,
            BLOCK_SPANNING,
            930 + i as u64,
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn differential_poly_all_policies_2d() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        run_config::<2>(
            fourwise::XiKind::Poly,
            policy,
            BLOCK_SPANNING,
            940 + i as u64,
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn differential_poly_all_policies_3d() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        run_config::<3>(
            fourwise::XiKind::Poly,
            policy,
            BLOCK_SPANNING,
            950 + i as u64,
        );
    }
}

#[test]
fn differential_instance_shapes() {
    // Below, exactly at, and just above both lane widths, plus multi-block
    // shapes — tail handling must stay identical everywhere.
    for (i, (k1, k2)) in [(5, 1), (64, 1), (13, 5), (64, 3)].into_iter().enumerate() {
        run_config::<2>(
            fourwise::XiKind::Bch,
            EndpointPolicy::Tripled,
            BoostShape::new(k1, k2),
            960 + i as u64,
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn differential_wide_spanning_shapes() {
    // Shapes straddling the 256-lane wide block width.
    run_config::<2>(
        fourwise::XiKind::Bch,
        EndpointPolicy::Tripled,
        WIDE_SPANNING,
        970,
    );
    run_config::<1>(
        fourwise::XiKind::Poly,
        EndpointPolicy::Raw,
        BoostShape::new(256, 1),
        971,
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavyweight: tests-release lane")]
fn differential_wide512_spanning_shapes() {
    // Shapes straddling the 512-lane block width: a full block plus a tiny
    // tail (one occupied backing word of eight), and an exact fit.
    run_config::<2>(
        fourwise::XiKind::Bch,
        EndpointPolicy::Tripled,
        WIDE512_SPANNING,
        975,
    );
    run_config::<1>(
        fourwise::XiKind::Poly,
        EndpointPolicy::Raw,
        BoostShape::new(512, 1),
        976,
    );
}

#[test]
fn default_kernel_follows_width_heuristic() {
    // Only meaningful when no SKETCH_KERNEL override pins the default (the
    // tests-release CI lane sets one to run this suite per kernel).
    let pinned = std::env::var("SKETCH_KERNEL")
        .map(|v| !v.trim().is_empty())
        .unwrap_or(false);
    if pinned {
        return;
    }
    let mut rng = StdRng::seed_from_u64(980);
    let words = Arc::new(ie_words::<1>());
    let small = SketchSchema::<1>::new(
        &mut rng,
        fourwise::XiKind::Bch,
        BoostShape::new(67, 1),
        [DimSpec::dyadic(8)],
    );
    let sk = SketchSet::new(small, words.clone(), EndpointPolicy::Raw);
    assert_eq!(sk.kernel(), BuildKernel::Batched);
    let large = SketchSchema::<1>::new(
        &mut rng,
        fourwise::XiKind::Bch,
        BoostShape::new(sketch::WIDE_MIN_INSTANCES, 1),
        [DimSpec::dyadic(8)],
    );
    let sk = SketchSet::new(large, words.clone(), EndpointPolicy::Raw);
    assert_eq!(sk.kernel(), BuildKernel::Wide);
    // Above the 512-lane threshold the dispatch is CPU-capped: Wide512 only
    // where runtime detection reports 512-bit vectors. The public resolved
    // view (`preferred_lane_width`) is the portable way to phrase it.
    let huge = SketchSchema::<1>::new(
        &mut rng,
        fourwise::XiKind::Bch,
        BoostShape::new(sketch::WIDE512_MIN_INSTANCES, 1),
        [DimSpec::dyadic(8)],
    );
    let expected = match sketch::preferred_lane_width(sketch::WIDE512_MIN_INSTANCES) {
        512 => BuildKernel::Wide512,
        _ => BuildKernel::Wide,
    };
    let sk = SketchSet::new(huge, words, EndpointPolicy::Raw);
    assert_eq!(sk.kernel(), expected);
}

#[test]
fn slice_ingestion_matches_streaming_inserts() {
    let mut rng = StdRng::seed_from_u64(70);
    let schema = SketchSchema::<2>::new(
        &mut rng,
        fourwise::XiKind::Bch,
        BoostShape::new(33, 2),
        [DimSpec::dyadic(8); 2],
    );
    let words = Arc::new(all_comp_words::<2>());
    let data: Vec<HyperRect<2>> = (0..300).map(|_| rand_rect::<2>(&mut rng, 255)).collect();

    let mut streamed = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw)
        .with_kernel(BuildKernel::Scalar);
    for r in &data {
        streamed.insert(r).unwrap();
    }
    for kernel in [
        BuildKernel::Scalar,
        BuildKernel::Batched,
        BuildKernel::Wide,
        BuildKernel::Wide512,
    ] {
        let mut sliced =
            SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw).with_kernel(kernel);
        sliced.insert_slice(&data).unwrap();
        assert_identical(&streamed, &sliced, &format!("insert_slice/{kernel:?}"));
        sliced.delete_slice(&data[..150]).unwrap();
        let mut partial = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw)
            .with_kernel(BuildKernel::Scalar);
        for r in &data[150..] {
            partial.insert(r).unwrap();
        }
        assert_identical(&partial, &sliced, &format!("delete_slice/{kernel:?}"));
    }
}

#[test]
fn slice_ingestion_validates_up_front() {
    let mut rng = StdRng::seed_from_u64(71);
    let schema = SketchSchema::<2>::new(
        &mut rng,
        fourwise::XiKind::Bch,
        BoostShape::new(4, 2),
        [DimSpec::dyadic(8); 2],
    );
    let words = Arc::new(ie_words::<2>());
    let mut sk = SketchSet::new(schema, words, EndpointPolicy::Raw);
    let mut data: Vec<HyperRect<2>> = (0..20).map(|_| rand_rect::<2>(&mut rng, 255)).collect();
    data.push(HyperRect::new([
        Interval::new(0, 400), // out of the 8-bit domain
        Interval::new(0, 1),
    ]));
    assert!(sk.insert_slice(&data).is_err());
    assert_eq!(sk.len(), 0);
    assert!((0..sk.schema().instances()).all(|i| sk.instance_counters(i).iter().all(|&c| c == 0)));
}

#[test]
fn kernels_are_switchable_mid_stream() {
    // A sketch may swap kernels at any point without perturbing its state.
    let mut rng = StdRng::seed_from_u64(72);
    let schema = SketchSchema::<2>::new(
        &mut rng,
        fourwise::XiKind::Bch,
        BoostShape::new(20, 1),
        [DimSpec::dyadic(8); 2],
    );
    let words = Arc::new(ie_words::<2>());
    let data: Vec<HyperRect<2>> = (0..120).map(|_| rand_rect::<2>(&mut rng, 255)).collect();

    let mut oracle = SketchSet::new(schema.clone(), words.clone(), EndpointPolicy::Raw)
        .with_kernel(BuildKernel::Scalar);
    let mut mixed = SketchSet::new(schema, words, EndpointPolicy::Raw);
    for (i, r) in data.iter().enumerate() {
        oracle.insert(r).unwrap();
        if i == 30 {
            mixed.set_kernel(BuildKernel::Wide);
        }
        if i == 60 {
            mixed.set_kernel(BuildKernel::Wide512);
        }
        if i == 90 {
            mixed.set_kernel(BuildKernel::Scalar);
        }
        mixed.insert(r).unwrap();
    }
    assert_identical(&oracle, &mixed, "mid-stream kernel switch");
}

//! Figures 7 and 8: error guarantees and space requirements.
//!
//! Paper setup: 1-d interval joins of uniform data over domains 16384-65536,
//! guarantee ε = 0.3 at 99% confidence (φ = 0.01). The sketch is sized by
//! Theorem 1 from the self-join sizes and an `E[Z]` sanity bound. Expected
//! shape (Figures 7-8): the *actual* relative error sits far below the
//! guaranteed 0.3, and the required space stays nearly flat as the dataset
//! grows (the object distribution, not the cardinality, drives it).
//!
//! Usage:
//!   cargo run --release -p spatial-bench --bin fig7_8 [-- --paper-scale]
//!     [--epsilon 0.3] [--phi 0.01] [--threads N]

use datagen::uniform_intervals;
use geometry::HyperRect;
use serde::Serialize;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, selfjoin, EndpointPolicy};
use spatial_bench::cli::Args;
use spatial_bench::report::{format_num, rel_error, write_json, Table};
use spatial_bench::runner::default_threads;

#[derive(Serialize)]
struct Record {
    epsilon: f64,
    phi: f64,
    sizes: Vec<usize>,
    domain_bits: Vec<u32>,
    actual_err: Vec<f64>,
    guaranteed: f64,
    dataset_words: Vec<f64>,
    instances: Vec<usize>,
    truths: Vec<u64>,
}

fn main() {
    let args = Args::parse(&["paper-scale"]).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let epsilon: f64 = args.get_or("epsilon", 0.3).expect("--epsilon");
    let phi: f64 = args.get_or("phi", 0.01).expect("--phi");
    let threads: usize = args
        .get_or("threads", default_threads())
        .expect("--threads");
    let paper = args.has("paper-scale");

    // Domain grows with the dataset, like the paper's 16384..65536 sweep.
    let points: Vec<(usize, u32)> = if paper {
        vec![(30_000, 14), (100_000, 14), (250_000, 15), (500_000, 16)]
    } else {
        vec![(10_000, 14), (25_000, 14), (50_000, 15), (100_000, 16)]
    };
    let guarantee = plan::Guarantee::new(epsilon, phi).expect("valid guarantee");

    println!("# FIG7/8 — guaranteed vs actual error, and space, for 1-d interval joins");
    let mut t7 = Table::new(
        format!("fig7: actual relative error vs dataset size (eps={epsilon}, phi={phi})"),
        &["size", "domain", "truth", "actual err", "guaranteed"],
    );
    let mut t8 = Table::new(
        "fig8: sketch space vs dataset size (words per dataset)",
        &[
            "size",
            "instances",
            "k1",
            "k2",
            "words/dataset",
            "dataset words (2N)",
        ],
    );
    let mut rec = Record {
        epsilon,
        phi,
        sizes: vec![],
        domain_bits: vec![],
        actual_err: vec![],
        guaranteed: epsilon,
        dataset_words: vec![],
        instances: vec![],
        truths: vec![],
    };

    for (i, &(n, bits)) in points.iter().enumerate() {
        let mean_len = ((1u64 << bits) as f64).sqrt();
        let r_iv = uniform_intervals(n, bits, mean_len, 400 + i as u64);
        let s_iv = uniform_intervals(n, bits, mean_len, 500 + i as u64);
        let r: Vec<HyperRect<1>> = r_iv.iter().map(|&iv| iv.into()).collect();
        let s: Vec<HyperRect<1>> = s_iv.iter().map(|&iv| iv.into()).collect();
        let truth = exact::interval_join_count(&r_iv, &s_iv);

        // Section 6.5 adaptive maxLevel on the tripled domain.
        let sketch_bits = bits + 2;
        let mean_extent = 3.0 * mean_len;
        let max_level = plan::adaptive_max_level(mean_extent, sketch_bits);
        let dims = [sketch::DimSpec::with_max_level(sketch_bits, max_level)];

        // Theorem 1 sizing from exact self-join sizes and a sanity bound of
        // half the true expectation (the paper: "use historic data ... to
        // predict future values of E[Z]").
        let sj_r =
            selfjoin::exact_self_join(&r, &dims, EndpointPolicy::Tripled, &sketch::ie_words::<1>())
                as f64;
        let sj_s = selfjoin::exact_self_join(
            &s,
            &dims,
            EndpointPolicy::TripledShrunk,
            &sketch::ie_words::<1>(),
        ) as f64;
        let ez_lower = 0.5 * truth as f64;
        let shape = plan::join_shape(guarantee, 1, sj_r, sj_s, ez_lower).expect("plan");

        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(900 + i as u64);
        let config = SketchConfig {
            kind: fourwise::XiKind::Bch,
            shape,
            max_level: Some(max_level),
        };
        let join = SpatialJoin::<1>::new(&mut rng, config, [bits], EndpointStrategy::Transform);
        let mut sk_r = join.new_sketch_r();
        let mut sk_s = join.new_sketch_s();
        par_insert_batch(&mut sk_r, &r, threads).expect("build R");
        par_insert_batch(&mut sk_s, &s, threads).expect("build S");
        let est = join.estimate(&sk_r, &sk_s).expect("estimate").value;
        let err = rel_error(est, truth as f64);
        let words = plan::dataset_words(1, shape.instances());

        t7.push_row(vec![
            n.to_string(),
            (1u64 << bits).to_string(),
            truth.to_string(),
            format_num(err),
            format_num(epsilon),
        ]);
        t8.push_row(vec![
            n.to_string(),
            shape.instances().to_string(),
            shape.k1.to_string(),
            shape.k2.to_string(),
            format_num(words),
            format_num(2.0 * n as f64),
        ]);
        rec.sizes.push(n);
        rec.domain_bits.push(bits);
        rec.actual_err.push(err);
        rec.dataset_words.push(words);
        rec.instances.push(shape.instances());
        rec.truths.push(truth);
        eprintln!(
            "  size {n} (2^{bits}): truth {truth}, err {err:.4} (<= {epsilon}), {} instances, {words:.0} words",
            shape.instances()
        );
    }

    t7.print();
    t8.print();
    t7.write_csv("fig7");
    t8.write_csv("fig8");
    let json = write_json("fig7_8", &rec);
    println!("wrote results CSVs and {}", json.display());
}

//! Simulated GIS datasets standing in for the paper's real-life inputs.
//!
//! The paper evaluates on three Wyoming map datasets at 1:10⁶ scale, obtained
//! privately from Sun et al.:
//!
//! * **LANDO** — land ownership/management, 33,860 objects;
//! * **LANDC** — land cover (vegetation types), 14,731 objects;
//! * **SOIL** — soils, 29,662 objects.
//!
//! The data itself is not redistributable, so this module generates
//! *synthetic stand-ins with the same cardinalities* and the statistical
//! features that matter to the estimators under study: spatially clustered
//! placement (polygon MBRs of a map are strongly correlated), long-tailed
//! extent distributions (a few huge parcels/regions, many small ones), and
//! near-full domain coverage. What drives relative estimator accuracy is
//! skew, extent mix and self-join size — all controlled here — not the exact
//! shapes of Wyoming's parcels. The substitution is recorded in DESIGN.md.

use crate::rng::{derive_seed, rng_for, sample_normal};
use crate::zipf::Zipf;
use geometry::{HyperRect, Interval};
use rand::Rng;

/// Parameters of a clustered map-like MBR generator.
#[derive(Debug, Clone)]
pub struct GisSpec {
    /// Number of objects.
    pub count: usize,
    /// Domain bits per dimension.
    pub domain_bits: u32,
    /// Number of spatial clusters.
    pub clusters: usize,
    /// Zipf exponent over cluster popularity.
    pub cluster_skew: f64,
    /// Cluster standard deviation as a fraction of the domain side.
    pub spread: f64,
    /// log-mean of object extent (natural log of cells).
    pub size_log_mean: f64,
    /// log-sigma of object extent.
    pub size_log_sigma: f64,
    /// Fraction of objects placed uniformly instead of in clusters
    /// (background noise).
    pub uniform_fraction: f64,
    /// Fraction of *elongated* objects (roads, rivers, pipelines): one long
    /// axis, one thin axis, random orientation. These high-aspect MBRs are
    /// what breaks uniformity-within-cell assumptions in real map data.
    pub elongated_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GisSpec {
    /// Generates the dataset deterministically.
    pub fn generate(&self) -> Vec<HyperRect<2>> {
        let n = 1u64 << self.domain_bits;
        let nf = n as f64;
        let mut rng = rng_for(self.seed);
        let mut centers = Vec::with_capacity(self.clusters);
        for _ in 0..self.clusters {
            centers.push((rng.gen_range(0..n) as f64, rng.gen_range(0..n) as f64));
        }
        let cluster_pick = Zipf::new(self.clusters.max(1), self.cluster_skew);
        let sigma = self.spread * nf;

        let mut out = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let (cx, cy) = if rng.gen::<f64>() < self.uniform_fraction {
                (rng.gen_range(0..n) as f64, rng.gen_range(0..n) as f64)
            } else {
                let c = centers[cluster_pick.sample(&mut rng)];
                (
                    c.0 + sigma * sample_normal(&mut rng),
                    c.1 + sigma * sample_normal(&mut rng),
                )
            };
            let (w, h) = if rng.gen::<f64>() < self.elongated_fraction {
                // Linear feature: long axis ~16x the typical extent, thin
                // axis a few cells; orientation uniform.
                let long = lognormal_extent(
                    &mut rng,
                    self.size_log_mean + 2.8,
                    self.size_log_sigma * 0.7,
                    n,
                );
                let thin = lognormal_extent(&mut rng, 1.0, 0.5, n);
                if rng.gen::<bool>() {
                    (long, thin)
                } else {
                    (thin, long)
                }
            } else {
                (
                    lognormal_extent(&mut rng, self.size_log_mean, self.size_log_sigma, n),
                    lognormal_extent(&mut rng, self.size_log_mean, self.size_log_sigma, n),
                )
            };
            out.push(HyperRect::new([
                centered_range(cx, w, n),
                centered_range(cy, h, n),
            ]));
        }
        out
    }
}

fn lognormal_extent(rng: &mut impl Rng, log_mean: f64, log_sigma: f64, n: u64) -> u64 {
    let v = (log_mean + log_sigma * sample_normal(rng)).exp();
    (v.round() as u64).clamp(1, n / 2)
}

fn centered_range(center: f64, extent: u64, n: u64) -> Interval {
    let half = (extent / 2) as f64;
    let lo = (center - half).round().clamp(0.0, (n - 2) as f64) as u64;
    let hi = (lo + extent).min(n - 1).max(lo + 1);
    Interval::new(lo, hi)
}

/// Domain bits the simulated Wyoming maps use (a 2^14 × 2^14 grid — about
/// the resolution of 1:10⁶ state maps quantized to 30 m cells).
pub const GIS_DOMAIN_BITS: u32 = 14;

/// Simulated **LANDO** (land ownership): 33,860 objects; many small parcels
/// in dense clusters (towns, subdivided land) plus a heavy tail of huge
/// federal/state tracts.
pub fn lando(seed: u64) -> Vec<HyperRect<2>> {
    GisSpec {
        count: 33_860,
        domain_bits: GIS_DOMAIN_BITS,
        clusters: 60,
        cluster_skew: 0.8,
        spread: 0.045,
        size_log_mean: 3.4, // median extent ~30 cells
        size_log_sigma: 1.5,
        uniform_fraction: 0.12,
        elongated_fraction: 0.15,
        seed: derive_seed(seed, "lando"),
    }
    .generate()
}

/// Simulated **LANDC** (land cover): 14,731 objects; fewer, larger regions
/// (vegetation zones) with moderate clustering.
pub fn landc(seed: u64) -> Vec<HyperRect<2>> {
    GisSpec {
        count: 14_731,
        domain_bits: GIS_DOMAIN_BITS,
        clusters: 25,
        cluster_skew: 0.5,
        spread: 0.09,
        size_log_mean: 4.6, // median extent ~100 cells
        size_log_sigma: 1.2,
        uniform_fraction: 0.2,
        elongated_fraction: 0.1,
        seed: derive_seed(seed, "landc"),
    }
    .generate()
}

/// Simulated **SOIL** (soil types): 29,662 objects; mid-size polygons tiling
/// most of the state, mild clustering along terrain features.
pub fn soil(seed: u64) -> Vec<HyperRect<2>> {
    GisSpec {
        count: 29_662,
        domain_bits: GIS_DOMAIN_BITS,
        clusters: 120,
        cluster_skew: 0.4,
        spread: 0.07,
        size_log_mean: 4.0, // median extent ~55 cells
        size_log_sigma: 0.9,
        uniform_fraction: 0.25,
        elongated_fraction: 0.08,
        seed: derive_seed(seed, "soil"),
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_paper() {
        assert_eq!(lando(1).len(), 33_860);
        assert_eq!(landc(1).len(), 14_731);
        assert_eq!(soil(1).len(), 29_662);
    }

    #[test]
    fn deterministic() {
        assert_eq!(lando(7), lando(7));
        assert_ne!(lando(7), lando(8));
    }

    #[test]
    fn objects_fit_domain_and_are_nondegenerate() {
        let n = 1u64 << GIS_DOMAIN_BITS;
        for data in [lando(3), landc(3), soil(3)] {
            for r in &data {
                for d in 0..2 {
                    assert!(r.range(d).hi() < n);
                    assert!(!r.range(d).is_degenerate());
                }
            }
        }
    }

    #[test]
    fn extent_distribution_is_long_tailed() {
        let data = lando(5);
        let mut widths: Vec<u64> = data.iter().map(|r| r.range(0).length()).collect();
        widths.sort_unstable();
        let median = widths[widths.len() / 2] as f64;
        let p99 = widths[widths.len() * 99 / 100] as f64;
        assert!(
            p99 > 8.0 * median,
            "LANDO extents should be long-tailed: median {median}, p99 {p99}"
        );
    }

    #[test]
    fn clustering_is_visible() {
        // Compare occupancy of coarse grid cells against a uniform layout:
        // clustered data must leave many more cells (nearly) empty.
        let data = lando(9);
        let n = 1u64 << GIS_DOMAIN_BITS;
        let g = 16u64;
        let cell = n / g;
        let mut counts = vec![0u64; (g * g) as usize];
        for r in &data {
            let cx = (r.range(0).lo() / cell).min(g - 1);
            let cy = (r.range(1).lo() / cell).min(g - 1);
            counts[(cy * g + cx) as usize] += 1;
        }
        let mean = data.len() as f64 / (g * g) as f64;
        let max = *counts.iter().max().expect("cells") as f64;
        assert!(
            max > 4.0 * mean,
            "clusters should create hot cells: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn joins_between_simulated_maps_are_nontrivial() {
        // The three maps must actually overlap each other for the join
        // experiments to make sense; check on a subsample.
        let a = lando(1);
        let b = soil(1);
        let sample_a = &a[..2000];
        let sample_b = &b[..2000];
        let mut hits = 0u64;
        for r in sample_a {
            for s in sample_b {
                if r.overlaps(s) {
                    hits += 1;
                }
            }
        }
        // Map-like selectivities are small (~1e-5); require the subsample to
        // produce a clearly nonzero join so full-size experiments have
        // thousands of result pairs.
        assert!(hits > 20, "simulated maps barely overlap: {hits}");
    }
}

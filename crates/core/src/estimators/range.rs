//! Range-query selectivity estimation (Section 6.4).
//!
//! A range query is a join with a singleton relation, but the paper's
//! optimized estimator stores only two atomic sketches per dimension pair —
//! `X_I` (whole intervals) and `X_U` (upper endpoints) — and evaluates the
//! query side *deterministically* at estimation time:
//!
//! ```text
//! Z = ξ̄[u,v] · X_U + ξ̄[v] · X_I          (Lemma 9, one dimension)
//! ```
//!
//! An interval `[a, b]` overlaps `q = [u, v]` iff (`b ∈ [u, v]`) xor
//! (`v ∈ [a, b]`) under Assumption 1; the two mutually exclusive events are
//! counted by the two terms. In d dimensions the per-dimension factor is
//! multiplied out over `{I, U}^d` (Section 6.4: "replace X_E with X_U").
//!
//! The module also provides *stabbing counts* (`#{r : p ∈ r}`, closed): the
//! all-`I` word paired with the query point's covers, which is exact without
//! any endpoint assumption.

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::{Comp, Word};
use crate::error::{Result, SketchError};
use crate::estimators::SketchConfig;
use crate::query::{
    MultiQueryPlan, PartialEstimate, PlanKey, QueryContext, QueryKernel, XiQueryPlan, XiWordTerm,
    PLAN_CLASS_MULTI, PLAN_CLASS_OVERLAP, PLAN_CLASS_STAB,
};
use crate::schema::{DimSpec, SketchSchema};
use dyadic::{interval_cover, point_cover};
use geometry::transform::{shrink_interval, triple};
use geometry::{HyperRect, Interval, Point};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// How the estimator deals with query/data endpoint coincidences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeStrategy {
    /// Raw domain; unbiased when the query shares no endpoint coordinate
    /// with the data (Assumption 1 between data and query).
    AssumeDistinct,
    /// Section 5.2 transform: data tripled, query shrunk at estimate time;
    /// unbiased for arbitrary queries.
    Transform,
}

/// One query of a multi-query batch: either an overlap range query
/// ([`RangeQuery::estimate_with`] semantics) or a stabbing count
/// ([`RangeQuery::estimate_stab_with`] semantics). Both classes reduce to
/// dyadic-cover sums over the same maintained sketch, so a mixed batch
/// shares one kernel sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchQuery<const D: usize> {
    /// Count objects whose intersection with the rect is full-dimensional.
    Range(HyperRect<D>),
    /// Count objects containing the point (closed containment).
    Stab(Point<D>),
}

/// Estimator for `|Q(q, R)|` (Definition 3) over one maintained sketch.
#[derive(Debug, Clone)]
pub struct RangeQuery<const D: usize> {
    schema: Arc<SketchSchema<D>>,
    words: Arc<Vec<Word<D>>>,
    strategy: RangeStrategy,
}

impl<const D: usize> RangeQuery<D> {
    /// Creates the estimator for data domains of `2^data_bits[i]` values.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        config: SketchConfig,
        data_bits: [u32; D],
        strategy: RangeStrategy,
    ) -> Self {
        let extra = match strategy {
            RangeStrategy::AssumeDistinct => 0,
            RangeStrategy::Transform => 2,
        };
        let dims: [DimSpec; D] = std::array::from_fn(|i| {
            let bits = data_bits[i] + extra;
            match config.max_level {
                Some(ml) => DimSpec::with_max_level(bits, ml),
                None => DimSpec::dyadic(bits),
            }
        });
        let schema = SketchSchema::new(rng, config.kind, config.shape, dims);
        // Words {I, U}^D in mask order (bit set = UpperPoint).
        let mut words = Vec::with_capacity(1 << D);
        for mask in 0..(1u32 << D) {
            let mut w = [Comp::Interval; D];
            for (i, c) in w.iter_mut().enumerate() {
                if mask >> i & 1 == 1 {
                    *c = Comp::UpperPoint;
                }
            }
            words.push(w);
        }
        Self {
            schema,
            words: Arc::new(words),
            strategy,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<SketchSchema<D>> {
        &self.schema
    }

    /// The strategy in use.
    pub fn strategy(&self) -> RangeStrategy {
        self.strategy
    }

    /// Creates the (single) maintained sketch over the data set.
    pub fn new_sketch(&self) -> SketchSet<D> {
        let policy = match self.strategy {
            RangeStrategy::AssumeDistinct => EndpointPolicy::Raw,
            RangeStrategy::Transform => EndpointPolicy::Tripled,
        };
        SketchSet::new(Arc::clone(&self.schema), Arc::clone(&self.words), policy)
    }

    fn check_sketch(&self, sketch: &SketchSet<D>) -> Result<()> {
        if sketch.schema().id() != self.schema.id() {
            return Err(SketchError::SchemaMismatch);
        }
        if **sketch.words() != *self.words {
            return Err(SketchError::WordMismatch);
        }
        Ok(())
    }

    /// Compiles the query side of an overlap estimate: per dimension the
    /// (possibly shrunk) interval cover (slot 0) and the upper-endpoint
    /// point cover (slot 1), node ids and GF cubes precomputed once and
    /// shared by every instance; one word term per maintained word.
    fn overlap_plan(&self, q: &HyperRect<D>) -> XiQueryPlan<D> {
        let mut plan = XiQueryPlan::<D>::default();
        for (dim, lists) in plan.lists.iter_mut().enumerate() {
            let geo: Interval = match self.strategy {
                RangeStrategy::AssumeDistinct => q.range(dim),
                RangeStrategy::Transform => {
                    shrink_interval(&q.range(dim)).expect("degenerate handled by caller")
                }
            };
            let dyadic = &self.schema.dyadic()[dim];
            let ctx = &self.schema.xi_ctx()[dim];
            let ml = self.schema.dims()[dim].max_level;
            lists.push(
                interval_cover(dyadic, &geo, ml)
                    .into_iter()
                    .map(|id| ctx.precompute(id))
                    .collect(),
            );
            lists.push(
                point_cover(dyadic, geo.hi(), ml)
                    .into_iter()
                    .map(|id| ctx.precompute(id))
                    .collect(),
            );
        }
        // Word bit set = UpperPoint sketch component, which pairs with the
        // query's *interval* value (slot 0); Interval components pair with
        // the query's upper-endpoint value (slot 1).
        plan.terms = (0..self.words.len())
            .map(|mask| XiWordTerm {
                word: mask,
                slots: std::array::from_fn(|dim| if mask >> dim & 1 == 1 { 0 } else { 1 }),
            })
            .collect();
        plan
    }

    /// Compiles the query side of a stabbing count: per dimension the stab
    /// point's cover; a single term on the all-`Interval` word (mask 0).
    fn stab_plan(&self, p: &Point<D>) -> XiQueryPlan<D> {
        let mut plan = XiQueryPlan::<D>::default();
        for (dim, lists) in plan.lists.iter_mut().enumerate() {
            let coord = match self.strategy {
                RangeStrategy::AssumeDistinct => p[dim],
                RangeStrategy::Transform => triple(p[dim]),
            };
            let dyadic = &self.schema.dyadic()[dim];
            let ctx = &self.schema.xi_ctx()[dim];
            let ml = self.schema.dims()[dim].max_level;
            lists.push(
                point_cover(dyadic, coord, ml)
                    .into_iter()
                    .map(|id| ctx.precompute(id))
                    .collect(),
            );
        }
        plan.terms = vec![XiWordTerm {
            word: 0, // mask 0 = Interval in every dim
            slots: [0; D],
        }];
        plan
    }

    /// Estimates `|Q(q, R)|`: the number of summarized objects whose
    /// intersection with `q` is full-dimensional.
    ///
    /// Degenerate queries select nothing under Definition 3 and return a
    /// zero estimate; use [`RangeQuery::estimate_stab`] for stabbing counts.
    ///
    /// Convenience form of [`RangeQuery::estimate_with`] that builds a
    /// throwaway [`QueryContext`]; serving loops should hold one context and
    /// reuse it across calls.
    pub fn estimate(&self, sketch: &SketchSet<D>, q: &HyperRect<D>) -> Result<Estimate> {
        self.estimate_with(&mut QueryContext::new(), sketch, q)
    }

    /// Validates an overlap query against the sketch's domain and returns
    /// its cache key; `Ok(None)` means the query is degenerate and selects
    /// nothing under Definition 3.
    fn overlap_key(&self, sketch: &SketchSet<D>, q: &HyperRect<D>) -> Result<Option<PlanKey>> {
        for dim in 0..D {
            let max = (1u64 << sketch.data_bits()[dim]) - 1;
            if q.range(dim).hi() > max {
                return Err(SketchError::DomainOverflow {
                    coord: q.range(dim).hi(),
                    max,
                    dim,
                });
            }
        }
        if q.is_degenerate() {
            return Ok(None);
        }
        // Plans depend only on (schema, query): repeated queries through the
        // same context skip cover compilation via the context's plan cache.
        let mut coords = Vec::with_capacity(2 * D);
        for dim in 0..D {
            coords.push(q.range(dim).lo());
            coords.push(q.range(dim).hi());
        }
        Ok(Some(PlanKey::new(
            self.schema.id(),
            PLAN_CLASS_OVERLAP,
            coords,
        )))
    }

    /// Validates an overlap query and compiles (or recalls) its plan;
    /// `None` means the query is degenerate and selects nothing.
    fn overlap_plan_for(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        q: &HyperRect<D>,
    ) -> Result<Option<std::sync::Arc<XiQueryPlan<D>>>> {
        self.check_sketch(sketch)?;
        match self.overlap_key(sketch, q)? {
            None => Ok(None),
            Some(key) => Ok(Some(ctx.plan_for(key, || self.overlap_plan(q)))),
        }
    }

    /// Estimates `|Q(q, R)|` using the caller's [`QueryContext`] (kernel
    /// choice + reused scratch).
    pub fn estimate_with(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        q: &HyperRect<D>,
    ) -> Result<Estimate> {
        match self.overlap_plan_for(ctx, sketch, q)? {
            None => Ok(ctx.zero_estimate(self.schema.shape())),
            Some(plan) => Ok(ctx.xi_estimate(&plan, sketch)),
        }
    }

    /// Like [`RangeQuery::estimate_with`] but returns the **unboosted**
    /// shard-mergeable partial grid (see [`PartialEstimate`] for the merge
    /// rules). A distributed deployment computes one partial per shard,
    /// sums them, and boosts once at the router.
    pub fn estimate_partial_with(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        q: &HyperRect<D>,
    ) -> Result<PartialEstimate> {
        match self.overlap_plan_for(ctx, sketch, q)? {
            None => Ok(ctx.zero_partial(self.schema.shape())),
            Some(plan) => Ok(ctx.xi_partial(&plan, sketch)),
        }
    }

    /// Estimates the stabbing count `#{r ∈ R : p ∈ r}` (closed containment;
    /// exact in expectation with no endpoint assumption).
    ///
    /// Convenience form of [`RangeQuery::estimate_stab_with`].
    pub fn estimate_stab(&self, sketch: &SketchSet<D>, p: &Point<D>) -> Result<Estimate> {
        self.estimate_stab_with(&mut QueryContext::new(), sketch, p)
    }

    /// Validates a stab query against the sketch's domain and returns its
    /// cache key.
    fn stab_key(&self, sketch: &SketchSet<D>, p: &Point<D>) -> Result<PlanKey> {
        for (dim, &coord) in p.iter().enumerate() {
            let max = (1u64 << sketch.data_bits()[dim]) - 1;
            if coord > max {
                return Err(SketchError::DomainOverflow { coord, max, dim });
            }
        }
        Ok(PlanKey::new(self.schema.id(), PLAN_CLASS_STAB, p.to_vec()))
    }

    /// Validates a stab query and compiles (or recalls) its plan.
    fn stab_plan_for(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        p: &Point<D>,
    ) -> Result<std::sync::Arc<XiQueryPlan<D>>> {
        self.check_sketch(sketch)?;
        let key = self.stab_key(sketch, p)?;
        Ok(ctx.plan_for(key, || self.stab_plan(p)))
    }

    /// Estimates the stabbing count using the caller's [`QueryContext`].
    pub fn estimate_stab_with(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        p: &Point<D>,
    ) -> Result<Estimate> {
        let plan = self.stab_plan_for(ctx, sketch, p)?;
        Ok(ctx.xi_estimate(&plan, sketch))
    }

    /// Like [`RangeQuery::estimate_stab_with`] but returns the unboosted
    /// shard-mergeable partial grid (see [`PartialEstimate`]).
    pub fn estimate_stab_partial_with(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        p: &Point<D>,
    ) -> Result<PartialEstimate> {
        let plan = self.stab_plan_for(ctx, sketch, p)?;
        Ok(ctx.xi_partial(&plan, sketch))
    }

    /// Answers a whole batch of range/stab queries in **one kernel sweep**
    /// over the sketch: the batch's unique queries are compiled (or
    /// recalled) and merged into a `MultiQueryPlan` whose per-dimension
    /// worklists deduplicate shared cover cells, so each unique cell pays
    /// one ξ evaluation per instance block and only a cheap carry-save fold
    /// per owning query. Every answer is **bit-identical** to the
    /// corresponding single-query call (`estimate_with` /
    /// `estimate_stab_with`) — exact `i64` lane sums make sharing free, and
    /// per-query f64 term order is preserved.
    ///
    /// Per-query failures (domain overflow) fail only that slot; degenerate
    /// rects yield zero estimates; duplicate queries are answered once and
    /// cloned. Batches on the scalar kernel — and batches with a single
    /// unique query — take the sequential per-query path, which doubles as
    /// the differential oracle.
    pub fn estimate_batch_with(
        &self,
        ctx: &mut QueryContext,
        sketch: &SketchSet<D>,
        queries: &[BatchQuery<D>],
    ) -> Vec<Result<Estimate>> {
        enum Outcome {
            Fail(SketchError),
            Zero,
            Unique(usize),
        }
        if queries.is_empty() {
            return Vec::new();
        }
        if let Err(e) = self.check_sketch(sketch) {
            return queries.iter().map(|_| Err(e.clone())).collect();
        }
        // Validate and deduplicate: identical queries (and a stab at the
        // same coordinates as a rect corner — distinct plan class) map to
        // one unique slot each.
        let mut outcomes: Vec<Outcome> = Vec::with_capacity(queries.len());
        let mut uniques: Vec<(PlanKey, BatchQuery<D>)> = Vec::new();
        let mut index: HashMap<PlanKey, usize> = HashMap::new();
        for q in queries {
            let key = match q {
                BatchQuery::Range(rect) => match self.overlap_key(sketch, rect) {
                    Err(e) => {
                        outcomes.push(Outcome::Fail(e));
                        continue;
                    }
                    Ok(None) => {
                        outcomes.push(Outcome::Zero);
                        continue;
                    }
                    Ok(Some(key)) => key,
                },
                BatchQuery::Stab(p) => match self.stab_key(sketch, p) {
                    Err(e) => {
                        outcomes.push(Outcome::Fail(e));
                        continue;
                    }
                    Ok(key) => key,
                },
            };
            let u = *index.entry(key.clone()).or_insert_with(|| {
                uniques.push((key, *q));
                uniques.len() - 1
            });
            outcomes.push(Outcome::Unique(u));
        }
        let kernel = ctx.kernel().resolve(self.schema.instances());
        let estimates: Vec<Estimate> = if kernel == QueryKernel::Scalar || uniques.len() <= 1 {
            // Sequential path: per-query plans and fills, exactly the
            // single-query code — the oracle the merged path must bit-match,
            // and the no-overhead path for batches of one.
            uniques
                .iter()
                .map(|(key, q)| {
                    let plan = match q {
                        BatchQuery::Range(rect) => {
                            ctx.plan_for(key.clone(), || self.overlap_plan(rect))
                        }
                        BatchQuery::Stab(p) => ctx.plan_for(key.clone(), || self.stab_plan(p)),
                    };
                    ctx.xi_estimate(&plan, sketch)
                })
                .collect()
        } else {
            // Merged path: one worklist sweep for all unique queries. The
            // merged plan is memoized under the batch's flattened signature
            // (class tag + coordinates per unique query, in batch order) —
            // a serving loop draining a recurring hot set compiles it once.
            let mut sig = Vec::with_capacity(uniques.len() * (1 + 2 * D));
            for (_, q) in &uniques {
                match q {
                    BatchQuery::Range(rect) => {
                        sig.push(u64::from(PLAN_CLASS_OVERLAP));
                        for dim in 0..D {
                            sig.push(rect.range(dim).lo());
                            sig.push(rect.range(dim).hi());
                        }
                    }
                    BatchQuery::Stab(p) => {
                        sig.push(u64::from(PLAN_CLASS_STAB));
                        sig.extend_from_slice(p);
                    }
                }
            }
            let mkey = PlanKey::new(self.schema.id(), PLAN_CLASS_MULTI, sig);
            let mplan = match ctx.multi_plan_lookup::<D>(&mkey) {
                Some(plan) => plan,
                None => {
                    let singles: Vec<Arc<XiQueryPlan<D>>> = uniques
                        .iter()
                        .map(|(key, q)| match q {
                            BatchQuery::Range(rect) => {
                                ctx.plan_for(key.clone(), || self.overlap_plan(rect))
                            }
                            BatchQuery::Stab(p) => ctx.plan_for(key.clone(), || self.stab_plan(p)),
                        })
                        .collect();
                    let merged = Arc::new(MultiQueryPlan::merge(&singles));
                    ctx.multi_plan_insert(mkey, Arc::clone(&merged));
                    merged
                }
            };
            ctx.multi_xi_estimate(&mplan, sketch)
        };
        outcomes
            .into_iter()
            .map(|o| match o {
                Outcome::Fail(e) => Err(e),
                Outcome::Zero => Ok(ctx.zero_estimate(self.schema.shape())),
                Outcome::Unique(u) => Ok(estimates[u].clone()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data_1d(seed: u64, n: usize, domain: u64) -> Vec<HyperRect<1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let lo = rng.gen_range(0..domain - 16);
                Interval::new(lo, lo + rng.gen_range(1..16u64)).into()
            })
            .collect()
    }

    /// Mean/SE over repeated estimation with fresh schemas (the query side
    /// is deterministic per schema, so unbiasedness must be measured across
    /// instances of one schema — row means of a wide flat schema work).
    fn flat_estimate<const D: usize>(
        rq: &RangeQuery<D>,
        sketch: &SketchSet<D>,
        q: &HyperRect<D>,
    ) -> (f64, f64) {
        let est = rq.estimate(sketch, q).unwrap();
        let n = est.row_means.len() as f64;
        let mean = est.row_means.iter().sum::<f64>() / n;
        let var = est
            .row_means
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    #[test]
    fn range_count_unbiased_transform() {
        let mut rng = StdRng::seed_from_u64(70);
        // k1 = 1 so each row mean is a raw instance: gives us SE over rows.
        let rq = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(1, 1500),
            [8],
            RangeStrategy::Transform,
        );
        let data = data_1d(3, 60, 256);
        let mut sk = rq.new_sketch();
        for r in &data {
            sk.insert(r).unwrap();
        }
        // Query sharing endpoints with data on purpose.
        let q: HyperRect<1> = data[5].range(0).into();
        let truth = exact::naive::range_count(&data, &q) as f64;
        assert!(truth > 0.0);
        let (mean, se) = flat_estimate(&rq, &sk, &q);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn range_count_2d_unbiased() {
        let mut rng = StdRng::seed_from_u64(71);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(1, 1200),
            [6, 6],
            RangeStrategy::Transform,
        );
        let mut data = Vec::new();
        let mut grng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let x = grng.gen_range(0..50u64);
            let y = grng.gen_range(0..50u64);
            data.push(rect2(
                x,
                x + grng.gen_range(1u64..10),
                y,
                y + grng.gen_range(1u64..10),
            ));
        }
        let mut sk = rq.new_sketch();
        for r in &data {
            sk.insert(r).unwrap();
        }
        let q = rect2(10, 30, 15, 40);
        let truth = exact::naive::range_count(&data, &q) as f64;
        assert!(truth > 0.0);
        let (mean, se) = flat_estimate(&rq, &sk, &q);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn stab_count_exact_in_expectation() {
        let mut rng = StdRng::seed_from_u64(72);
        let rq = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(1, 1500),
            [8],
            RangeStrategy::AssumeDistinct,
        );
        let data = data_1d(9, 50, 256);
        let mut sk = rq.new_sketch();
        for r in &data {
            sk.insert(r).unwrap();
        }
        // Stab at a data endpoint (shared coordinate) — closed semantics.
        let p = [data[7].range(0).lo()];
        let truth = data.iter().filter(|r| r.range(0).contains(p[0])).count() as f64;
        let est = rq.estimate_stab(&sk, &p).unwrap();
        let n = est.row_means.len() as f64;
        let mean = est.row_means.iter().sum::<f64>() / n;
        let var = est
            .row_means
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1.0);
        let se = (var / n).sqrt();
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn plan_cache_hits_match_cold_compiles() {
        let mut rng = StdRng::seed_from_u64(75);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let mut sk = rq.new_sketch();
        let mut grng = StdRng::seed_from_u64(76);
        for _ in 0..40 {
            let x = grng.gen_range(0..200u64);
            let y = grng.gen_range(0..200u64);
            sk.insert(&rect2(x, x + grng.gen_range(1..20u64), y, y + 9))
                .unwrap();
        }
        let q_a = rect2(10, 90, 20, 130);
        let q_b = rect2(11, 90, 20, 130); // differs in one coordinate
        let p = [40u64, 50u64];

        let mut ctx = QueryContext::new();
        let cold_a = rq.estimate_with(&mut ctx, &sk, &q_a).unwrap();
        let cold_b = rq.estimate_with(&mut ctx, &sk, &q_b).unwrap();
        let cold_p = rq.estimate_stab_with(&mut ctx, &sk, &p).unwrap();
        assert_eq!(ctx.plan_cache_stats(), (0, 3), "three distinct plans");

        // Repeats hit the cache and return bit-identical estimates.
        let warm_a = rq.estimate_with(&mut ctx, &sk, &q_a).unwrap();
        let warm_b = rq.estimate_with(&mut ctx, &sk, &q_b).unwrap();
        let warm_p = rq.estimate_stab_with(&mut ctx, &sk, &p).unwrap();
        assert_eq!(ctx.plan_cache_stats(), (3, 3));
        assert_eq!(cold_a.value.to_bits(), warm_a.value.to_bits());
        assert_eq!(cold_a.row_means, warm_a.row_means);
        assert_eq!(cold_b.value.to_bits(), warm_b.value.to_bits());
        assert_eq!(cold_p.value.to_bits(), warm_p.value.to_bits());
        // A fresh context (cold cache) still agrees with the cached path.
        let fresh = rq.estimate(&sk, &q_a).unwrap();
        assert_eq!(fresh.value.to_bits(), warm_a.value.to_bits());

        // A stab at the same coordinates as a rect corner is a different
        // plan class, never a false hit: q_a's plan stays untouched.
        let q_point_like = [q_a.range(0).lo(), q_a.range(1).lo()];
        let _ = rq.estimate_stab_with(&mut ctx, &sk, &q_point_like).unwrap();
        assert_eq!(ctx.plan_cache_stats(), (3, 4));
    }

    #[test]
    fn partial_estimates_boost_to_the_full_estimate() {
        let mut rng = StdRng::seed_from_u64(77);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(13, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let mut sk = rq.new_sketch();
        let mut grng = StdRng::seed_from_u64(78);
        let data: Vec<HyperRect<2>> = (0..50)
            .map(|_| {
                let x = grng.gen_range(0..200u64);
                let y = grng.gen_range(0..200u64);
                rect2(x, x + grng.gen_range(1..20u64), y, y + 9)
            })
            .collect();
        for r in &data {
            sk.insert(r).unwrap();
        }
        let q = rect2(20, 120, 10, 150);
        let p = [44u64, 91u64];
        let mut ctx = QueryContext::new();

        // One sketch: partial + boost is bit-identical to the direct path.
        let direct = rq.estimate_with(&mut ctx, &sk, &q).unwrap();
        let partial = rq.estimate_partial_with(&mut ctx, &sk, &q).unwrap();
        assert_eq!(partial.atomic().len(), rq.schema().instances());
        let boosted = partial.boost();
        assert_eq!(direct.value.to_bits(), boosted.value.to_bits());
        assert_eq!(direct.row_means, boosted.row_means);
        let direct_stab = rq.estimate_stab_with(&mut ctx, &sk, &p).unwrap();
        let stab = rq.estimate_stab_partial_with(&mut ctx, &sk, &p).unwrap();
        assert_eq!(direct_stab.value.to_bits(), stab.boost().value.to_bits());

        // Sharded: per-shard partials merged pre-boost agree with the full
        // sketch up to float-summation order (unbiased; not bit-pinned).
        let mut a = rq.new_sketch();
        let mut b = rq.new_sketch();
        for (i, r) in data.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.insert(r).unwrap();
        }
        let mut merged = rq.estimate_partial_with(&mut ctx, &a, &q).unwrap();
        merged
            .merge_from(&rq.estimate_partial_with(&mut ctx, &b, &q).unwrap())
            .unwrap();
        let merged = merged.boost();
        let tol = 1e-9 * (1.0 + direct.value.abs());
        assert!(
            (merged.value - direct.value).abs() <= tol,
            "merged {} vs direct {}",
            merged.value,
            direct.value
        );

        // Degenerate queries yield an all-zero partial of the right shape.
        let degenerate: HyperRect<2> = geometry::rect2(5, 5, 9, 9);
        let zero = rq
            .estimate_partial_with(&mut ctx, &sk, &degenerate)
            .unwrap();
        assert!(zero.atomic().iter().all(|&z| z == 0.0));
        assert_eq!(zero.boost().value, 0.0);

        // Mismatched shapes are rejected.
        let mut other_rng = StdRng::seed_from_u64(79);
        let other = RangeQuery::<2>::new(
            &mut other_rng,
            SketchConfig::new(5, 3),
            [8, 8],
            RangeStrategy::Transform,
        );
        let other_sk = other.new_sketch();
        let other_partial = other
            .estimate_partial_with(&mut ctx, &other_sk, &q)
            .unwrap();
        let mut broken = rq.estimate_partial_with(&mut ctx, &sk, &q).unwrap();
        assert!(broken.merge_from(&other_partial).is_err());
    }

    #[test]
    fn degenerate_query_returns_zero() {
        let mut rng = StdRng::seed_from_u64(73);
        let rq = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            RangeStrategy::Transform,
        );
        let mut sk = rq.new_sketch();
        sk.insert(&Interval::new(10, 50).into()).unwrap();
        let q: HyperRect<1> = Interval::point(20).into();
        let est = rq.estimate(&sk, &q).unwrap();
        assert_eq!(est.value, 0.0);
    }

    #[test]
    fn rejects_wrong_sketch_and_oob_query() {
        let mut rng = StdRng::seed_from_u64(74);
        let rq1 = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            RangeStrategy::AssumeDistinct,
        );
        let rq2 = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            RangeStrategy::AssumeDistinct,
        );
        let sk = rq1.new_sketch();
        assert!(matches!(
            rq2.estimate(&sk, &Interval::new(0, 5).into()),
            Err(SketchError::SchemaMismatch)
        ));
        assert!(matches!(
            rq1.estimate(&sk, &Interval::new(0, 500).into()),
            Err(SketchError::DomainOverflow { .. })
        ));
    }
}

//! The BCH construction of four-wise independent {-1, +1} families.
//!
//! This is exactly the construction referenced by Alon, Matias and Szegedy
//! and by the spatial-sketches paper (Section 2.2): for a domain of size
//! `2^k`, a seed of `2k + 1` bits defines the whole family
//!
//! ```text
//! xi_i = (-1) ^ ( b0  ⊕  <s1, i>  ⊕  <s3, i^3> )
//! ```
//!
//! where `<a, b>` is the GF(2) inner product (parity of `a & b`) and `i^3`
//! is computed in GF(2^k). Any four distinct columns of the matrix
//! `[1; i; i^3]` are linearly independent over GF(2) (this is the
//! parity-check matrix of a double-error-correcting BCH code, designed
//! distance 5), which gives exact four-wise independence.
//!
//! Generating one `xi_i` costs two field multiplications (for `i^3`) plus a
//! handful of word operations — linear in the seed size, as the paper states.
//! Crucially for sketches that maintain thousands of independent instances:
//! `i^3` depends only on `i`, **not** on the seed, so when many families over
//! the same domain evaluate the same index, the cube can be computed once and
//! shared (see [`BchFamily::xi_with_cube`]).

use crate::gf2::GfContext;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seed of a BCH four-wise independent family: `2k + 1` random bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BchSeed {
    /// Sign-flip bit.
    pub b0: bool,
    /// First-order mask (`k` bits).
    pub s1: u64,
    /// Third-order mask (`k` bits).
    pub s3: u64,
}

impl BchSeed {
    /// Draws a uniformly random seed for a domain of `2^k` values.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, k: u32) -> Self {
        let mask = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        Self {
            b0: rng.gen::<bool>(),
            s1: rng.gen::<u64>() & mask,
            s3: rng.gen::<u64>() & mask,
        }
    }

    /// Size of this seed in bits (`2k + 1`), the storage cost the paper
    /// attributes to one xi-family.
    pub fn bits(k: u32) -> u32 {
        2 * k + 1
    }
}

/// A concrete four-wise independent family over the domain `{0, .., 2^k - 1}`.
#[derive(Debug, Clone, Copy)]
pub struct BchFamily {
    seed: BchSeed,
    gf: GfContext,
}

impl BchFamily {
    /// Builds the family for domain size `2^k` from a seed.
    pub fn new(seed: BchSeed, gf: GfContext) -> Self {
        Self { seed, gf }
    }

    /// Builds the family with a fresh context for GF(2^k).
    pub fn from_seed(seed: BchSeed, k: u32) -> Self {
        Self::new(seed, GfContext::new(k))
    }

    /// The seed of this family.
    pub fn seed(&self) -> BchSeed {
        self.seed
    }

    /// The field context (shared across families over the same domain).
    pub fn context(&self) -> GfContext {
        self.gf
    }

    /// Evaluates `xi_i` as +1 or -1.
    #[inline]
    pub fn xi(&self, i: u64) -> i64 {
        debug_assert!(
            i < self.gf.order(),
            "index {i} outside domain 2^{}",
            self.gf.degree()
        );
        self.xi_with_cube(i, self.gf.cube(i))
    }

    /// Evaluates `xi_i` given a precomputed `cube = i^3` in GF(2^k).
    ///
    /// This is the hot path of sketch maintenance: `cube` is computed once
    /// per index per update and reused across all sketch instances.
    #[inline(always)]
    pub fn xi_with_cube(&self, i: u64, cube: u64) -> i64 {
        // parity(popcnt(s1 & i)) ^ parity(popcnt(s3 & i^3)) ^ b0
        // = parity(popcnt((s1 & i) ^ (s3 & i^3))) ^ b0
        let mixed = (self.seed.s1 & i) ^ (self.seed.s3 & cube);
        let bit = (mixed.count_ones() & 1) as u64 ^ self.seed.b0 as u64;
        1 - 2 * bit as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Enumerates all seeds for a small k and checks that the expectation of
    /// the product of any t <= 4 distinct variables is exactly zero — the
    /// defining property of four-wise independence for symmetric +-1
    /// variables.
    #[test]
    fn exhaustive_four_wise_independence_k3() {
        let k = 3u32;
        let gf = GfContext::new(k);
        let n = 1u64 << k;
        let seeds: Vec<BchSeed> = (0..2u64)
            .flat_map(|b0| {
                (0..n).flat_map(move |s1| {
                    (0..n).map(move |s3| BchSeed {
                        b0: b0 == 1,
                        s1,
                        s3,
                    })
                })
            })
            .collect();
        assert_eq!(seeds.len(), 1 << (2 * k + 1));

        // All index tuples of size 1..=4 with strictly increasing indices.
        let idx: Vec<u64> = (0..n).collect();
        let mut tuples: Vec<Vec<u64>> = Vec::new();
        for a in 0..idx.len() {
            tuples.push(vec![idx[a]]);
            for b in a + 1..idx.len() {
                tuples.push(vec![idx[a], idx[b]]);
                for c in b + 1..idx.len() {
                    tuples.push(vec![idx[a], idx[b], idx[c]]);
                    for d in c + 1..idx.len() {
                        tuples.push(vec![idx[a], idx[b], idx[c], idx[d]]);
                    }
                }
            }
        }

        for tuple in &tuples {
            let mut sum: i64 = 0;
            for seed in &seeds {
                let fam = BchFamily::new(*seed, gf);
                let mut prod = 1i64;
                for &i in tuple {
                    prod *= fam.xi(i);
                }
                sum += prod;
            }
            assert_eq!(sum, 0, "E[product over {tuple:?}] != 0");
        }
    }

    /// Each individual variable is exactly unbiased over the seed space.
    #[test]
    fn exhaustive_unbiased_k4() {
        let k = 4u32;
        let gf = GfContext::new(k);
        let n = 1u64 << k;
        for i in 0..n {
            let mut sum = 0i64;
            for b0 in 0..2u64 {
                for s1 in 0..n {
                    for s3 in 0..n {
                        let fam = BchFamily::new(
                            BchSeed {
                                b0: b0 == 1,
                                s1,
                                s3,
                            },
                            gf,
                        );
                        sum += fam.xi(i);
                    }
                }
            }
            assert_eq!(sum, 0, "E[xi_{i}] != 0");
        }
    }

    /// Pairwise independence consequence used throughout the paper:
    /// E[xi_i * xi_j] = [i == j]. Checked exhaustively over seeds for k=4.
    #[test]
    fn exhaustive_pairwise_orthogonality_k4() {
        let k = 4u32;
        let gf = GfContext::new(k);
        let n = 1u64 << k;
        let total_seeds = (2 * n * n) as i64;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0i64;
                for b0 in 0..2u64 {
                    for s1 in 0..n {
                        for s3 in 0..n {
                            let fam = BchFamily::new(
                                BchSeed {
                                    b0: b0 == 1,
                                    s1,
                                    s3,
                                },
                                gf,
                            );
                            sum += fam.xi(i) * fam.xi(j);
                        }
                    }
                }
                let expect = if i == j { total_seeds } else { 0 };
                assert_eq!(sum, expect, "E[xi_{i} xi_{j}]");
            }
        }
    }

    #[test]
    fn xi_with_cube_matches_xi() {
        let mut rng = StdRng::seed_from_u64(7);
        for k in [5u32, 12, 20, 33] {
            let gf = GfContext::new(k);
            let fam = BchFamily::new(BchSeed::random(&mut rng, k), gf);
            for _ in 0..200 {
                let i = rng.gen::<u64>() & (gf.order() - 1);
                assert_eq!(fam.xi(i), fam.xi_with_cube(i, gf.cube(i)));
            }
        }
    }

    #[test]
    fn values_are_plus_minus_one() {
        let mut rng = StdRng::seed_from_u64(99);
        let gf = GfContext::new(16);
        let fam = BchFamily::new(BchSeed::random(&mut rng, 16), gf);
        for i in 0..1000u64 {
            let v = fam.xi(i);
            assert!(v == 1 || v == -1);
        }
    }

    #[test]
    fn seed_bits_matches_paper() {
        // "for xi_i with i of length k bits, the seed has length 2k+1 bits"
        assert_eq!(BchSeed::bits(10), 21);
        assert_eq!(BchSeed::bits(32), 65);
    }

    #[test]
    fn empirical_balance_large_domain() {
        // Over a large domain a single family should be near-balanced.
        let mut rng = StdRng::seed_from_u64(3);
        let k = 20u32;
        let gf = GfContext::new(k);
        let fam = BchFamily::new(BchSeed::random(&mut rng, k), gf);
        let n = 1u64 << k;
        let mut sum = 0i64;
        for i in 0..n {
            sum += fam.xi(i);
        }
        // Exact balance is not guaranteed for one seed, but the sum should be
        // far below n (it concentrates around O(sqrt(n))).
        assert!(
            (sum.unsigned_abs()) < n / 8,
            "family badly unbalanced: {sum} of {n}"
        );
    }
}

//! Deterministic RNG derivation.
//!
//! Every generator in this crate is a pure function of a `u64` seed, so
//! experiments are reproducible run-to-run and dataset identities like
//! "LANDO" always denote the same multiset of rectangles.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the deterministic RNG for a seed.
pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a sub-seed from a parent seed and a label, so different
/// components of one experiment draw independent streams.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.rotate_left(17);
    for byte in label.as_bytes() {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // splitmix64 finalizer
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Standard normal sample via Box-Muller (rand's distributions live in the
/// separate `rand_distr` crate, which the dependency policy excludes).
pub fn sample_normal(rng: &mut impl rand::Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = rng_for(42);
        let mut b = rng_for(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_by_label_and_parent() {
        let s1 = derive_seed(7, "lando");
        let s2 = derive_seed(7, "landc");
        let s3 = derive_seed(8, "lando");
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1, derive_seed(7, "lando"));
    }

    #[test]
    fn normal_moments_sane() {
        let mut rng = rng_for(5);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = sample_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

//! Recursive-descent JSON parser producing `serde::Value` trees.

use serde::Value;

pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

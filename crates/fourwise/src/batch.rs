//! Bit-sliced multi-instance ξ evaluation: the core of the batched build
//! *and* query kernels.
//!
//! Sketch maintenance evaluates the *same* index against thousands of
//! independent family instances. The scalar path ([`XiFamily::xi_pre`])
//! dispatches per instance and pays a popcount each time. This module
//! transposes the problem: the seeds of up to `L::LANES` instances are
//! packed into *bit planes* (`plane[b]` holds bit `b` of every lane's seed),
//! so one index is evaluated for the whole block with one lane-wise XOR per
//! set bit of the index — `O(k)` word operations for a full block instead of
//! `O(k)` per instance.
//!
//! Everything here is generic over the [`Lane`] word: the portable `u64`
//! width (64 instances per block, [`BLOCK_LANES`]) is the default and the
//! differential oracle; the [`WideLane`] width (`[u64; 4]`, 256 instances
//! per block) runs the identical algorithms with four-word lane-wise
//! operations that LLVM autovectorizes. Both produce bit-identical per-lane
//! sums — lane width only changes how many instances share one pass.
//!
//! For the BCH family the sign of lane `j` is
//! `b0_j ⊕ <s1_j, i> ⊕ <s3_j, i³>`; XOR-ing the `s1` plane of every set bit
//! of `i` and the `s3` plane of every set bit of `i³` computes all lanes'
//! inner products simultaneously (the classic bit-slicing of GF(2) linear
//! forms). The polynomial family is not linear over GF(2), so its block
//! falls back to per-lane Horner evaluation behind the same interface — the
//! batched kernel stays construction-agnostic and bit-identical either way.
//!
//! Component sums over dyadic covers use [`LaneCounter`], a carry-save adder
//! network over sign masks: per cover node the block mask is folded into
//! vertical counter planes (two lane-wise ops per occupied plane), and
//! per-lane sums are extracted once at the end. Summing a ±1 mask `m` over
//! `n` nodes is `n - 2·ones(lane)`, exactly the integer sum the scalar
//! oracle computes.

use crate::family::{IndexPre, XiContext, XiKind, XiSeed};
use crate::lane::{Lane, WideLane};
use crate::poly::PolyFamily;

#[cfg(doc)]
use crate::family::XiFamily;

/// Instances per block at the default (`u64`) lane width.
pub const BLOCK_LANES: usize = 64;

/// Instances per block at the wide ([`WideLane`]) width.
pub const WIDE_LANES: usize = WideLane::LANES;

/// Upper bound on the number of masks a [`LaneCounter`] can absorb
/// (`2^PLANES - 1`). Dyadic covers have at most `2·bits ≤ 126` nodes, within
/// bounds for every supported domain.
const PLANES: usize = 8;

/// Packed seeds of up to `L::LANES` BCH family instances over one domain,
/// stored as bit planes for one-pass block evaluation.
#[derive(Debug, Clone)]
pub struct BchBlock<L: Lane = u64> {
    lanes: u32,
    /// Lane `j` holds seed `j`'s sign-flip bit.
    b0: L,
    /// `s1[b]` lane `j` = bit `b` of seed `j`'s first-order mask.
    s1: Box<[L]>,
    /// `s3[b]` lane `j` = bit `b` of seed `j`'s third-order mask.
    s3: Box<[L]>,
}

impl<L: Lane> BchBlock<L> {
    fn pack(seeds: impl Iterator<Item = crate::bch::BchSeed>, k: u32) -> Self {
        let mut b0 = L::zero();
        let mut s1 = vec![L::zero(); k as usize].into_boxed_slice();
        let mut s3 = vec![L::zero(); k as usize].into_boxed_slice();
        let mut lanes = 0u32;
        for (j, seed) in seeds.enumerate() {
            assert!(j < L::LANES, "xi block holds at most {} seeds", L::LANES);
            if seed.b0 {
                b0.set_bit(j);
            }
            for (b, plane) in s1.iter_mut().enumerate() {
                if (seed.s1 >> b) & 1 == 1 {
                    plane.set_bit(j);
                }
            }
            for (b, plane) in s3.iter_mut().enumerate() {
                if (seed.s3 >> b) & 1 == 1 {
                    plane.set_bit(j);
                }
            }
            lanes += 1;
        }
        Self { lanes, b0, s1, s3 }
    }

    /// Sign mask of the block at one index: lane `j`'s bit set ⇔ lane `j`'s
    /// `xi = -1`. Bits at or above the block's lane count are unspecified.
    #[inline]
    pub fn eval_mask(&self, pre: IndexPre) -> L {
        let mut acc = self.b0;
        let mut i = pre.index;
        while i != 0 {
            acc.xor_assign(&self.s1[i.trailing_zeros() as usize]);
            i &= i - 1;
        }
        let mut c = pre.cube;
        while c != 0 {
            acc.xor_assign(&self.s3[c.trailing_zeros() as usize]);
            c &= c - 1;
        }
        acc
    }

    fn lanes(&self) -> usize {
        self.lanes as usize
    }
}

/// Block of polynomial family instances. The construction is not GF(2)-linear
/// so lanes evaluate individually, packed into the same mask interface.
#[derive(Debug, Clone)]
pub struct PolyBlock {
    fams: Vec<PolyFamily>,
}

impl PolyBlock {
    /// Sign mask at one index (see [`BchBlock::eval_mask`]).
    #[inline]
    pub fn eval_mask<L: Lane>(&self, pre: IndexPre) -> L {
        let mut mask = L::zero();
        for (j, fam) in self.fams.iter().enumerate() {
            if fam.xi(pre.index) < 0 {
                mask.set_bit(j);
            }
        }
        mask
    }
}

/// Packed evaluation block for up to `L::LANES` family instances.
///
/// The block analogue of [`XiFamily`]: built once per (schema, dimension,
/// instance block) and reused for every update. Generic over the [`Lane`]
/// width; `XiBlock` without parameters is the portable 64-lane block.
#[derive(Debug, Clone)]
pub enum XiBlock<L: Lane = u64> {
    /// Bit-sliced BCH block.
    Bch(BchBlock<L>),
    /// Per-lane polynomial block.
    Poly(PolyBlock),
}

impl<L: Lane> XiBlock<L> {
    /// Packs a block from per-instance seeds drawn for `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, holds more than `L::LANES` entries, or
    /// any seed kind does not match the context kind.
    pub fn pack(ctx: &XiContext, seeds: &[XiSeed]) -> Self {
        assert!(
            !seeds.is_empty() && seeds.len() <= L::LANES,
            "xi blocks hold 1..={} seeds, got {}",
            L::LANES,
            seeds.len()
        );
        match ctx.kind() {
            XiKind::Bch => XiBlock::Bch(BchBlock::pack(
                seeds.iter().map(|s| match s {
                    XiSeed::Bch(b) => *b,
                    XiSeed::Poly(_) => panic!("xi seed kind does not match context kind"),
                }),
                ctx.bits(),
            )),
            XiKind::Poly => XiBlock::Poly(PolyBlock {
                fams: seeds
                    .iter()
                    .map(|s| match s {
                        XiSeed::Poly(p) => PolyFamily::new(*p),
                        XiSeed::Bch(_) => panic!("xi seed kind does not match context kind"),
                    })
                    .collect(),
            }),
        }
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        match self {
            XiBlock::Bch(b) => b.lanes(),
            XiBlock::Poly(p) => p.fams.len(),
        }
    }

    /// Sign mask of the whole block at one index: lane `j`'s bit set ⇔ lane
    /// `j`'s `xi_i = -1`. Bits at or above [`XiBlock::lanes`] are
    /// unspecified.
    #[inline]
    pub fn eval_mask(&self, pre: IndexPre) -> L {
        match self {
            XiBlock::Bch(b) => b.eval_mask(pre),
            XiBlock::Poly(p) => p.eval_mask(pre),
        }
    }

    /// Per-lane `Σ xi` over a precomputed index list — the block analogue of
    /// [`XiFamily::sum_pre`]. Writes `out[j]` for every occupied lane `j`
    /// (`out` must hold at least [`XiBlock::lanes`] entries); `counter` is
    /// cleared and reused as carry-save scratch. Lists longer than
    /// [`LaneCounter::CAPACITY`] are folded in chunks.
    #[inline]
    pub fn sum_pre_into(&self, pres: &[IndexPre], counter: &mut LaneCounter<L>, out: &mut [i64]) {
        let out = &mut out[..self.lanes()];
        let mut chunks = pres.chunks(LaneCounter::<L>::CAPACITY as usize);
        // First chunk writes, later chunks accumulate; covers are far below
        // capacity, so the hot path is exactly one write pass.
        let first = chunks.next().unwrap_or(&[]);
        counter.clear();
        for p in first {
            counter.add_mask(self.eval_mask(*p));
        }
        counter.signed_sums_into(out);
        for chunk in chunks {
            counter.clear();
            for p in chunk {
                counter.add_mask(self.eval_mask(*p));
            }
            counter.signed_sums_accum(out);
        }
    }
}

/// Reusable query-side block-evaluation scratch: one [`LaneCounter`] plus a
/// bank of per-lane sum buffers ("slots").
///
/// Estimation evaluates *several* index lists against the same instance
/// block — one per (dimension, cover-list) pair of the query — and needs all
/// the per-lane sums alive at once to form word products. A `BlockSums`
/// holds them side by side so the whole query side of a block is evaluated
/// with zero allocation after the first use.
#[derive(Debug, Clone)]
pub struct BlockSums<L: Lane = u64> {
    counter: LaneCounter<L>,
    /// Slot `s` occupies `sums[s*L::LANES..(s+1)*L::LANES]`.
    sums: Vec<i64>,
}

impl<L: Lane> Default for BlockSums<L> {
    fn default() -> Self {
        Self {
            counter: LaneCounter::new(),
            sums: Vec::new(),
        }
    }
}

impl<L: Lane> BlockSums<L> {
    /// Fresh scratch with no slots; call [`BlockSums::reserve_slots`] or let
    /// [`BlockSums::eval_into`] grow it on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures at least `slots` per-lane buffers exist (grow-only).
    pub fn reserve_slots(&mut self, slots: usize) {
        if self.sums.len() < slots * L::LANES {
            self.sums.resize(slots * L::LANES, 0);
        }
    }

    /// Number of available slots.
    pub fn slots(&self) -> usize {
        self.sums.len() / L::LANES
    }

    /// Evaluates per-lane `Σ xi` of `block` over `pres` into slot `slot`
    /// (the block analogue of [`XiFamily::sum_pre`], see
    /// [`XiBlock::sum_pre_into`]). Grows the slot bank as needed.
    #[inline]
    pub fn eval_into(&mut self, slot: usize, block: &XiBlock<L>, pres: &[IndexPre]) {
        self.reserve_slots(slot + 1);
        let buf = &mut self.sums[slot * L::LANES..(slot + 1) * L::LANES];
        block.sum_pre_into(pres, &mut self.counter, buf);
    }

    /// The per-lane sums of slot `slot`; entries at or above the evaluated
    /// block's lane count are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never evaluated or reserved.
    #[inline]
    pub fn lane_sums(&self, slot: usize) -> &[i64] {
        &self.sums[slot * L::LANES..(slot + 1) * L::LANES]
    }
}

/// Vertical (bit-sliced) per-lane counter: accumulates sign masks with a
/// carry-save adder network and extracts per-lane ±1 sums at the end.
#[derive(Debug, Clone)]
pub struct LaneCounter<L: Lane = u64> {
    /// `planes[p]` lane `j` = bit `p` of lane `j`'s count of set masks.
    planes: [L; PLANES],
    added: u32,
}

impl<L: Lane> Default for LaneCounter<L> {
    fn default() -> Self {
        Self {
            planes: [L::zero(); PLANES],
            added: 0,
        }
    }
}

impl<L: Lane> LaneCounter<L> {
    /// Most masks one counter can absorb between clears.
    pub const CAPACITY: u32 = (1 << PLANES) - 1;

    /// Fresh all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the all-zero state.
    #[inline]
    pub fn clear(&mut self) {
        self.planes = [L::zero(); PLANES];
        self.added = 0;
    }

    /// Number of masks absorbed since the last clear.
    pub fn len(&self) -> u32 {
        self.added
    }

    /// Whether no masks have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.added == 0
    }

    /// Folds one sign mask into the per-lane counts (ripple-carry over the
    /// occupied planes; amortized ~2 lane-wise ops per mask).
    ///
    /// # Panics
    ///
    /// Panics past [`LaneCounter::CAPACITY`] masks — a silent wrap would
    /// corrupt every lane's count, so the limit is enforced in release
    /// builds too (the predictable branch costs ~1 cycle per mask).
    #[inline]
    pub fn add_mask(&mut self, mask: L) {
        assert!(
            self.added < Self::CAPACITY,
            "LaneCounter overflow: more than {} masks",
            Self::CAPACITY
        );
        let mut carry = mask;
        for plane in &mut self.planes {
            if carry.is_zero() {
                break;
            }
            let t = plane.and(&carry);
            plane.xor_assign(&carry);
            carry = t;
        }
        self.added += 1;
    }

    /// Count of set mask bits seen by one lane.
    #[inline]
    pub fn count(&self, lane: usize) -> u32 {
        let mut c = 0u32;
        for (p, plane) in self.planes.iter().enumerate() {
            c += (plane.bit(lane) as u32) << p;
        }
        c
    }

    /// Writes, per lane, the signed sum `Σ (1 - 2·bit) = added - 2·count`
    /// (interpreting each absorbed mask bit as a ±1 value, set ⇒ −1).
    #[inline]
    pub fn signed_sums_into(&self, out: &mut [i64]) {
        self.signed_sums(out, false)
    }

    /// Like [`LaneCounter::signed_sums_into`] but adds into `out` instead of
    /// overwriting (used to fold capacity-sized chunks of longer lists).
    #[inline]
    pub fn signed_sums_accum(&self, out: &mut [i64]) {
        self.signed_sums(out, true)
    }

    #[inline]
    fn signed_sums(&self, out: &mut [i64], accumulate: bool) {
        debug_assert!(out.len() <= L::LANES);
        let n = self.added as i64;
        // Walk backing words in the outer loop so the inner extraction runs
        // on plain u64 shifts regardless of the lane width. Within a word,
        // the 8 vertical counter planes transpose to one count *byte* per
        // lane (8×8 bit-matrix transpose, 8 lanes at a time) — a handful of
        // word ops per 8 lanes instead of one plane walk per lane. Counts
        // fit a byte exactly because CAPACITY = 2^PLANES - 1 = 255.
        for (w, word_out) in out.chunks_mut(64).enumerate() {
            let planes: [u64; PLANES] = std::array::from_fn(|p| self.planes[p].word(w));
            for (g, group) in word_out.chunks_mut(8).enumerate() {
                let mut x = 0u64;
                for (p, plane) in planes.iter().enumerate() {
                    x |= ((plane >> (8 * g)) & 0xFF) << (8 * p);
                }
                let t = transpose8(x);
                for (i, slot) in group.iter_mut().enumerate() {
                    let c = (t >> (8 * i)) & 0xFF;
                    let sum = n - 2 * c as i64;
                    *slot = if accumulate { *slot + sum } else { sum };
                }
            }
        }
    }
}

/// Transposes an 8×8 bit matrix held row-major in a `u64` (byte `r` = row
/// `r`, bit `c` of it = element `(r, c)`) — Hacker's Delight §7-3. Used to
/// turn 8 vertical counter-plane bytes into 8 per-lane count bytes.
#[inline(always)]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::XiFamily;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    fn random_block(kind: XiKind, k: u32, lanes: usize, seed: u64) -> (XiContext, Vec<XiSeed>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = XiContext::new(kind, k);
        let seeds: Vec<XiSeed> = (0..lanes).map(|_| ctx.random_seed(&mut rng)).collect();
        (ctx, seeds)
    }

    fn eval_mask_matches_scalar_families_at<L: Lane>() {
        for kind in [XiKind::Bch, XiKind::Poly] {
            for lanes in [1usize, 7, L::LANES] {
                let (ctx, seeds) = random_block(kind, 12, lanes, 31 + lanes as u64);
                let block = XiBlock::<L>::pack(&ctx, &seeds);
                assert_eq!(block.lanes(), lanes);
                let fams: Vec<XiFamily> = seeds.iter().map(|&s| ctx.family(s)).collect();
                for i in [0u64, 1, 2, 77, 4095] {
                    let pre = ctx.precompute(i);
                    let mask = block.eval_mask(pre);
                    for (j, fam) in fams.iter().enumerate() {
                        let expect = fam.xi_pre(pre);
                        let got = 1 - 2 * mask.bit(j) as i64;
                        assert_eq!(got, expect, "{kind:?} lane {j} index {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn eval_mask_matches_scalar_families() {
        eval_mask_matches_scalar_families_at::<u64>();
        eval_mask_matches_scalar_families_at::<WideLane>();
    }

    fn sum_pre_into_matches_scalar_sum_at<L: Lane>() {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in [XiKind::Bch, XiKind::Poly] {
            // 100 stays within one LaneCounter chunk; 1000 forces the
            // multi-chunk accumulation path.
            for n in [100usize, 1000] {
                let (ctx, seeds) = random_block(kind, 10, L::LANES, 77);
                let block = XiBlock::<L>::pack(&ctx, &seeds);
                let pres: Vec<IndexPre> = (0..n)
                    .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
                    .collect();
                let mut counter = LaneCounter::<L>::new();
                let mut sums = vec![0i64; L::LANES];
                block.sum_pre_into(&pres, &mut counter, &mut sums);
                for (j, &seed) in seeds.iter().enumerate() {
                    let fam = ctx.family(seed);
                    assert_eq!(sums[j], fam.sum_pre(&pres), "{kind:?} n={n} lane {j}");
                }
            }
        }
    }

    #[test]
    fn sum_pre_into_matches_scalar_sum() {
        sum_pre_into_matches_scalar_sum_at::<u64>();
        sum_pre_into_matches_scalar_sum_at::<WideLane>();
    }

    #[test]
    fn wide_and_narrow_blocks_agree_lane_for_lane() {
        // The same 256 seeds packed as one wide block and four narrow blocks
        // must produce identical per-lane sums — the oracle chain the
        // differential suites lean on.
        let mut rng = StdRng::seed_from_u64(91);
        for kind in [XiKind::Bch, XiKind::Poly] {
            let (ctx, seeds) = random_block(kind, 11, WIDE_LANES, 92);
            let wide = XiBlock::<WideLane>::pack(&ctx, &seeds);
            let pres: Vec<IndexPre> = (0..120)
                .map(|_| ctx.precompute(rng.gen_range(0..2048u64)))
                .collect();
            let mut wide_counter = LaneCounter::<WideLane>::new();
            let mut wide_sums = vec![0i64; WIDE_LANES];
            wide.sum_pre_into(&pres, &mut wide_counter, &mut wide_sums);
            let mut counter = LaneCounter::<u64>::new();
            let mut sums = [0i64; BLOCK_LANES];
            for (b, chunk) in seeds.chunks(BLOCK_LANES).enumerate() {
                let narrow = XiBlock::<u64>::pack(&ctx, chunk);
                narrow.sum_pre_into(&pres, &mut counter, &mut sums);
                assert_eq!(
                    &wide_sums[b * BLOCK_LANES..(b + 1) * BLOCK_LANES],
                    &sums[..],
                    "{kind:?} block {b}"
                );
            }
        }
    }

    #[test]
    fn sum_pre_into_empty_list_is_zero() {
        let (ctx, seeds) = random_block(XiKind::Bch, 8, 3, 11);
        let block = XiBlock::<u64>::pack(&ctx, &seeds);
        let mut counter = LaneCounter::new();
        let mut sums = [7i64; BLOCK_LANES];
        block.sum_pre_into(&[], &mut counter, &mut sums);
        assert_eq!(&sums[..3], &[0, 0, 0]);
    }

    fn block_sums_holds_independent_slots_at<L: Lane>() {
        let mut rng = StdRng::seed_from_u64(6);
        let (ctx, seeds) = random_block(XiKind::Bch, 10, L::LANES, 78);
        let block = XiBlock::<L>::pack(&ctx, &seeds);
        let list_a: Vec<IndexPre> = (0..40u64)
            .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
            .collect();
        let list_b: Vec<IndexPre> = (0..7u64)
            .map(|_| ctx.precompute(rng.gen_range(0..1024u64)))
            .collect();
        let mut sums = BlockSums::<L>::new();
        assert_eq!(sums.slots(), 0);
        sums.eval_into(0, &block, &list_a);
        sums.eval_into(1, &block, &list_b);
        assert!(sums.slots() >= 2);
        // Both slots stay valid side by side and match the scalar families.
        for (j, &seed) in seeds.iter().enumerate() {
            let fam = ctx.family(seed);
            assert_eq!(
                sums.lane_sums(0)[j],
                fam.sum_pre(&list_a),
                "slot 0 lane {j}"
            );
            assert_eq!(
                sums.lane_sums(1)[j],
                fam.sum_pre(&list_b),
                "slot 1 lane {j}"
            );
        }
        // Re-evaluating a slot overwrites it without disturbing the other.
        sums.eval_into(0, &block, &list_b);
        for (j, &seed) in seeds.iter().enumerate() {
            let fam = ctx.family(seed);
            assert_eq!(sums.lane_sums(0)[j], fam.sum_pre(&list_b));
            assert_eq!(sums.lane_sums(1)[j], fam.sum_pre(&list_b));
        }
    }

    #[test]
    fn block_sums_holds_independent_slots() {
        block_sums_holds_independent_slots_at::<u64>();
        block_sums_holds_independent_slots_at::<WideLane>();
    }

    #[test]
    fn lane_counter_counts_and_sums() {
        let mut c = LaneCounter::<u64>::new();
        // Lane 0 sees 5 set bits, lane 1 sees 2, lane 63 sees 0, of 5 masks.
        let masks = [0b01u64, 0b11, 0b01, 0b11, 0b01];
        for m in masks {
            c.add_mask(m);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.count(0), 5);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(63), 0);
        let mut sums = [0i64; 64];
        c.signed_sums_into(&mut sums);
        assert_eq!(sums[0], -5); // five -1s
        assert_eq!(sums[1], 1); // two -1s, three +1s
        assert_eq!(sums[63], 5); // five +1s
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn wide_lane_counter_counts_across_words() {
        let mut c = LaneCounter::<WideLane>::new();
        // Lanes 0, 70 and 255 live in different backing words.
        let mut m = WideLane::zero();
        m.set_bit(0);
        m.set_bit(70);
        m.set_bit(255);
        for _ in 0..3 {
            c.add_mask(m);
        }
        let mut single = WideLane::zero();
        single.set_bit(70);
        c.add_mask(single);
        assert_eq!(c.count(0), 3);
        assert_eq!(c.count(70), 4);
        assert_eq!(c.count(255), 3);
        assert_eq!(c.count(128), 0);
        let mut sums = vec![0i64; WIDE_LANES];
        c.signed_sums_into(&mut sums);
        assert_eq!(sums[0], 4 - 2 * 3);
        assert_eq!(sums[70], 4 - 2 * 4);
        assert_eq!(sums[255], 4 - 2 * 3);
        assert_eq!(sums[128], 4);
    }

    #[test]
    fn lane_counter_near_capacity() {
        // Covers can reach ~126 nodes; exercise counts well past 64.
        let mut c = LaneCounter::<u64>::new();
        for _ in 0..200 {
            c.add_mask(u64::MAX);
        }
        for lane in [0usize, 31, 63] {
            assert_eq!(c.count(lane), 200);
        }
        let mut sums = [0i64; 1];
        c.signed_sums_into(&mut sums);
        assert_eq!(sums[0], -200);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn pack_rejects_mismatched_seed_kind() {
        let mut rng = StdRng::seed_from_u64(9);
        let poly_ctx = XiContext::new(XiKind::Poly, 8);
        let seed = poly_ctx.random_seed(&mut rng);
        let bch_ctx = XiContext::new(XiKind::Bch, 8);
        let _ = XiBlock::<u64>::pack(&bch_ctx, &[seed]);
    }

    #[test]
    #[should_panic(expected = "1..=64 seeds")]
    fn pack_rejects_oversized_block() {
        let mut rng = StdRng::seed_from_u64(10);
        let ctx = XiContext::new(XiKind::Bch, 8);
        let seeds: Vec<XiSeed> = (0..65).map(|_| ctx.random_seed(&mut rng)).collect();
        let _ = XiBlock::<u64>::pack(&ctx, &seeds);
    }

    #[test]
    #[should_panic(expected = "1..=256 seeds")]
    fn pack_rejects_oversized_wide_block() {
        let mut rng = StdRng::seed_from_u64(10);
        let ctx = XiContext::new(XiKind::Bch, 8);
        let seeds: Vec<XiSeed> = (0..257).map(|_| ctx.random_seed(&mut rng)).collect();
        let _ = XiBlock::<WideLane>::pack(&ctx, &seeds);
    }
}

//! Shared experiment machinery for the figure harnesses.

use crate::report::rel_error;
use geometry::HyperRect;
use histograms::{EulerHistogram, GeometricHistogram, GridSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch::estimators::joins::{EndpointStrategy, SpatialJoin};
use sketch::estimators::SketchConfig;
use sketch::{par_insert_batch, plan, BoostShape};

/// Worker threads used for parallel sketch building.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(8)
}

/// Splits a per-dataset word budget into a boosting grid: `k2` fixed at a
/// small odd median count (the paper's experiments hold confidence fixed and
/// spend extra memory on averaging), `k1` takes the rest.
pub fn shape_for_words(d: u32, words: f64) -> BoostShape {
    let instances = plan::instances_for_dataset_words(d, words).max(1);
    let k2 = 5usize.min(instances);
    let k2 = if k2.is_multiple_of(2) {
        k2.max(1) - 1
    } else {
        k2
    }
    .max(1);
    let k1 = (instances / k2).max(1);
    BoostShape::new(k1, k2)
}

/// Typical object extent in *sketch* coordinates for the transformed join
/// (tripled domain), feeding the Section 6.5 adaptive `maxLevel` choice.
///
/// Uses the **geometric** mean of per-dimension extents: real map data mixes
/// compact parcels with elongated features (roads, rivers) whose huge long
/// axes would drag an arithmetic mean — and with it the truncation level —
/// far above what the bulk of the endpoint mass wants.
pub fn mean_sketch_extent<const D: usize>(datasets: &[&[HyperRect<D>]]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for data in datasets {
        for r in data.iter() {
            for d in 0..D {
                log_sum += (3.0 * r.range(d).length().max(1) as f64).log2();
                n += 1;
            }
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp2()
    }
}

/// One SKETCH run: builds both sketches with a fresh schema (with the
/// Section 6.5 adaptive `maxLevel`) and returns the join estimate.
pub fn sketch_join_estimate_2d(
    r: &[HyperRect<2>],
    s: &[HyperRect<2>],
    data_bits: u32,
    shape: BoostShape,
    seed: u64,
    threads: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_level = plan::adaptive_max_level(mean_sketch_extent(&[r, s]), data_bits + 2);
    let config = SketchConfig {
        kind: fourwise::XiKind::Bch,
        shape,
        max_level: Some(max_level),
    };
    let join = SpatialJoin::<2>::new(
        &mut rng,
        config,
        [data_bits, data_bits],
        EndpointStrategy::Transform,
    );
    let mut sk_r = join.new_sketch_r();
    let mut sk_s = join.new_sketch_s();
    par_insert_batch(&mut sk_r, r, threads).expect("build R sketch");
    par_insert_batch(&mut sk_s, s, threads).expect("build S sketch");
    join.estimate(&sk_r, &sk_s).expect("estimate").value
}

/// Average SKETCH relative error over independent runs (the paper: "the
/// relative errors reported are averages over multiple independent runs").
#[allow(clippy::too_many_arguments)]
pub fn sketch_join_error_2d(
    r: &[HyperRect<2>],
    s: &[HyperRect<2>],
    truth: f64,
    data_bits: u32,
    words: f64,
    trials: u32,
    base_seed: u64,
    threads: usize,
) -> f64 {
    let shape = shape_for_words(2, words);
    let sum: f64 = (0..trials)
        .map(|t| {
            let est = sketch_join_estimate_2d(
                r,
                s,
                data_bits,
                shape,
                base_seed + 1000 * t as u64,
                threads,
            );
            rel_error(est, truth)
        })
        .sum();
    sum / trials as f64
}

/// EH relative error at a grid level.
pub fn eh_join_error(
    r: &[HyperRect<2>],
    s: &[HyperRect<2>],
    truth: f64,
    data_bits: u32,
    level: u32,
) -> f64 {
    let spec = GridSpec::new(data_bits, level);
    let mut eh_r = EulerHistogram::new(spec);
    let mut eh_s = EulerHistogram::new(spec);
    for x in r {
        eh_r.insert(x);
    }
    for x in s {
        eh_s.insert(x);
    }
    rel_error(eh_r.estimate_join(&eh_s), truth)
}

/// GH relative error at a grid level.
pub fn gh_join_error(
    r: &[HyperRect<2>],
    s: &[HyperRect<2>],
    truth: f64,
    data_bits: u32,
    level: u32,
) -> f64 {
    let spec = GridSpec::new(data_bits, level);
    let mut gh_r = GeometricHistogram::new(spec);
    let mut gh_s = GeometricHistogram::new(spec);
    for x in r {
        gh_r.insert(x);
    }
    for x in s {
        gh_s.insert(x);
    }
    rel_error(gh_r.estimate_join(&gh_s), truth)
}

/// Largest EH level (>= 1) whose footprint fits a word budget.
pub fn eh_level_for_words(budget: f64, max_level: u32) -> Option<u32> {
    (1..=max_level)
        .filter(|&l| EulerHistogram::words_at_level(l) as f64 <= budget)
        .max()
}

/// Largest GH level (>= 1) whose footprint fits a word budget.
pub fn gh_level_for_words(budget: f64, max_level: u32) -> Option<u32> {
    (1..=max_level)
        .filter(|&l| GeometricHistogram::words_at_level(l) as f64 <= budget)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::SyntheticSpec;

    #[test]
    fn shape_splits_budget() {
        let shape = shape_for_words(2, 2209.0);
        // 2209 words / 5 per instance = 441 instances.
        assert_eq!(shape.instances(), 441 / 5 * 5);
        assert_eq!(shape.k2 % 2, 1);
        // Tiny budgets degrade gracefully.
        let tiny = shape_for_words(2, 7.0);
        assert_eq!(tiny.instances(), 1);
    }

    #[test]
    fn level_selection() {
        assert_eq!(eh_level_for_words(36_481.0, 10), Some(6));
        assert_eq!(eh_level_for_words(36_480.0, 10), Some(5));
        assert_eq!(eh_level_for_words(10.0, 10), None);
        // GH at level 5 uses 4^(5+1) = 4096 words — exactly the budget.
        assert_eq!(gh_level_for_words(4096.0, 10), Some(5));
        assert_eq!(gh_level_for_words(4095.0, 10), Some(4));
    }

    #[test]
    fn end_to_end_smoke() {
        // A tiny end-to-end run of all three estimators on one workload.
        let r: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(400, 10, 0.0, 1).generate();
        let s: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(400, 10, 0.0, 2).generate();
        let truth = exact::rect_join_count(&r, &s) as f64;
        assert!(truth > 0.0);
        let sk = sketch_join_error_2d(&r, &s, truth, 10, 600.0, 1, 7, 2);
        let eh = eh_join_error(&r, &s, truth, 10, 2);
        let gh = gh_join_error(&r, &s, truth, 10, 2);
        assert!(sk.is_finite() && eh.is_finite() && gh.is_finite());
        // Sanity: none of them should be absurdly wrong on uniform data.
        assert!(sk < 3.0 && eh < 3.0 && gh < 3.0, "sk {sk} eh {eh} gh {gh}");
    }
}

//! Point distances for ε-joins (Definition 2).
//!
//! The paper's ε-join estimator targets the L∞ distance (Section 6.3), under
//! which the ε-neighborhood of a point is an axis-aligned hyper-cube; other
//! Lᵢ distances are provided for the exact processors and tests.

use crate::interval::{Coord, Interval};
use crate::rect::{HyperRect, Point};

/// L∞ (Chebyshev) distance between two points.
pub fn dist_linf<const D: usize>(a: &Point<D>, b: &Point<D>) -> u64 {
    (0..D).map(|i| a[i].abs_diff(b[i])).max().unwrap_or(0)
}

/// L1 (Manhattan) distance between two points.
pub fn dist_l1<const D: usize>(a: &Point<D>, b: &Point<D>) -> u64 {
    (0..D).map(|i| a[i].abs_diff(b[i])).sum()
}

/// Squared L2 (Euclidean) distance between two points, kept exact in `u128`.
pub fn dist_l2_sq<const D: usize>(a: &Point<D>, b: &Point<D>) -> u128 {
    (0..D)
        .map(|i| {
            let d = a[i].abs_diff(b[i]) as u128;
            d * d
        })
        .sum()
}

/// The ε-join predicate under L∞: `dist_∞(a, b) <= eps`.
pub fn within_linf<const D: usize>(a: &Point<D>, b: &Point<D>, eps: u64) -> bool {
    (0..D).all(|i| a[i].abs_diff(b[i]) <= eps)
}

/// The ε-neighborhood of a point under L∞: the hyper-cube of side `2ε`
/// centered at `b`, clamped to the domain `[0, domain_max]` per dimension.
///
/// This is the object `b'` of Section 6.3: `a ∈ cube(b, ε) ⇔ dist_∞(a,b) ≤ ε`
/// (clamping cannot exclude any domain point).
pub fn linf_cube<const D: usize>(b: &Point<D>, eps: u64, domain_max: Coord) -> HyperRect<D> {
    let mut ranges = [Interval::point(0); D];
    for i in 0..D {
        let lo = b[i].saturating_sub(eps);
        let hi = (b[i] + eps).min(domain_max);
        ranges[i] = Interval::new(lo, hi);
    }
    HyperRect::new(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_basic() {
        let a = [0u64, 3];
        let b = [4u64, 0];
        assert_eq!(dist_linf(&a, &b), 4);
        assert_eq!(dist_l1(&a, &b), 7);
        assert_eq!(dist_l2_sq(&a, &b), 25);
        assert_eq!(dist_linf(&a, &a), 0);
    }

    #[test]
    fn within_linf_boundary() {
        let a = [10u64, 10];
        assert!(within_linf(&a, &[13, 8], 3));
        assert!(within_linf(&a, &[13, 13], 3));
        assert!(!within_linf(&a, &[14, 10], 3));
    }

    #[test]
    fn cube_contains_iff_within() {
        let b = [10u64, 20];
        let eps = 5;
        let cube = linf_cube(&b, eps, 1000);
        for x in 0u64..30 {
            for y in 10u64..35 {
                let a = [x, y];
                assert_eq!(cube.contains_point(&a), within_linf(&a, &b, eps), "{a:?}");
            }
        }
    }

    #[test]
    fn cube_clamps_to_domain() {
        let cube = linf_cube(&[2u64, 99], 5, 100);
        assert_eq!(cube.range(0), Interval::new(0, 7));
        assert_eq!(cube.range(1), Interval::new(94, 100));
        // Clamping never loses domain points within distance eps.
        assert!(cube.contains_point(&[0, 100]));
    }

    // Seeded stand-ins for the original proptest properties (the offline
    // build has no proptest).
    #[test]
    fn metric_properties_linf() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        for _ in 0..1024 {
            let mut p = || [rng.gen_range(0u64..1000), rng.gen_range(0u64..1000)];
            let (a, b, c) = (p(), p(), p());
            // symmetry
            assert_eq!(dist_linf(&a, &b), dist_linf(&b, &a));
            // identity of indiscernibles
            assert_eq!(dist_linf(&a, &a), 0);
            // triangle inequality
            assert!(dist_linf(&a, &c) <= dist_linf(&a, &b) + dist_linf(&b, &c));
            // norm ordering: linf <= l1 <= d * linf
            assert!(dist_linf(&a, &b) <= dist_l1(&a, &b));
            assert!(dist_l1(&a, &b) <= 2 * dist_linf(&a, &b));
        }
    }

    #[test]
    fn cube_membership_equivalence() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(92);
        for _ in 0..1024 {
            let b = [rng.gen_range(0u64..200), rng.gen_range(0u64..200)];
            let eps = rng.gen_range(0u64..50);
            let p = [rng.gen_range(0u64..200), rng.gen_range(0u64..200)];
            let cube = linf_cube(&b, eps, 255);
            assert_eq!(cube.contains_point(&p), within_linf(&p, &b, eps));
        }
    }
}

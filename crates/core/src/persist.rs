//! Sketch persistence: serializable snapshots of schemas and sketch sets.
//!
//! Sketches summarize unbounded streams into a few kilobytes, which makes
//! them natural things to ship — from stream processors to a query
//! optimizer, between nodes of a distributed scan (merge the snapshots, the
//! sketches are linear), or to disk across restarts. A snapshot carries
//! everything needed to resume: the schema's seeds and shape, the word set,
//! the endpoint policy, and the counters.
//!
//! Snapshots are plain `serde` values (the workspace ships `serde_json` for
//! the harness; any format works). Restoring reconstructs the GF(2^k)
//! contexts deterministically from the domain configuration, so a snapshot
//! is self-contained.

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::comp::{Comp, Word};
use crate::error::{Result, SketchError};
use crate::schema::{BoostShape, DimSpec, SketchSchema};
use fourwise::{XiKind, XiSeed};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Serializable form of a [`SketchSchema`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SchemaSnapshot {
    kind: XiKind,
    k1: usize,
    k2: usize,
    /// `(sketch_bits, max_level)` per dimension.
    dims: Vec<(u32, u32)>,
    /// Seeds, instance-major (`seeds[instance][dim]`).
    seeds: Vec<Vec<XiSeed>>,
}

/// Serializable form of a [`SketchSet`] (including its schema, so a single
/// snapshot round-trips; pair sketches share the schema by construction
/// when restored through [`SketchPairSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SketchSnapshot {
    schema: SchemaSnapshot,
    words: Vec<Vec<Comp>>,
    policy_tag: u8,
    counters: Vec<i64>,
    len: i64,
}

impl SketchSnapshot {
    /// The embedded schema snapshot. Multi-sketch containers (a sharded
    /// store's shards all share one schema) restore the schema once from
    /// here and rebuild every sketch against it with
    /// [`restore_sketch_with_schema`], preserving combinability.
    pub fn schema(&self) -> &SchemaSnapshot {
        &self.schema
    }
}

/// A joinable pair of sketches sharing one schema — the unit a distributed
/// join-estimation pipeline ships around.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SketchPairSnapshot {
    /// Snapshot of the `R`-side sketch (carries the shared schema).
    pub r: SketchSnapshot,
    /// Snapshot of the `S`-side sketch (same schema, by construction).
    pub s: SketchSnapshot,
}

fn policy_tag(p: EndpointPolicy) -> u8 {
    match p {
        EndpointPolicy::Raw => 0,
        EndpointPolicy::Tripled => 1,
        EndpointPolicy::TripledShrunk => 2,
    }
}

fn policy_from_tag(tag: u8) -> Result<EndpointPolicy> {
    match tag {
        0 => Ok(EndpointPolicy::Raw),
        1 => Ok(EndpointPolicy::Tripled),
        2 => Ok(EndpointPolicy::TripledShrunk),
        _ => Err(SketchError::InvalidParameter("unknown endpoint policy tag")),
    }
}

/// Captures a schema.
pub fn snapshot_schema<const D: usize>(schema: &SketchSchema<D>) -> SchemaSnapshot {
    SchemaSnapshot {
        kind: schema.kind(),
        k1: schema.shape().k1,
        k2: schema.shape().k2,
        dims: schema
            .dims()
            .iter()
            .map(|d| (d.sketch_bits, d.max_level))
            .collect(),
        seeds: (0..schema.instances())
            .map(|i| schema.instance_seeds(i).to_vec())
            .collect(),
    }
}

/// Restores a schema. The const dimensionality must match the snapshot.
pub fn restore_schema<const D: usize>(snap: &SchemaSnapshot) -> Result<Arc<SketchSchema<D>>> {
    if snap.dims.len() != D {
        return Err(SketchError::InvalidParameter(
            "snapshot dimensionality does not match the requested type",
        ));
    }
    let dims: [DimSpec; D] = std::array::from_fn(|i| DimSpec {
        sketch_bits: snap.dims[i].0,
        max_level: snap.dims[i].1,
    });
    let shape = BoostShape::new(snap.k1, snap.k2);
    if snap.seeds.len() != shape.instances() {
        return Err(SketchError::InvalidParameter(
            "snapshot seed count does not match its boosting shape",
        ));
    }
    let mut seeds = Vec::with_capacity(snap.seeds.len());
    for row in &snap.seeds {
        if row.len() != D {
            return Err(SketchError::InvalidParameter(
                "snapshot seed row has wrong dimensionality",
            ));
        }
        let mut arr = [row[0]; D];
        arr.copy_from_slice(row);
        seeds.push(arr);
    }
    Ok(SketchSchema::restore(snap.kind, shape, dims, seeds))
}

/// Captures a sketch set (schema included).
pub fn snapshot_sketch<const D: usize>(sketch: &SketchSet<D>) -> SketchSnapshot {
    let words = sketch.words().iter().map(|w| w.to_vec()).collect();
    let instances = sketch.schema().instances();
    let w = sketch.words().len();
    let mut counters = Vec::with_capacity(instances * w);
    for inst in 0..instances {
        counters.extend_from_slice(sketch.instance_counters(inst));
    }
    SketchSnapshot {
        schema: snapshot_schema(sketch.schema()),
        words,
        policy_tag: policy_tag(sketch.policy()),
        counters,
        len: sketch.len(),
    }
}

/// Restores a sketch set against an already-restored schema (so several
/// sketches can share it). The supplied schema must *be* the snapshot's
/// schema — same kind, shape, dimensions and seeds
/// ([`SketchError::SchemaMismatch`] otherwise): counters are only
/// meaningful under the seeds that built them, so restoring against any
/// other schema would silently corrupt every subsequent estimate.
pub fn restore_sketch_with_schema<const D: usize>(
    snap: &SketchSnapshot,
    schema: Arc<SketchSchema<D>>,
) -> Result<SketchSet<D>> {
    if snapshot_schema(&schema) != snap.schema {
        return Err(SketchError::SchemaMismatch);
    }
    let mut words: Vec<Word<D>> = Vec::with_capacity(snap.words.len());
    for w in &snap.words {
        if w.len() != D {
            return Err(SketchError::InvalidParameter(
                "snapshot word has wrong dimensionality",
            ));
        }
        let mut arr = [Comp::Interval; D];
        arr.copy_from_slice(w);
        words.push(arr);
    }
    if snap.counters.len() != schema.instances() * words.len() {
        return Err(SketchError::InvalidParameter(
            "snapshot counter array has wrong size",
        ));
    }
    let mut sketch = SketchSet::new(schema, Arc::new(words), policy_from_tag(snap.policy_tag)?);
    sketch.counters_mut().copy_from_slice(&snap.counters);
    sketch.add_len(snap.len);
    Ok(sketch)
}

/// Restores a standalone sketch (reconstructing its schema).
pub fn restore_sketch<const D: usize>(snap: &SketchSnapshot) -> Result<SketchSet<D>> {
    let schema = restore_schema::<D>(&snap.schema)?;
    restore_sketch_with_schema(snap, schema)
}

/// Captures a joinable pair.
pub fn snapshot_pair<const D: usize>(
    r: &SketchSet<D>,
    s: &SketchSet<D>,
) -> Result<SketchPairSnapshot> {
    if !r.same_schema(s) {
        return Err(SketchError::SchemaMismatch);
    }
    Ok(SketchPairSnapshot {
        r: snapshot_sketch(r),
        s: snapshot_sketch(s),
    })
}

/// Restores a joinable pair sharing one schema instance.
pub fn restore_pair<const D: usize>(
    snap: &SketchPairSnapshot,
) -> Result<(SketchSet<D>, SketchSet<D>)> {
    let schema = restore_schema::<D>(&snap.r.schema)?;
    let r = restore_sketch_with_schema(&snap.r, Arc::clone(&schema))?;
    let s = restore_sketch_with_schema(&snap.s, schema)?;
    Ok((r, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::ie_words;
    use fourwise::XiKind;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_sketch() -> SketchSet<2> {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(4, 3),
            [DimSpec::with_max_level(10, 7); 2],
        );
        let mut sk = SketchSet::new(schema, Arc::new(ie_words::<2>()), EndpointPolicy::Tripled);
        sk.insert(&rect2(5, 90, 10, 200)).unwrap();
        sk.insert(&rect2(0, 255, 0, 255)).unwrap();
        sk.delete(&rect2(5, 90, 10, 200)).unwrap();
        sk
    }

    #[test]
    fn sketch_roundtrip_preserves_everything() {
        let sk = sample_sketch();
        let snap = snapshot_sketch(&sk);
        let restored: SketchSet<2> = restore_sketch(&snap).unwrap();
        assert_eq!(restored.len(), sk.len());
        assert_eq!(restored.policy(), sk.policy());
        assert_eq!(restored.words(), sk.words());
        for inst in 0..sk.schema().instances() {
            assert_eq!(restored.instance_counters(inst), sk.instance_counters(inst));
        }
        // Updates after restore behave identically to the original.
        let mut a = sk.clone();
        let mut b = restored;
        a.insert(&rect2(1, 2, 3, 4)).unwrap();
        b.insert(&rect2(1, 2, 3, 4)).unwrap();
        for inst in 0..a.schema().instances() {
            assert_eq!(a.instance_counters(inst), b.instance_counters(inst));
        }
    }

    #[test]
    fn json_roundtrip() {
        let sk = sample_sketch();
        let snap = snapshot_sketch(&sk);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SketchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let restored: SketchSet<2> = restore_sketch(&back).unwrap();
        assert_eq!(restored.len(), sk.len());
    }

    #[test]
    fn restored_pair_is_joinable() {
        use crate::estimator::{DimTerm, PairEstimator, PairTerms};
        let mut rng = StdRng::seed_from_u64(6);
        let schema = SketchSchema::<1>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(32, 3),
            [DimSpec::dyadic(8)],
        );
        let dim = vec![
            DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
            DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
        ];
        let pair = PairEstimator::new(
            Arc::clone(&schema),
            PairTerms::from_dim_terms(&[dim]),
            EndpointPolicy::Raw,
            EndpointPolicy::Raw,
        );
        let mut r = pair.new_sketch_r();
        let mut s = pair.new_sketch_s();
        r.insert(&geometry::Interval::new(10, 40).into()).unwrap();
        s.insert(&geometry::Interval::new(21, 61).into()).unwrap();
        let before = pair.estimate(&r, &s).unwrap().value;

        let snap = snapshot_pair(&r, &s).unwrap();
        let (r2, s2): (SketchSet<1>, SketchSet<1>) = restore_pair(&snap).unwrap();
        // The restored pair shares a schema and can be estimated with a
        // pair estimator rebuilt over that schema.
        let pair2 = PairEstimator::new(
            Arc::clone(r2.schema()),
            PairTerms::from_dim_terms(&[vec![
                DimTerm::new(Comp::Interval, Comp::Endpoints, 0.5),
                DimTerm::new(Comp::Endpoints, Comp::Interval, 0.5),
            ]]),
            EndpointPolicy::Raw,
            EndpointPolicy::Raw,
        );
        let after = pair2.estimate(&r2, &s2).unwrap().value;
        assert_eq!(before, after);
    }

    #[test]
    fn mismatched_snapshots_rejected() {
        let sk = sample_sketch();
        let mut snap = snapshot_sketch(&sk);
        // Wrong dimensionality.
        assert!(restore_sketch::<1>(&snap).is_err());
        // Corrupt counters.
        snap.counters.pop();
        assert!(restore_sketch::<2>(&snap).is_err());
        // Foreign pair.
        let mut rng = StdRng::seed_from_u64(7);
        let other_schema = SketchSchema::<2>::new(
            &mut rng,
            XiKind::Bch,
            BoostShape::new(4, 3),
            [DimSpec::dyadic(10); 2],
        );
        let other = SketchSet::new(other_schema, Arc::new(ie_words::<2>()), EndpointPolicy::Raw);
        assert_eq!(
            snapshot_pair(&sk, &other).unwrap_err(),
            SketchError::SchemaMismatch
        );
    }
}

//! Generalized Euler Histograms (Sun, Agrawal, El Abbadi: "Selectivity
//! estimation for spatial joins with geometric selections", EDBT 2002;
//! "Exploring spatial datasets with histograms", ICDE 2002) — reimplemented
//! from the published descriptions.
//!
//! An Euler histogram of level `L` allocates buckets not only for the
//! `2^L × 2^L` grid **cells** but also for the interior grid **edges** and
//! **vertices**. An object spanning an `a × b` block of cells contributes
//! `+1` to each spanned cell, each interior edge and each interior vertex of
//! its span; since `a·b - [(a-1)b + a(b-1)] + (a-1)(b-1) = 1` (the Euler
//! characteristic of a rectangular complex), cell-aligned *range counts* are
//! answered **exactly** by `Σ cells - Σ edges + Σ vertices`.
//!
//! The *generalized* histogram additionally stores per-cell intersection
//! shape statistics (average width, height and area — 3 extra values per
//! cell) and per-edge average crossing lengths (1 extra value per edge),
//! which the join estimator combines with a per-element uniformity model
//! and the same inclusion-exclusion to avoid double counting across cells:
//!
//! ```text
//! |R ⋈ S| ≈ Σ_cells pairs(cell) - Σ_edges pairs(edge) + Σ_vertices pairs(vertex)
//! ```
//!
//! where `pairs(cell)` is modeled probabilistically, `pairs(edge)` models
//! pairs straddling the same edge, and `pairs(vertex)` is exact (two objects
//! covering one grid vertex always intersect). Storage:
//! `4·4^L + 2·2·2^L(2^L - 1) + (2^L - 1)² = 9·2^{2L} - 6·2^L + 1` words,
//! the figure quoted in the paper's Section 7.
//!
//! The estimator's per-bucket model errors accumulate as the grid gets
//! finer, which reproduces the paper's observed EH behaviour (good at small
//! space, degrading with more buckets).

use crate::grid::GridSpec;
use crate::model::overlap_probability_1d;
use geometry::HyperRect;

/// Per-cell aggregates: object count plus intersection-shape sums.
#[derive(Debug, Clone, Copy, Default)]
struct CellStats {
    count: f64,
    sum_w: f64,
    sum_h: f64,
    sum_area: f64,
}

/// Per-interior-edge aggregates: crossing count and crossing-length sum.
#[derive(Debug, Clone, Copy, Default)]
struct EdgeStats {
    count: f64,
    sum_len: f64,
}

/// A generalized Euler histogram over one 2-d rectangle relation.
#[derive(Debug, Clone)]
pub struct EulerHistogram {
    spec: GridSpec,
    cells: Vec<CellStats>,
    /// Vertical interior edges between cell columns `c` and `c+1`:
    /// indexed `[row][boundary]`, `(G-1)` boundaries × `G` rows.
    v_edges: Vec<EdgeStats>,
    /// Horizontal interior edges between cell rows `r` and `r+1`:
    /// indexed `[boundary][col]`, `G` columns × `(G-1)` boundaries.
    h_edges: Vec<EdgeStats>,
    /// Interior vertices, `(G-1) × (G-1)`.
    vertices: Vec<f64>,
    count: i64,
}

impl EulerHistogram {
    /// Creates an empty histogram on the given grid (level >= 1 so interior
    /// elements exist).
    pub fn new(spec: GridSpec) -> Self {
        let g = spec.cells_per_dim() as usize;
        Self {
            spec,
            cells: vec![CellStats::default(); g * g],
            v_edges: vec![EdgeStats::default(); g * (g - 1)],
            h_edges: vec![EdgeStats::default(); g * (g - 1)],
            vertices: vec![0.0; (g - 1) * (g - 1)],
            count: 0,
        }
    }

    /// The grid specification.
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Net number of summarized objects.
    pub fn len(&self) -> i64 {
        self.count
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Storage footprint in words: `9·2^{2L} - 6·2^L + 1`.
    pub fn memory_words(&self) -> u64 {
        Self::words_at_level(self.spec.level)
    }

    /// Memory words at a level without building the histogram.
    pub fn words_at_level(level: u32) -> u64 {
        let g = 1u64 << level;
        9 * g * g - 6 * g + 1
    }

    fn v_edge_index(&self, boundary: u64, row: u64) -> usize {
        let g = self.spec.cells_per_dim();
        (row * (g - 1) + boundary) as usize
    }

    fn h_edge_index(&self, col: u64, boundary: u64) -> usize {
        let g = self.spec.cells_per_dim();
        (boundary * g + col) as usize
    }

    fn vertex_index(&self, bx: u64, by: u64) -> usize {
        let g = self.spec.cells_per_dim();
        (by * (g - 1) + bx) as usize
    }

    /// Inserts an object.
    pub fn insert(&mut self, rect: &HyperRect<2>) {
        self.update(rect, 1.0);
        self.count += 1;
    }

    /// Deletes a previously inserted object.
    pub fn delete(&mut self, rect: &HyperRect<2>) {
        self.update(rect, -1.0);
        self.count -= 1;
    }

    fn update(&mut self, rect: &HyperRect<2>, sign: f64) {
        assert!(self.spec.fits(rect), "object outside histogram domain");
        let (cx0, cx1) = self.spec.cell_span(&rect.range(0));
        let (cy0, cy1) = self.spec.cell_span(&rect.range(1));
        let (xl, xu) = (rect.range(0).lo() as f64, rect.range(0).hi() as f64);
        let (yl, yu) = (rect.range(1).lo() as f64, rect.range(1).hi() as f64);
        // Cells.
        for cy in cy0..=cy1 {
            let yr = self.spec.cell_range(cy);
            let (cyl, cyu) = (yr.lo() as f64, yr.hi() as f64 + 1.0);
            let clip_h = (yu.min(cyu) - yl.max(cyl)).max(0.0);
            for cx in cx0..=cx1 {
                let xr = self.spec.cell_range(cx);
                let (cxl, cxu) = (xr.lo() as f64, xr.hi() as f64 + 1.0);
                let clip_w = (xu.min(cxu) - xl.max(cxl)).max(0.0);
                let cell = &mut self.cells[self.spec.cell_index(cx, cy)];
                cell.count += sign;
                cell.sum_w += sign * clip_w;
                cell.sum_h += sign * clip_h;
                cell.sum_area += sign * clip_w * clip_h;
            }
        }
        // Vertical interior edges strictly inside the span: boundaries
        // cx0..cx1 (between columns b and b+1).
        for b in cx0..cx1 {
            for cy in cy0..=cy1 {
                let yr = self.spec.cell_range(cy);
                let (cyl, cyu) = (yr.lo() as f64, yr.hi() as f64 + 1.0);
                let clip_h = (yu.min(cyu) - yl.max(cyl)).max(0.0);
                let idx = self.v_edge_index(b, cy);
                let e = &mut self.v_edges[idx];
                e.count += sign;
                e.sum_len += sign * clip_h;
            }
        }
        // Horizontal interior edges.
        for b in cy0..cy1 {
            for cx in cx0..=cx1 {
                let xr = self.spec.cell_range(cx);
                let (cxl, cxu) = (xr.lo() as f64, xr.hi() as f64 + 1.0);
                let clip_w = (xu.min(cxu) - xl.max(cxl)).max(0.0);
                let idx = self.h_edge_index(cx, b);
                let e = &mut self.h_edges[idx];
                e.count += sign;
                e.sum_len += sign * clip_w;
            }
        }
        // Interior vertices of the span.
        for bx in cx0..cx1 {
            for by in cy0..cy1 {
                let idx = self.vertex_index(bx, by);
                self.vertices[idx] += sign;
            }
        }
    }

    /// Exact count of objects intersecting the cell-aligned region with
    /// cell-index corners `(cx0, cy0) ..= (cx1, cy1)` — the classical Euler
    /// histogram query, exact because each object contributes its span's
    /// Euler characteristic restricted to the region.
    pub fn aligned_range_count(&self, cx0: u64, cy0: u64, cx1: u64, cy1: u64) -> f64 {
        assert!(cx0 <= cx1 && cy0 <= cy1, "inverted region");
        let mut total = 0.0;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                total += self.cells[self.spec.cell_index(cx, cy)].count;
            }
        }
        for b in cx0..cx1 {
            for cy in cy0..=cy1 {
                total -= self.v_edges[self.v_edge_index(b, cy)].count;
            }
        }
        for b in cy0..cy1 {
            for cx in cx0..=cx1 {
                total -= self.h_edges[self.h_edge_index(cx, b)].count;
            }
        }
        for bx in cx0..cx1 {
            for by in cy0..cy1 {
                total += self.vertices[self.vertex_index(bx, by)];
            }
        }
        total
    }

    /// Estimates `|R ⋈_o S|` against another histogram on the same grid.
    pub fn estimate_join(&self, other: &EulerHistogram) -> f64 {
        assert_eq!(self.spec, other.spec, "histograms on different grids");
        let cw = self.spec.cell_width() as f64;
        let mut est = 0.0;
        // Cells: probabilistic pair model from average intersection shapes.
        for (a, b) in self.cells.iter().zip(other.cells.iter()) {
            if a.count <= 0.0 || b.count <= 0.0 {
                continue;
            }
            let (aw, ah) = (a.sum_w / a.count, a.sum_h / a.count);
            let (bw, bh) = (b.sum_w / b.count, b.sum_h / b.count);
            let p = overlap_probability_1d(aw, bw, cw) * overlap_probability_1d(ah, bh, cw);
            est += a.count * b.count * p;
        }
        // Edges: pairs double-counted by the two adjacent cells are pairs
        // whose intersection crosses the edge; model: both cross the edge
        // and their spans along the edge overlap.
        for (a, b) in self.v_edges.iter().zip(other.v_edges.iter()) {
            if a.count <= 0.0 || b.count <= 0.0 {
                continue;
            }
            let p = overlap_probability_1d(a.sum_len / a.count, b.sum_len / b.count, cw);
            est -= a.count * b.count * p;
        }
        for (a, b) in self.h_edges.iter().zip(other.h_edges.iter()) {
            if a.count <= 0.0 || b.count <= 0.0 {
                continue;
            }
            let p = overlap_probability_1d(a.sum_len / a.count, b.sum_len / b.count, cw);
            est -= a.count * b.count * p;
        }
        // Vertices: two objects covering the same grid vertex surely
        // intersect — no model error here.
        for (a, b) in self.vertices.iter().zip(other.vertices.iter()) {
            est += a * b;
        }
        est.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::SyntheticSpec;
    use geometry::{rect2, Interval};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn memory_formula_matches_paper() {
        // Section 7: level-6 EH uses about 36K words.
        assert_eq!(EulerHistogram::words_at_level(6), 36_481);
        assert_eq!(EulerHistogram::words_at_level(1), 9 * 4 - 12 + 1);
    }

    #[test]
    fn single_object_euler_characteristic() {
        // cells - edges + vertices = 1 for any object span.
        let spec = GridSpec::new(8, 3);
        for rect in [
            rect2(0, 255, 0, 255), // full domain
            rect2(10, 20, 10, 20), // single cell
            rect2(10, 100, 5, 40), // multi-cell block
            rect2(31, 32, 0, 255), // two columns, all rows
        ] {
            let mut eh = EulerHistogram::new(spec);
            eh.insert(&rect);
            let cells: f64 = eh.cells.iter().map(|c| c.count).sum();
            let edges: f64 = eh
                .v_edges
                .iter()
                .chain(eh.h_edges.iter())
                .map(|e| e.count)
                .sum();
            let verts: f64 = eh.vertices.iter().sum();
            assert_eq!(cells - edges + verts, 1.0, "{rect:?}");
        }
    }

    #[test]
    fn aligned_range_counts_are_exact() {
        let spec = GridSpec::new(8, 3);
        let mut rng = StdRng::seed_from_u64(33);
        let data: Vec<geometry::HyperRect<2>> = (0..300)
            .map(|_| {
                let x = rng.gen_range(0..200u64);
                let y = rng.gen_range(0..200u64);
                rect2(
                    x,
                    x + rng.gen_range(0u64..55),
                    y,
                    y + rng.gen_range(0u64..55),
                )
            })
            .collect();
        let mut eh = EulerHistogram::new(spec);
        for r in &data {
            eh.insert(r);
        }
        for (cx0, cy0, cx1, cy1) in [
            (0u64, 0u64, 7u64, 7u64),
            (0, 0, 0, 0),
            (2, 1, 5, 6),
            (7, 7, 7, 7),
        ] {
            let region = geometry::HyperRect::new([
                Interval::new(spec.cell_range(cx0).lo(), spec.cell_range(cx1).hi()),
                Interval::new(spec.cell_range(cy0).lo(), spec.cell_range(cy1).hi()),
            ]);
            let truth = data.iter().filter(|r| r.overlaps_plus(&region)).count() as f64;
            let got = eh.aligned_range_count(cx0, cy0, cx1, cy1);
            assert_eq!(got, truth, "region ({cx0},{cy0})-({cx1},{cy1})");
        }
    }

    #[test]
    fn insert_delete_roundtrip() {
        let spec = GridSpec::new(8, 2);
        let mut eh = EulerHistogram::new(spec);
        let rects = [rect2(0, 100, 5, 200), rect2(30, 40, 30, 40)];
        for r in &rects {
            eh.insert(r);
        }
        for r in &rects {
            eh.delete(r);
        }
        assert!(eh.is_empty());
        assert!(eh.cells.iter().all(|c| c.count == 0.0 && c.sum_area == 0.0));
        assert!(eh.v_edges.iter().all(|e| e.count == 0.0));
        assert!(eh.vertices.iter().all(|&v| v == 0.0));
    }

    fn rel_error_at_level(
        r: &[geometry::HyperRect<2>],
        s: &[geometry::HyperRect<2>],
        truth: f64,
        domain_bits: u32,
        level: u32,
    ) -> f64 {
        let spec = GridSpec::new(domain_bits, level);
        let mut eh_r = EulerHistogram::new(spec);
        let mut eh_s = EulerHistogram::new(spec);
        for x in r {
            eh_r.insert(x);
        }
        for x in s {
            eh_s.insert(x);
        }
        (eh_r.estimate_join(&eh_s) - truth).abs() / truth
    }

    #[test]
    fn join_estimate_good_at_coarse_grids() {
        // The paper (Section 7.3): "EH provides good estimates with small
        // memory allocated to it".
        let r: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(800, 10, 0.0, 31).generate();
        let s: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(800, 10, 0.0, 32).generate();
        let truth = exact::rect_join_count(&r, &s) as f64;
        assert!(truth > 0.0);
        let rel = rel_error_at_level(&r, &s, truth, 10, 1);
        assert!(rel < 0.25, "coarse EH should be accurate: rel {rel}");
    }

    #[test]
    fn join_error_grows_with_finer_grids() {
        // "... but the relative error increases rapidly with finer grid
        // partitioning" — the defining EH failure mode the paper reports.
        let r: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(2000, 12, 0.0, 31).generate();
        let s: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(2000, 12, 0.0, 32).generate();
        let truth = exact::rect_join_count(&r, &s) as f64;
        let coarse = rel_error_at_level(&r, &s, truth, 12, 1);
        let fine = rel_error_at_level(&r, &s, truth, 12, 5);
        assert!(
            fine > 2.0 * coarse,
            "per-bucket model error should accumulate: coarse {coarse}, fine {fine}"
        );
    }

    #[test]
    fn join_of_identical_histograms_positive() {
        let data: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(200, 8, 0.0, 5).generate();
        let spec = GridSpec::new(8, 2);
        let mut eh = EulerHistogram::new(spec);
        for x in &data {
            eh.insert(x);
        }
        assert!(eh.estimate_join(&eh.clone()) > 0.0);
    }
}

#[cfg(test)]
mod characterize {
    use super::*;
    use datagen::SyntheticSpec;

    #[test]
    #[ignore = "characterization helper, run manually"]
    fn error_vs_level() {
        let r: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(2000, 12, 0.0, 31).generate();
        let s: Vec<geometry::HyperRect<2>> = SyntheticSpec::paper(2000, 12, 0.0, 32).generate();
        let truth = exact::rect_join_count(&r, &s) as f64;
        println!("truth = {truth}");
        for level in 1..=7u32 {
            let spec = GridSpec::new(12, level);
            let mut a = EulerHistogram::new(spec);
            let mut b = EulerHistogram::new(spec);
            for x in &r {
                a.insert(x);
            }
            for x in &s {
                b.insert(x);
            }
            let est = a.estimate_join(&b);
            println!(
                "level {level}: est {est:.0} rel {:.3} words {}",
                (est - truth).abs() / truth,
                EulerHistogram::words_at_level(level)
            );
        }
    }
}

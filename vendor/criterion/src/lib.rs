//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal wall-clock harness exposing the criterion API surface the four
//! bench targets use: [`Criterion::benchmark_group`], `bench_function`,
//! `iter` / `iter_batched`, [`Throughput`], [`BatchSize`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Numbers come from a median-of-samples wall-clock loop — good enough to
//! rank implementations and catch order-of-magnitude regressions, without
//! real criterion's outlier rejection and statistical machinery. Swap the
//! workspace manifest back to the registry crate for publication-grade
//! statistics; no bench source changes are needed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much throughput one iteration represents (for derived rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched setup cost relates to routine cost (accepted for API
/// compatibility; this harness times each routine call individually, so the
/// hint does not change measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Top-level harness handle, one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror real criterion's `--test` CLI mode: run every benchmark
        // once to prove it works, without collecting statistics. Lets CI
        // smoke bench targets (`cargo bench ... -- --test`) cheaply.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.into(), None, sample_size, self.test_mode, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times one function under this group's settings.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, self.sample_size, self.test_mode, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records what to measure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine` over repeated calls, collecting per-call samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and size the inner batch so one sample costs ~1ms.
        let warmup = Instant::now();
        black_box(routine());
        if self.test_mode {
            self.samples.push(warmup.elapsed());
            return;
        }
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Times `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("{id:<50} ok (test mode: 1 iteration)");
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("  {:>12.0} B/s", per_sec(n)),
        }
    });
    println!(
        "{id:<50} median {:>12?}{}",
        median,
        rate.unwrap_or_default()
    );
}

/// Expands to a function running each listed benchmark against a default
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running each group (bench CLI arguments from `cargo
/// bench` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(4)).sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut made = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(made >= 2);
    }
}

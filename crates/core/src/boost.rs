//! Accuracy boosting: means over `k1` atomic estimates, median over `k2`
//! means (Section 2.3, Figure 1 of the paper).
//!
//! Averaging drives the variance down by `k1` (Chebyshev gives the ε bound);
//! taking the median of `k2` independent means drives the failure probability
//! down exponentially (Chernoff gives the `lg(1/φ)` bound) — Lemma 1.

/// Median of a slice (averaging the two middle elements for even lengths).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mid = values.len() / 2;
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// The mean-then-median combiner of Figure 1.
///
/// `atomic[row * k1 + col]` holds the atomic estimate `Z_{col,row}`; rows are
/// averaged and the median of the `k2` row-means is returned along with the
/// row means themselves (useful for diagnostics and confidence reporting).
pub fn mean_median(atomic: &[f64], k1: usize, k2: usize) -> (f64, Vec<f64>) {
    let mut row_means = Vec::with_capacity(k2);
    let mut scratch = Vec::with_capacity(k2);
    let med = mean_median_with(atomic, k1, k2, &mut row_means, &mut scratch);
    (med, row_means)
}

/// Allocation-free core of [`mean_median`]: row means are written into
/// `row_means` (cleared and refilled) and the median is taken over `scratch`
/// (likewise reused), so a caller boosting many estimates — the batched
/// query kernel in particular — pays no per-estimate allocation once the
/// buffers have grown to `k2` entries.
pub fn mean_median_with(
    atomic: &[f64],
    k1: usize,
    k2: usize,
    row_means: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) -> f64 {
    assert_eq!(atomic.len(), k1 * k2, "estimate grid shape mismatch");
    row_means.clear();
    for row in 0..k2 {
        let sum: f64 = atomic[row * k1..(row + 1) * k1].iter().sum();
        row_means.push(sum / k1 as f64);
    }
    scratch.clear();
    scratch.extend_from_slice(row_means);
    median(scratch)
}

/// A boosted estimate with its per-row means, for diagnostics.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The median-of-means estimate.
    pub value: f64,
    /// The `k2` row means the median was taken over.
    pub row_means: Vec<f64>,
}

impl Estimate {
    /// Builds from the atomic estimate grid.
    pub fn from_grid(atomic: &[f64], k1: usize, k2: usize) -> Self {
        let (value, row_means) = mean_median(atomic, k1, k2);
        Self { value, row_means }
    }

    /// Spread of the row means (max - min), a cheap dispersion diagnostic.
    pub fn row_spread(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &m in &self.row_means {
            min = min.min(m);
            max = max.max(m);
        }
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [5.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        let _ = median(&mut []);
    }

    #[test]
    fn mean_median_grid() {
        // k1 = 2, k2 = 3: rows are [1,3] -> 2, [10,10] -> 10, [4,6] -> 5.
        let grid = [1.0, 3.0, 10.0, 10.0, 4.0, 6.0];
        let (med, rows) = mean_median(&grid, 2, 3);
        assert_eq!(rows, vec![2.0, 10.0, 5.0]);
        assert_eq!(med, 5.0);
    }

    #[test]
    fn median_robust_to_outlier_rows() {
        // One wild row must not move the estimate (the whole point of the
        // median step).
        let grid = [5.0, 5.0, 5.0, 5.0, 1e12, 1e12];
        let (med, _) = mean_median(&grid, 2, 3);
        assert_eq!(med, 5.0);
    }

    #[test]
    fn estimate_diagnostics() {
        let est = Estimate::from_grid(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(est.value, 2.5);
        assert_eq!(est.row_spread(), 2.0);
    }

    #[test]
    fn mean_median_with_reuses_buffers() {
        let mut rows = vec![99.0; 7]; // stale content must be discarded
        let mut scratch = vec![-1.0; 2];
        let grid = [1.0, 3.0, 10.0, 10.0, 4.0, 6.0];
        let med = mean_median_with(&grid, 2, 3, &mut rows, &mut scratch);
        assert_eq!(med, 5.0);
        assert_eq!(rows, vec![2.0, 10.0, 5.0]);
        // Row means stay in grid order; only the scratch is sorted.
        let med2 = mean_median_with(&grid, 3, 2, &mut rows, &mut scratch);
        assert_eq!(rows.len(), 2);
        assert!(med2.is_finite());
    }
}

//! Geometric Histograms (An, Yang, Sivasubramaniam: "Selectivity estimation
//! for spatial joins", ICDE 2001) — reimplemented from the published
//! description, as summarized in Section 7 of the spatial-sketches paper:
//!
//! > "The information stored in each cell is the total number of corner
//! > points, the sum of the areas of the objects, the sum of the lengths of
//! > the vertical edges and the sum of the lengths of the horizontal edges
//! > of objects intersecting the cell."
//!
//! The join estimator rests on the same geometric identity the sketches use
//! (Section 4.2.1): two generically-positioned rectangles intersect iff
//! (corners of `r` in `s`) + (corners of `s` in `r`) + (horizontal-edge ×
//! vertical-edge crossings both ways) equals 4. Per cell, under uniformity,
//! the expected contribution of each event class is a product of the stored
//! aggregates divided by the cell area, giving
//!
//! ```text
//! |R ⋈ S|  ≈  (1/4) Σ_cells [ C_r·A_s + C_s·A_r + H_r·V_s + V_r·H_s ] / cellArea
//! ```
//!
//! Storage: 4 values per cell = `4^(L+1)` words at grid level `L`.

use crate::grid::GridSpec;
use geometry::HyperRect;

/// Per-cell aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct CellStats {
    /// Number of object corner points in the cell.
    corners: f64,
    /// Σ area of object ∩ cell.
    area: f64,
    /// Σ length of horizontal object edges ∩ cell.
    h_len: f64,
    /// Σ length of vertical object edges ∩ cell.
    v_len: f64,
}

/// A Geometric Histogram over one 2-d rectangle relation.
#[derive(Debug, Clone)]
pub struct GeometricHistogram {
    spec: GridSpec,
    cells: Vec<CellStats>,
    count: i64,
}

impl GeometricHistogram {
    /// Creates an empty histogram on the given grid.
    pub fn new(spec: GridSpec) -> Self {
        Self {
            spec,
            cells: vec![CellStats::default(); spec.cell_count()],
            count: 0,
        }
    }

    /// The grid specification.
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Net number of summarized objects.
    pub fn len(&self) -> i64 {
        self.count
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Storage footprint in words: 4 per cell (`4^(L+1)` total).
    pub fn memory_words(&self) -> u64 {
        4 * self.spec.cell_count() as u64
    }

    /// Memory words at a given level without building the histogram.
    pub fn words_at_level(level: u32) -> u64 {
        4u64 * (1u64 << level) * (1u64 << level)
    }

    /// Inserts an object.
    pub fn insert(&mut self, rect: &HyperRect<2>) {
        self.update(rect, 1.0);
        self.count += 1;
    }

    /// Deletes a previously inserted object (the grid is fixed, so the
    /// histogram is exactly maintainable under deletions).
    pub fn delete(&mut self, rect: &HyperRect<2>) {
        self.update(rect, -1.0);
        self.count -= 1;
    }

    fn update(&mut self, rect: &HyperRect<2>, sign: f64) {
        assert!(self.spec.fits(rect), "object outside histogram domain");
        let (cx0, cx1) = self.spec.cell_span(&rect.range(0));
        let (cy0, cy1) = self.spec.cell_span(&rect.range(1));
        let (xl, xu) = (rect.range(0).lo() as f64, rect.range(0).hi() as f64);
        let (yl, yu) = (rect.range(1).lo() as f64, rect.range(1).hi() as f64);
        for cy in cy0..=cy1 {
            let yr = self.spec.cell_range(cy);
            let (cyl, cyu) = (yr.lo() as f64, yr.hi() as f64 + 1.0);
            let clip_y = (yu.min(cyu) - yl.max(cyl)).max(0.0);
            let bottom_in = yl >= cyl && yl < cyu;
            let top_in = yu >= cyl && yu < cyu;
            for cx in cx0..=cx1 {
                let xr = self.spec.cell_range(cx);
                let (cxl, cxu) = (xr.lo() as f64, xr.hi() as f64 + 1.0);
                let clip_x = (xu.min(cxu) - xl.max(cxl)).max(0.0);
                let left_in = xl >= cxl && xl < cxu;
                let right_in = xu >= cxl && xu < cxu;
                let cell = &mut self.cells[self.spec.cell_index(cx, cy)];
                // Corners located in this cell.
                let mut corners = 0.0;
                for (ex, ey) in [
                    (left_in, bottom_in),
                    (left_in, top_in),
                    (right_in, bottom_in),
                    (right_in, top_in),
                ] {
                    if ex && ey {
                        corners += 1.0;
                    }
                }
                cell.corners += sign * corners;
                cell.area += sign * clip_x * clip_y;
                // Horizontal edges (y = yl and y = yu) clipped to the cell.
                if bottom_in {
                    cell.h_len += sign * clip_x;
                }
                if top_in {
                    cell.h_len += sign * clip_x;
                }
                // Vertical edges (x = xl and x = xu) clipped to the cell.
                if left_in {
                    cell.v_len += sign * clip_y;
                }
                if right_in {
                    cell.v_len += sign * clip_y;
                }
            }
        }
    }

    /// Estimates the join cardinality `|R ⋈_o S|` against another histogram
    /// on the same grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn estimate_join(&self, other: &GeometricHistogram) -> f64 {
        assert_eq!(self.spec, other.spec, "histograms on different grids");
        let cell_area = (self.spec.cell_width() * self.spec.cell_width()) as f64;
        let mut four_count = 0.0;
        for (a, b) in self.cells.iter().zip(other.cells.iter()) {
            four_count +=
                (a.corners * b.area + b.corners * a.area + a.h_len * b.v_len + a.v_len * b.h_len)
                    / cell_area;
        }
        (four_count / 4.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::SyntheticSpec;
    use geometry::rect2;

    #[test]
    fn memory_accounting_matches_paper() {
        // "a Geometric Histogram of level L uses 4^(L+1) units of memory"
        assert_eq!(GeometricHistogram::words_at_level(6), 4u64.pow(7));
        let gh = GeometricHistogram::new(GridSpec::new(10, 3));
        assert_eq!(gh.memory_words(), 4 * 64);
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut gh = GeometricHistogram::new(GridSpec::new(8, 3));
        let rects = [
            rect2(0, 100, 5, 200),
            rect2(30, 40, 30, 40),
            rect2(0, 255, 0, 255),
        ];
        for r in &rects {
            gh.insert(r);
        }
        for r in &rects {
            gh.delete(r);
        }
        assert!(gh.is_empty());
        let empty = GeometricHistogram::new(GridSpec::new(8, 3));
        for (a, b) in gh.cells.iter().zip(empty.cells.iter()) {
            assert!((a.corners - b.corners).abs() < 1e-9);
            assert!((a.area - b.area).abs() < 1e-9);
            assert!((a.h_len - b.h_len).abs() < 1e-9);
            assert!((a.v_len - b.v_len).abs() < 1e-9);
        }
    }

    #[test]
    fn aggregates_sum_to_object_totals() {
        // Summing any aggregate over all cells must equal the object's
        // global total, regardless of how the grid slices it.
        let mut gh = GeometricHistogram::new(GridSpec::new(8, 4));
        let r = rect2(13, 200, 7, 101);
        gh.insert(&r);
        let corners: f64 = gh.cells.iter().map(|c| c.corners).sum();
        let area: f64 = gh.cells.iter().map(|c| c.area).sum();
        let h: f64 = gh.cells.iter().map(|c| c.h_len).sum();
        let v: f64 = gh.cells.iter().map(|c| c.v_len).sum();
        assert_eq!(corners, 4.0);
        let w = (200 - 13) as f64;
        let hgt = (101 - 7) as f64;
        assert!((area - w * hgt).abs() < 1e-9);
        assert!((h - 2.0 * w).abs() < 1e-9);
        assert!((v - 2.0 * hgt).abs() < 1e-9);
    }

    #[test]
    fn join_estimate_reasonable_on_uniform_data() {
        let spec_r = SyntheticSpec::paper(800, 10, 0.0, 21);
        let spec_s = SyntheticSpec::paper(800, 10, 0.0, 22);
        let r: Vec<geometry::HyperRect<2>> = spec_r.generate();
        let s: Vec<geometry::HyperRect<2>> = spec_s.generate();
        let truth = exact::rect_join_count(&r, &s) as f64;
        assert!(truth > 0.0);
        let grid = GridSpec::new(10, 4);
        let mut gh_r = GeometricHistogram::new(grid);
        let mut gh_s = GeometricHistogram::new(grid);
        for x in &r {
            gh_r.insert(x);
        }
        for x in &s {
            gh_s.insert(x);
        }
        let est = gh_r.estimate_join(&gh_s);
        let rel = (est - truth).abs() / truth;
        assert!(
            rel < 0.35,
            "GH should be accurate on uniform data: est {est} truth {truth} rel {rel}"
        );
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn mismatched_grids_rejected() {
        let a = GeometricHistogram::new(GridSpec::new(8, 3));
        let b = GeometricHistogram::new(GridSpec::new(8, 4));
        let _ = a.estimate_join(&b);
    }

    #[test]
    #[should_panic(expected = "outside histogram domain")]
    fn out_of_domain_rejected() {
        let mut gh = GeometricHistogram::new(GridSpec::new(8, 3));
        gh.insert(&rect2(0, 300, 0, 10));
    }
}

//! Arithmetic in `GF(2)[x]` and the finite fields GF(2^k).
//!
//! The BCH construction of four-wise independent random variables
//! ([`crate::bch`]) needs to compute `i^3` where `i` is interpreted as an
//! element of GF(2^k). This module provides the required carry-less
//! polynomial arithmetic:
//!
//! * [`clmul`] — carry-less (XOR) multiplication of two binary polynomials,
//! * [`poly_rem`] / [`GfContext::reduce`] — remainder modulo a fixed
//!   irreducible polynomial,
//! * [`is_irreducible`] — Rabin's irreducibility test,
//! * [`find_irreducible`] — deterministic search for the lexicographically
//!   smallest irreducible polynomial of a given degree.
//!
//! Polynomials over GF(2) are represented as integers: bit `j` of the integer
//! is the coefficient of `x^j`. A degree-`k` field modulus is stored with its
//! leading bit set, e.g. `x^3 + x + 1` is `0b1011`. Degrees up to 63 are
//! supported, which covers node-identifier domains of up to 2^63 values —
//! far beyond anything a sketch over spatial data needs.

/// Maximum supported field degree. A `GfContext` of degree `k` operates on
/// elements with `k` bits, so indices must fit in 63 bits.
pub const MAX_DEGREE: u32 = 63;

/// Carry-less multiplication of two binary polynomials of degree < 64.
///
/// The result is the XOR-convolution of the operands and has degree up to 126,
/// hence the `u128` return type.
#[inline]
pub fn clmul(a: u64, b: u64) -> u128 {
    // Iterate over the set bits of the sparser operand; each set bit of `a`
    // contributes a shifted copy of `b`.
    let (mut a, b) = if a.count_ones() <= b.count_ones() {
        (a, b)
    } else {
        (b, a)
    };
    let mut acc: u128 = 0;
    while a != 0 {
        let i = a.trailing_zeros();
        acc ^= (b as u128) << i;
        a &= a - 1;
    }
    acc
}

/// Degree of a nonzero binary polynomial (`None` for the zero polynomial).
#[inline]
pub fn poly_degree(p: u128) -> Option<u32> {
    if p == 0 {
        None
    } else {
        Some(127 - p.leading_zeros())
    }
}

/// Remainder of `a` modulo the binary polynomial `m` (which must be nonzero).
#[inline]
pub fn poly_rem(mut a: u128, m: u128) -> u128 {
    let dm = poly_degree(m).expect("modulus must be nonzero");
    while let Some(da) = poly_degree(a) {
        if da < dm {
            break;
        }
        a ^= m << (da - dm);
    }
    a
}

/// Greatest common divisor of two binary polynomials.
pub fn poly_gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = poly_rem(a, b);
        a = b;
        b = r;
    }
    a
}

/// A context for arithmetic in `GF(2^k) = GF(2)[x] / (modulus)`.
///
/// The modulus is an irreducible polynomial of degree `k`, stored with its
/// leading `x^k` bit set. Field elements are `u64` values with all bits above
/// `k` clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GfContext {
    /// Field degree `k`; the field has `2^k` elements.
    degree: u32,
    /// Irreducible modulus, including the leading bit (`degree + 1` bits).
    modulus: u64,
}

impl GfContext {
    /// Creates a context for GF(2^k), finding the canonical (smallest)
    /// irreducible modulus of degree `k` deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> Self {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "GF(2^k) degree must be in 1..={MAX_DEGREE}, got {degree}"
        );
        let modulus = find_irreducible(degree);
        Self { degree, modulus }
    }

    /// Creates a context with an explicit modulus, verifying irreducibility.
    pub fn with_modulus(degree: u32, modulus: u64) -> Option<Self> {
        if degree == 0 || degree > MAX_DEGREE {
            return None;
        }
        if poly_degree(modulus as u128) != Some(degree) || !is_irreducible(modulus, degree) {
            return None;
        }
        Some(Self { degree, modulus })
    }

    /// Field degree `k`.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The irreducible modulus (with leading bit set).
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Number of elements in the field, `2^k` (saturating at `u64::MAX` is
    /// unnecessary because `k <= 63`).
    #[inline]
    pub fn order(&self) -> u64 {
        1u64 << self.degree
    }

    /// Reduces a product polynomial into the field.
    #[inline]
    pub fn reduce(&self, a: u128) -> u64 {
        poly_rem(a, self.modulus as u128) as u64
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.order() && b < self.order());
        self.reduce(clmul(a, b))
    }

    /// Field squaring.
    #[inline]
    pub fn square(&self, a: u64) -> u64 {
        self.mul(a, a)
    }

    /// Field cube, `a^3`. This is the only power the BCH family needs.
    #[inline]
    pub fn cube(&self, a: u64) -> u64 {
        self.mul(self.square(a), a)
    }

    /// Field exponentiation by squaring (used in tests and diagnostics).
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.square(base);
            exp >>= 1;
        }
        acc
    }
}

/// Rabin's irreducibility test for a binary polynomial `f` of degree `k`.
///
/// `f` is irreducible over GF(2) iff
/// * `x^(2^k) ≡ x (mod f)`, and
/// * for every prime `p` dividing `k`, `gcd(x^(2^(k/p)) - x, f) = 1`.
pub fn is_irreducible(f: u64, k: u32) -> bool {
    debug_assert_eq!(poly_degree(f as u128), Some(k));
    // A polynomial with zero constant term is divisible by x.
    if k > 0 && f & 1 == 0 {
        return k == 1 && f == 0b10; // the polynomial "x" itself is irreducible
    }
    let fm = f as u128;
    // frob[j] = x^(2^j) mod f, computed by repeated squaring of x.
    let mut cur: u128 = 0b10; // the polynomial x
    let mut frob = Vec::with_capacity(k as usize + 1);
    frob.push(cur); // 2^0
    for _ in 0..k {
        // square cur mod f
        let c = cur as u64; // cur always reduced, degree < k <= 63
        cur = poly_rem(clmul(c, c), fm);
        frob.push(cur);
    }
    // Condition 1: x^(2^k) == x.
    if frob[k as usize] != 0b10 {
        return false;
    }
    // Condition 2: for each prime divisor p of k.
    for p in prime_divisors(k) {
        let e = (k / p) as usize;
        let g = frob[e] ^ 0b10; // x^(2^(k/p)) - x  (subtraction == XOR)
        if poly_gcd(g, fm) != 1 {
            return false;
        }
    }
    true
}

/// Prime divisors of a small integer.
fn prime_divisors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Deterministically finds the smallest irreducible polynomial of degree `k`
/// (by integer value of its representation).
///
/// Irreducible polynomials have density ~1/k among degree-k polynomials, so
/// the search terminates quickly; the result is cached per-process would be
/// unnecessary since contexts are created once per sketch schema.
pub fn find_irreducible(k: u32) -> u64 {
    assert!((1..=MAX_DEGREE).contains(&k));
    if k == 1 {
        return 0b11; // x + 1
    }
    let top = 1u64 << k;
    // Constant term must be 1, otherwise divisible by x.
    let mut c = 1u64;
    while c < top {
        let f = top | c;
        if is_irreducible(f, k) {
            return f;
        }
        c += 2;
    }
    unreachable!("an irreducible polynomial of degree {k} exists");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert_eq!(clmul(0b11, 0b11), 0b101);
        // x * (x^2 + x + 1) = x^3 + x^2 + x
        assert_eq!(clmul(0b10, 0b111), 0b1110);
        assert_eq!(clmul(0, 0b1011), 0);
        assert_eq!(clmul(1, 0b1011), 0b1011);
    }

    #[test]
    fn clmul_is_commutative_and_distributive() {
        let xs = [0u64, 1, 2, 3, 0b1011, 0xdead_beef, u32::MAX as u64];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(clmul(a, b), clmul(b, a));
                for &c in &xs {
                    assert_eq!(clmul(a, b ^ c), clmul(a, b) ^ clmul(a, c));
                }
            }
        }
    }

    #[test]
    fn poly_rem_examples() {
        // x^2 mod (x^2 + x + 1) = x + 1
        assert_eq!(poly_rem(0b100, 0b111), 0b11);
        // x^3 mod (x^3 + x + 1) = x + 1
        assert_eq!(poly_rem(0b1000, 0b1011), 0b011);
        assert_eq!(poly_rem(0b10, 0b111), 0b10);
    }

    #[test]
    fn degree_and_gcd() {
        assert_eq!(poly_degree(0), None);
        assert_eq!(poly_degree(1), Some(0));
        assert_eq!(poly_degree(0b1000), Some(3));
        // gcd(x^2 + 1, x + 1) = x + 1  since x^2+1 = (x+1)^2 over GF(2)
        assert_eq!(poly_gcd(0b101, 0b11), 0b11);
        // coprime polynomials
        assert_eq!(poly_gcd(0b111, 0b11), 1);
    }

    #[test]
    fn known_irreducibles() {
        // Classical low-degree irreducible polynomials over GF(2).
        assert!(is_irreducible(0b111, 2)); // x^2+x+1
        assert!(is_irreducible(0b1011, 3)); // x^3+x+1
        assert!(is_irreducible(0b1101, 3)); // x^3+x^2+1
        assert!(is_irreducible(0b10011, 4)); // x^4+x+1
        assert!(is_irreducible((1 << 8) | 0b11011, 8)); // AES poly x^8+x^4+x^3+x+1
                                                        // Reducible examples.
        assert!(!is_irreducible(0b101, 2)); // x^2+1 = (x+1)^2
        assert!(!is_irreducible(0b1111, 3)); // x^3+x^2+x+1 = (x+1)(x^2+1)
    }

    #[test]
    fn cyclotomic_degree4_is_irreducible() {
        // x^4+x^3+x^2+x+1 is irreducible over GF(2) (2 is a primitive root mod 5).
        assert!(is_irreducible(0b11111, 4));
    }

    #[test]
    fn find_irreducible_brute_force_check() {
        // Verify against brute-force trial division for small degrees.
        for k in 1..=12u32 {
            let f = find_irreducible(k);
            assert_eq!(poly_degree(f as u128), Some(k));
            // trial division by all polynomials of degree 1..=k/2
            let mut divisible = false;
            for d in 2u64..(1 << (k / 2 + 1)) {
                if poly_degree(d as u128).unwrap() > k / 2 {
                    continue;
                }
                if d > 1 && poly_rem(f as u128, d as u128) == 0 && (d as u128) != (f as u128) {
                    divisible = true;
                    break;
                }
            }
            assert!(!divisible, "find_irreducible({k}) = {f:#b} is reducible");
        }
    }

    #[test]
    fn field_axioms_small() {
        for k in [2u32, 3, 4, 5, 8] {
            let gf = GfContext::new(k);
            let n = gf.order();
            // multiplicative identity and commutativity/associativity spot checks
            for a in 0..n.min(64) {
                assert_eq!(gf.mul(a, 1), a);
                assert_eq!(gf.mul(1, a), a);
                for b in 0..n.min(32) {
                    assert_eq!(gf.mul(a, b), gf.mul(b, a));
                    for c in [3u64 % n, 7 % n, (n - 1) % n] {
                        assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                    }
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_is_invertible() {
        // In a field, a^(2^k - 1) = 1 for nonzero a.
        for k in [3u32, 5, 8, 11] {
            let gf = GfContext::new(k);
            let n = gf.order();
            let step = (n / 97).max(1);
            let mut a = 1;
            while a < n {
                assert_eq!(gf.pow(a, n - 1), 1, "k={k} a={a}");
                a += step;
            }
        }
    }

    #[test]
    fn cube_matches_pow() {
        for k in [4u32, 9, 16, 21, 33] {
            let gf = GfContext::new(k);
            let n = gf.order();
            for a in [0u64, 1, 2, 5, n / 3, n / 2, n - 1] {
                assert_eq!(gf.cube(a), gf.pow(a, 3), "k={k} a={a}");
            }
        }
    }

    #[test]
    fn cube_is_injective_on_small_fields_of_odd_order_group() {
        // The cube map x -> x^3 is a bijection on GF(2^k)* iff gcd(3, 2^k-1)=1,
        // i.e. iff k is odd. Verify for k=5.
        let gf = GfContext::new(5);
        let mut seen = std::collections::HashSet::new();
        for a in 0..gf.order() {
            seen.insert(gf.cube(a));
        }
        assert_eq!(seen.len() as u64, gf.order());
    }

    #[test]
    fn with_modulus_rejects_reducible() {
        assert!(GfContext::with_modulus(2, 0b101).is_none());
        assert!(GfContext::with_modulus(3, 0b1011).is_some());
        assert!(GfContext::with_modulus(3, 0b111).is_none()); // degree mismatch
    }

    #[test]
    fn contexts_up_to_max_degree() {
        for k in [1u32, 13, 32, 34, 48, MAX_DEGREE] {
            let gf = GfContext::new(k);
            assert_eq!(poly_degree(gf.modulus() as u128), Some(k));
            // smoke: cube of a mid-range element stays in the field
            let a = (gf.order() - 1) / 3 + 1;
            assert!(gf.cube(a) < gf.order());
        }
    }
}

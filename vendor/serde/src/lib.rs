//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal serialization framework exposing the *API shape* of serde that
//! this codebase uses: the [`Serialize`] / [`Deserialize`] traits (with
//! derive macros of the same names), the [`Serializer`] / [`Deserializer`]
//! driver traits that `geometry`'s manual `HyperRect` impls are written
//! against, and `de::Error::invalid_length` / `ser::Error::custom`.
//!
//! Unlike real serde there is a single concrete data model: every value
//! serializes into a [`Value`] tree (see [`ser::to_value`]) which formats
//! losslessly as JSON via the vendored `serde_json`. That is exactly the
//! pipeline `sketch::persist` and the bench reports need. Swapping back to
//! the real crates is a workspace-manifest change; the derive input shapes
//! supported here (named-field structs, unit/newtype enum variants) encode
//! identically under real `serde_json`.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;
mod value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

//! Range-query selectivity estimation (Section 6.4).
//!
//! A range query is a join with a singleton relation, but the paper's
//! optimized estimator stores only two atomic sketches per dimension pair —
//! `X_I` (whole intervals) and `X_U` (upper endpoints) — and evaluates the
//! query side *deterministically* at estimation time:
//!
//! ```text
//! Z = ξ̄[u,v] · X_U + ξ̄[v] · X_I          (Lemma 9, one dimension)
//! ```
//!
//! An interval `[a, b]` overlaps `q = [u, v]` iff (`b ∈ [u, v]`) xor
//! (`v ∈ [a, b]`) under Assumption 1; the two mutually exclusive events are
//! counted by the two terms. In d dimensions the per-dimension factor is
//! multiplied out over `{I, U}^d` (Section 6.4: "replace X_E with X_U").
//!
//! The module also provides *stabbing counts* (`#{r : p ∈ r}`, closed): the
//! all-`I` word paired with the query point's covers, which is exact without
//! any endpoint assumption.

use crate::atomic::{EndpointPolicy, SketchSet};
use crate::boost::Estimate;
use crate::comp::{Comp, Word};
use crate::error::{Result, SketchError};
use crate::estimators::SketchConfig;
use crate::schema::{DimSpec, SketchSchema};
use dyadic::{interval_cover, point_cover};
use fourwise::IndexPre;
use geometry::transform::{shrink_interval, triple};
use geometry::{HyperRect, Interval, Point};
use rand::Rng;
use std::sync::Arc;

/// How the estimator deals with query/data endpoint coincidences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeStrategy {
    /// Raw domain; unbiased when the query shares no endpoint coordinate
    /// with the data (Assumption 1 between data and query).
    AssumeDistinct,
    /// Section 5.2 transform: data tripled, query shrunk at estimate time;
    /// unbiased for arbitrary queries.
    Transform,
}

/// Estimator for `|Q(q, R)|` (Definition 3) over one maintained sketch.
#[derive(Debug, Clone)]
pub struct RangeQuery<const D: usize> {
    schema: Arc<SketchSchema<D>>,
    words: Arc<Vec<Word<D>>>,
    strategy: RangeStrategy,
}

impl<const D: usize> RangeQuery<D> {
    /// Creates the estimator for data domains of `2^data_bits[i]` values.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        config: SketchConfig,
        data_bits: [u32; D],
        strategy: RangeStrategy,
    ) -> Self {
        let extra = match strategy {
            RangeStrategy::AssumeDistinct => 0,
            RangeStrategy::Transform => 2,
        };
        let dims: [DimSpec; D] = std::array::from_fn(|i| {
            let bits = data_bits[i] + extra;
            match config.max_level {
                Some(ml) => DimSpec::with_max_level(bits, ml),
                None => DimSpec::dyadic(bits),
            }
        });
        let schema = SketchSchema::new(rng, config.kind, config.shape, dims);
        // Words {I, U}^D in mask order (bit set = UpperPoint).
        let mut words = Vec::with_capacity(1 << D);
        for mask in 0..(1u32 << D) {
            let mut w = [Comp::Interval; D];
            for (i, c) in w.iter_mut().enumerate() {
                if mask >> i & 1 == 1 {
                    *c = Comp::UpperPoint;
                }
            }
            words.push(w);
        }
        Self {
            schema,
            words: Arc::new(words),
            strategy,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<SketchSchema<D>> {
        &self.schema
    }

    /// The strategy in use.
    pub fn strategy(&self) -> RangeStrategy {
        self.strategy
    }

    /// Creates the (single) maintained sketch over the data set.
    pub fn new_sketch(&self) -> SketchSet<D> {
        let policy = match self.strategy {
            RangeStrategy::AssumeDistinct => EndpointPolicy::Raw,
            RangeStrategy::Transform => EndpointPolicy::Tripled,
        };
        SketchSet::new(Arc::clone(&self.schema), Arc::clone(&self.words), policy)
    }

    fn check_sketch(&self, sketch: &SketchSet<D>) -> Result<()> {
        if sketch.schema().id() != self.schema.id() {
            return Err(SketchError::SchemaMismatch);
        }
        if **sketch.words() != *self.words {
            return Err(SketchError::WordMismatch);
        }
        Ok(())
    }

    /// Estimates `|Q(q, R)|`: the number of summarized objects whose
    /// intersection with `q` is full-dimensional.
    ///
    /// Degenerate queries select nothing under Definition 3 and return a
    /// zero estimate; use [`RangeQuery::estimate_stab`] for stabbing counts.
    #[allow(clippy::needless_range_loop)] // indexes several parallel per-dim arrays
    pub fn estimate(&self, sketch: &SketchSet<D>, q: &HyperRect<D>) -> Result<Estimate> {
        self.check_sketch(sketch)?;
        for dim in 0..D {
            let max = (1u64 << sketch.data_bits()[dim]) - 1;
            if q.range(dim).hi() > max {
                return Err(SketchError::DomainOverflow {
                    coord: q.range(dim).hi(),
                    max,
                    dim,
                });
            }
        }
        let shape = self.schema.shape();
        if q.is_degenerate() {
            return Ok(Estimate::from_grid(
                &vec![0.0; shape.instances()],
                shape.k1,
                shape.k2,
            ));
        }
        // Per-dimension query node lists (shared across instances).
        let mut cover_pres: Vec<Vec<IndexPre>> = Vec::with_capacity(D);
        let mut pcover_pres: Vec<Vec<IndexPre>> = Vec::with_capacity(D);
        for dim in 0..D {
            let geo: Interval = match self.strategy {
                RangeStrategy::AssumeDistinct => q.range(dim),
                RangeStrategy::Transform => {
                    shrink_interval(&q.range(dim)).expect("degenerate handled above")
                }
            };
            let dyadic = &self.schema.dyadic()[dim];
            let ctx = &self.schema.xi_ctx()[dim];
            let ml = self.schema.dims()[dim].max_level;
            cover_pres.push(
                interval_cover(dyadic, &geo, ml)
                    .into_iter()
                    .map(|id| ctx.precompute(id))
                    .collect(),
            );
            pcover_pres.push(
                point_cover(dyadic, geo.hi(), ml)
                    .into_iter()
                    .map(|id| ctx.precompute(id))
                    .collect(),
            );
        }

        let mut atomic = Vec::with_capacity(shape.instances());
        for inst in 0..shape.instances() {
            let seeds = self.schema.instance_seeds(inst);
            let mut q_i = [0i64; D]; // ξ̄ over the query interval cover
            let mut q_p = [0i64; D]; // ξ̄ over the query upper endpoint cover
            for dim in 0..D {
                let fam = self.schema.xi_ctx()[dim].family(seeds[dim]);
                q_i[dim] = fam.sum_pre(&cover_pres[dim]);
                q_p[dim] = fam.sum_pre(&pcover_pres[dim]);
            }
            let counters = sketch.instance_counters(inst);
            let mut z = 0.0f64;
            for (mask, &x_w) in counters.iter().enumerate() {
                // Word bit set = UpperPoint sketch component, which pairs
                // with the query's *interval* value; Interval components
                // pair with the query's upper-endpoint value.
                let mut qprod: i64 = 1;
                for dim in 0..D {
                    qprod *= if mask >> dim & 1 == 1 {
                        q_i[dim]
                    } else {
                        q_p[dim]
                    };
                }
                z += (qprod as i128 * x_w as i128) as f64;
            }
            atomic.push(z);
        }
        Ok(Estimate::from_grid(&atomic, shape.k1, shape.k2))
    }

    /// Estimates the stabbing count `#{r ∈ R : p ∈ r}` (closed containment;
    /// exact in expectation with no endpoint assumption).
    #[allow(clippy::needless_range_loop)] // indexes several parallel per-dim arrays
    pub fn estimate_stab(&self, sketch: &SketchSet<D>, p: &Point<D>) -> Result<Estimate> {
        self.check_sketch(sketch)?;
        for dim in 0..D {
            let max = (1u64 << sketch.data_bits()[dim]) - 1;
            if p[dim] > max {
                return Err(SketchError::DomainOverflow {
                    coord: p[dim],
                    max,
                    dim,
                });
            }
        }
        let mut pcover_pres: Vec<Vec<IndexPre>> = Vec::with_capacity(D);
        for dim in 0..D {
            let coord = match self.strategy {
                RangeStrategy::AssumeDistinct => p[dim],
                RangeStrategy::Transform => triple(p[dim]),
            };
            let dyadic = &self.schema.dyadic()[dim];
            let ctx = &self.schema.xi_ctx()[dim];
            let ml = self.schema.dims()[dim].max_level;
            pcover_pres.push(
                point_cover(dyadic, coord, ml)
                    .into_iter()
                    .map(|id| ctx.precompute(id))
                    .collect(),
            );
        }
        let shape = self.schema.shape();
        let all_interval_word = 0usize; // mask 0 = Interval in every dim
        let mut atomic = Vec::with_capacity(shape.instances());
        for inst in 0..shape.instances() {
            let seeds = self.schema.instance_seeds(inst);
            let mut qprod: i64 = 1;
            for dim in 0..D {
                let fam = self.schema.xi_ctx()[dim].family(seeds[dim]);
                qprod *= fam.sum_pre(&pcover_pres[dim]);
            }
            let x_w = sketch.instance_counters(inst)[all_interval_word];
            atomic.push((qprod as i128 * x_w as i128) as f64);
        }
        Ok(Estimate::from_grid(&atomic, shape.k1, shape.k2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::rect2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data_1d(seed: u64, n: usize, domain: u64) -> Vec<HyperRect<1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let lo = rng.gen_range(0..domain - 16);
                Interval::new(lo, lo + rng.gen_range(1..16u64)).into()
            })
            .collect()
    }

    /// Mean/SE over repeated estimation with fresh schemas (the query side
    /// is deterministic per schema, so unbiasedness must be measured across
    /// instances of one schema — row means of a wide flat schema work).
    fn flat_estimate<const D: usize>(
        rq: &RangeQuery<D>,
        sketch: &SketchSet<D>,
        q: &HyperRect<D>,
    ) -> (f64, f64) {
        let est = rq.estimate(sketch, q).unwrap();
        let n = est.row_means.len() as f64;
        let mean = est.row_means.iter().sum::<f64>() / n;
        let var = est
            .row_means
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    #[test]
    fn range_count_unbiased_transform() {
        let mut rng = StdRng::seed_from_u64(70);
        // k1 = 1 so each row mean is a raw instance: gives us SE over rows.
        let rq = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(1, 1500),
            [8],
            RangeStrategy::Transform,
        );
        let data = data_1d(3, 60, 256);
        let mut sk = rq.new_sketch();
        for r in &data {
            sk.insert(r).unwrap();
        }
        // Query sharing endpoints with data on purpose.
        let q: HyperRect<1> = data[5].range(0).into();
        let truth = exact::naive::range_count(&data, &q) as f64;
        assert!(truth > 0.0);
        let (mean, se) = flat_estimate(&rq, &sk, &q);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn range_count_2d_unbiased() {
        let mut rng = StdRng::seed_from_u64(71);
        let rq = RangeQuery::<2>::new(
            &mut rng,
            SketchConfig::new(1, 1200),
            [6, 6],
            RangeStrategy::Transform,
        );
        let mut data = Vec::new();
        let mut grng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let x = grng.gen_range(0..50u64);
            let y = grng.gen_range(0..50u64);
            data.push(rect2(
                x,
                x + grng.gen_range(1u64..10),
                y,
                y + grng.gen_range(1u64..10),
            ));
        }
        let mut sk = rq.new_sketch();
        for r in &data {
            sk.insert(r).unwrap();
        }
        let q = rect2(10, 30, 15, 40);
        let truth = exact::naive::range_count(&data, &q) as f64;
        assert!(truth > 0.0);
        let (mean, se) = flat_estimate(&rq, &sk, &q);
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn stab_count_exact_in_expectation() {
        let mut rng = StdRng::seed_from_u64(72);
        let rq = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(1, 1500),
            [8],
            RangeStrategy::AssumeDistinct,
        );
        let data = data_1d(9, 50, 256);
        let mut sk = rq.new_sketch();
        for r in &data {
            sk.insert(r).unwrap();
        }
        // Stab at a data endpoint (shared coordinate) — closed semantics.
        let p = [data[7].range(0).lo()];
        let truth = data.iter().filter(|r| r.range(0).contains(p[0])).count() as f64;
        let est = rq.estimate_stab(&sk, &p).unwrap();
        let n = est.row_means.len() as f64;
        let mean = est.row_means.iter().sum::<f64>() / n;
        let var = est
            .row_means
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1.0);
        let se = (var / n).sqrt();
        assert!(
            (mean - truth).abs() <= 6.0 * se + 1e-9,
            "mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn degenerate_query_returns_zero() {
        let mut rng = StdRng::seed_from_u64(73);
        let rq = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            RangeStrategy::Transform,
        );
        let mut sk = rq.new_sketch();
        sk.insert(&Interval::new(10, 50).into()).unwrap();
        let q: HyperRect<1> = Interval::point(20).into();
        let est = rq.estimate(&sk, &q).unwrap();
        assert_eq!(est.value, 0.0);
    }

    #[test]
    fn rejects_wrong_sketch_and_oob_query() {
        let mut rng = StdRng::seed_from_u64(74);
        let rq1 = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            RangeStrategy::AssumeDistinct,
        );
        let rq2 = RangeQuery::<1>::new(
            &mut rng,
            SketchConfig::new(4, 3),
            [8],
            RangeStrategy::AssumeDistinct,
        );
        let sk = rq1.new_sketch();
        assert!(matches!(
            rq2.estimate(&sk, &Interval::new(0, 5).into()),
            Err(SketchError::SchemaMismatch)
        ));
        assert!(matches!(
            rq1.estimate(&sk, &Interval::new(0, 500).into()),
            Err(SketchError::DomainOverflow { .. })
        ));
    }
}

//! Snapshot-seeded replicas with log catch-up, and the health view that
//! fails queries over to one.
//!
//! A [`Replica`] is a follower copy of a primary [`ShardedStore`]. Its
//! lifecycle is a three-state machine:
//!
//! ```text
//!          install_snapshot            catch_up (tail applied)
//!   Cold ───────────────────▶ CatchingUp ─────────────────────▶ Serving
//!    ▲                                                             │
//!    └─────────────── catch_up finds the log truncated ◀───────────┘
//!                     (snapshot too old — re-seed)
//! ```
//!
//! * **Cold** — no usable state. Seeding restores a [`StoreSnapshot`]
//!   *against the cluster's shared schema*
//!   ([`ShardedStore::restore_with_schema`]), so a snapshot from the wrong
//!   universe fails loudly instead of corrupting answers.
//! * **Catching up** — the replica holds the snapshot's state and tails
//!   the primary's bounded update log ([`sketch::LogRetention::Entries`])
//!   from the snapshot's epoch. Entries re-apply through the replica's own
//!   ingest path; linearity makes the result bit-identical to the
//!   primary's counter fold, even though the replica's private epoch
//!   numbering (and, after a primary-side rebalance, its topology) may
//!   differ.
//! * **Serving** — caught up through the last tailed entry; eligible as a
//!   failover target. A later `catch_up` keeps it current; if the primary
//!   truncated past the replica's position, the replica demotes itself to
//!   Cold and must re-seed from a fresh snapshot.
//!
//! [`ReplicaSet`] is the router-side health view over a primary and its
//! replicas: queries go to the lowest-indexed member marked up (member 0
//! is the primary, so recovery fails *back* automatically), and each
//! loss of the active member counts one failover.

use crate::store::{ShardedStore, StoreSnapshot};
use sketch::{Result, SketchSchema};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a [`Replica`] is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// No usable state; needs a snapshot.
    Cold,
    /// Snapshot installed; tailing the primary's log.
    CatchingUp,
    /// Applied every tailed entry; eligible for failover.
    Serving,
}

/// A follower copy of a primary [`ShardedStore`]; see the module docs for
/// the state machine.
#[derive(Debug)]
pub struct Replica<const D: usize> {
    store: Option<Arc<ShardedStore<D>>>,
    /// Highest **primary** epoch whose updates this replica has applied
    /// (snapshot epoch, then advanced per tailed entry). Distinct from the
    /// replica store's own epoch counter.
    applied: u64,
    state: ReplicaState,
}

impl<const D: usize> Replica<D> {
    /// A cold replica awaiting its first snapshot.
    pub fn cold() -> Self {
        Self {
            store: None,
            applied: 0,
            state: ReplicaState::Cold,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Highest primary epoch applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The replica's store, once seeded.
    pub fn store(&self) -> Option<&Arc<ShardedStore<D>>> {
        self.store.as_ref()
    }

    /// Seeds (or re-seeds) the replica from a snapshot, validated against
    /// the cluster's shared `schema` — `Cold → CatchingUp`. On error the
    /// replica keeps its previous state untouched.
    pub fn install_snapshot(
        &mut self,
        snap: &StoreSnapshot,
        schema: Arc<SketchSchema<D>>,
    ) -> Result<()> {
        let store = ShardedStore::restore_with_schema(snap, schema)?;
        self.store = Some(Arc::new(store));
        self.applied = snap.epoch();
        self.state = ReplicaState::CatchingUp;
        Ok(())
    }

    /// Tails `primary`'s update log from the last applied epoch and
    /// re-applies every new entry — `CatchingUp → Serving` (and keeps a
    /// serving replica current). Returns how many entries were applied.
    ///
    /// If the primary's log has been truncated past this replica's
    /// position, the replica demotes itself to `Cold` (its state is intact
    /// but can no longer provably converge) and returns the truncation
    /// error: the caller must re-seed from a fresh snapshot.
    pub fn catch_up(&mut self, primary: &ShardedStore<D>) -> Result<usize> {
        let store = self
            .store
            .as_ref()
            .ok_or(sketch::SketchError::InvalidParameter(
                "cold replica has no store to catch up",
            ))?;
        let tail = match primary.log().tail_since(self.applied) {
            Ok(tail) => tail,
            Err(e) => {
                self.state = ReplicaState::Cold;
                return Err(e);
            }
        };
        for entry in &tail {
            store.update_slice(entry.rects(), entry.delta())?;
            self.applied = entry.epoch();
        }
        self.state = ReplicaState::Serving;
        Ok(tail.len())
    }
}

/// One member of a [`ReplicaSet`]: a store plus its liveness flag.
#[derive(Debug)]
struct Member<const D: usize> {
    store: Arc<ShardedStore<D>>,
    up: AtomicBool,
}

/// The router-side health view over a primary (member 0) and its caught-up
/// replicas: [`ReplicaSet::serving`] names the store queries should hit,
/// failing over — and back — as members are marked down and up.
#[derive(Debug)]
pub struct ReplicaSet<const D: usize> {
    members: Vec<Member<D>>,
    /// Lowest-indexed member believed up (queries prefer the primary).
    active: AtomicUsize,
    failovers: AtomicU64,
}

impl<const D: usize> ReplicaSet<D> {
    /// A set containing only the primary.
    pub fn new(primary: Arc<ShardedStore<D>>) -> Self {
        Self {
            members: vec![Member {
                store: primary,
                up: AtomicBool::new(true),
            }],
            active: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
        }
    }

    /// Registers a caught-up replica as a failover target (build-time;
    /// the set's membership is fixed once serving starts).
    pub fn add_replica(&mut self, store: Arc<ShardedStore<D>>) {
        self.members.push(Member {
            store,
            up: AtomicBool::new(true),
        });
    }

    /// Number of members (primary included).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false — a set carries at least its primary.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether member `i` is currently marked up.
    pub fn is_up(&self, i: usize) -> bool {
        self.members[i].up.load(Ordering::Acquire)
    }

    /// Failovers so far: how many times the active member was lost and
    /// queries moved to another.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Marks member `i` down (health prober or a failed query path). If it
    /// was the active member, the next up member takes over and one
    /// failover is counted.
    pub fn mark_down(&self, i: usize) {
        self.members[i].up.store(false, Ordering::Release);
        if self.active.load(Ordering::Acquire) == i {
            let next = self.first_up();
            self.active
                .store(next.unwrap_or(self.members.len()), Ordering::Release);
            self.failovers.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks member `i` up again. A recovered member with a lower index
    /// than the active one takes back over (queries prefer the primary).
    pub fn mark_up(&self, i: usize) {
        self.members[i].up.store(true, Ordering::Release);
        if i < self.active.load(Ordering::Acquire) {
            self.active.store(i, Ordering::Release);
        }
    }

    /// The member queries should hit: the lowest-indexed up member, or
    /// `None` if everything is down.
    pub fn serving(&self) -> Option<(usize, &Arc<ShardedStore<D>>)> {
        let a = self.active.load(Ordering::Acquire);
        if a < self.members.len() && self.members[a].up.load(Ordering::Acquire) {
            return Some((a, &self.members[a].store));
        }
        let i = self.first_up()?;
        Some((i, &self.members[i].store))
    }

    /// Per-member liveness, primary first.
    pub fn health(&self) -> Vec<bool> {
        self.members
            .iter()
            .map(|m| m.up.load(Ordering::Acquire))
            .collect()
    }

    fn first_up(&self) -> Option<usize> {
        self.members
            .iter()
            .position(|m| m.up.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{rect2, HyperRect};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use sketch::{
        ie_words, BoostShape, DimSpec, EndpointPolicy, LogRetention, SketchSchema, SketchSet,
    };

    fn primary(seed: u64, window: usize) -> ShardedStore<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = SketchSchema::<2>::new(
            &mut rng,
            fourwise::XiKind::Bch,
            BoostShape::new(13, 3),
            [DimSpec::dyadic(8); 2],
        );
        ShardedStore::new(schema, Arc::new(ie_words::<2>()), EndpointPolicy::Raw, 3)
            .with_log(LogRetention::Entries(window))
    }

    fn rects(n: usize, seed: u64) -> Vec<HyperRect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0..200u64);
                let y = rng.gen_range(0..200u64);
                rect2(
                    x,
                    x + rng.gen_range(1..50u64),
                    y,
                    y + rng.gen_range(1..50u64),
                )
            })
            .collect()
    }

    fn fold(st: &ShardedStore<2>) -> SketchSet<2> {
        let mut merged = st.empty_sketch();
        for s in st.load().shards() {
            merged.merge_from(s.sketch()).unwrap();
        }
        merged
    }

    fn assert_converged(replica: &Replica<2>, primary: &ShardedStore<2>) {
        let (a, b) = (fold(replica.store().unwrap()), fold(primary));
        assert_eq!(a.len(), b.len());
        for inst in 0..primary.schema().instances() {
            assert_eq!(a.instance_counters(inst), b.instance_counters(inst));
        }
    }

    #[test]
    fn replica_walks_cold_to_serving_and_converges() {
        let p = primary(1, 64);
        p.insert_slice(&rects(50, 2)).unwrap();

        let mut r = Replica::<2>::cold();
        assert_eq!(r.state(), ReplicaState::Cold);
        assert!(r.catch_up(&p).is_err(), "cold replicas cannot tail");

        r.install_snapshot(&p.snapshot(), Arc::clone(p.schema()))
            .unwrap();
        assert_eq!(r.state(), ReplicaState::CatchingUp);

        // Primary keeps moving while the replica restores.
        let more = rects(30, 3);
        p.insert_slice(&more).unwrap();
        p.delete_slice(&more[..10]).unwrap();

        assert_eq!(r.catch_up(&p).unwrap(), 2);
        assert_eq!(r.state(), ReplicaState::Serving);
        assert_converged(&r, &p);

        // Idle catch-up is a no-op; further updates keep it current.
        assert_eq!(r.catch_up(&p).unwrap(), 0);
        p.insert_slice(&rects(5, 4)).unwrap();
        assert_eq!(r.catch_up(&p).unwrap(), 1);
        assert_converged(&r, &p);
    }

    #[test]
    fn truncation_demotes_to_cold_and_reseeding_recovers() {
        let p = primary(5, 2); // tiny window
        p.insert_slice(&rects(10, 6)).unwrap();
        let mut r = Replica::<2>::cold();
        r.install_snapshot(&p.snapshot(), Arc::clone(p.schema()))
            .unwrap();
        // Push the log window past the replica's snapshot.
        for i in 0..4u64 {
            p.insert_slice(&rects(5, 100 + i)).unwrap();
        }
        assert!(r.catch_up(&p).is_err());
        assert_eq!(r.state(), ReplicaState::Cold);
        // A fresh snapshot re-seeds it.
        r.install_snapshot(&p.snapshot(), Arc::clone(p.schema()))
            .unwrap();
        assert_eq!(r.catch_up(&p).unwrap(), 0);
        assert_eq!(r.state(), ReplicaState::Serving);
        assert_converged(&r, &p);
    }

    #[test]
    fn replica_set_fails_over_and_back() {
        let p = Arc::new(primary(7, 64));
        p.insert_slice(&rects(20, 8)).unwrap();
        let mut replica = Replica::<2>::cold();
        replica
            .install_snapshot(&p.snapshot(), Arc::clone(p.schema()))
            .unwrap();
        replica.catch_up(&p).unwrap();

        let mut set = ReplicaSet::new(Arc::clone(&p));
        set.add_replica(Arc::clone(replica.store().unwrap()));
        assert_eq!(set.len(), 2);
        assert_eq!(set.serving().unwrap().0, 0);
        assert_eq!(set.failovers(), 0);

        set.mark_down(0);
        let (idx, store) = set.serving().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(set.failovers(), 1);
        assert_eq!(fold(store).len(), 20);
        assert_eq!(set.health(), vec![false, true]);

        // Losing the replica too leaves nothing to serve.
        set.mark_down(1);
        assert!(set.serving().is_none());
        assert_eq!(set.failovers(), 2);

        // Recovery fails back to the primary.
        set.mark_up(1);
        assert_eq!(set.serving().unwrap().0, 1);
        set.mark_up(0);
        assert_eq!(set.serving().unwrap().0, 0);
    }
}
